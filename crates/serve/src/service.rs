//! The query service: a registry of named indexes behind one front door.
//!
//! [`TastiService`] is transport-agnostic — [`crate::Server`] feeds it
//! requests parsed off TCP connections, tests call [`TastiService::handle`]
//! directly. Since the multi-index registry, the service owns an
//! [`IndexRegistry`]: every request optionally names an index (absent →
//! the default entry, keeping the single-index wire protocol
//! byte-compatible), and each entry carries its own labeler, budget,
//! metrics, and maintenance lock. All concurrency lives in the entries:
//!
//! * Each index sits behind `RwLock<Arc<TastiIndex>>`. Readers hold the
//!   lock only long enough to clone the `Arc`, then query a consistent
//!   snapshot with no lock held.
//! * Oracle labels go through the entry's [`MeteredLabeler`], whose
//!   in-flight set gives exactly-once semantics across concurrent queries
//!   for free — and whose accounting never mixes tenants.
//! * Cracking (§3.3) runs on a per-entry maintenance path: after a query,
//!   one thread at a time clones that index, folds the labeler's cache in
//!   via `crack_from_labeler` *off-lock*, and swaps the `Arc` under a
//!   brief write lock. Readers never wait on a crack, and cracking one
//!   index never serializes another's.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tasti_core::index::TastiIndex;
use tasti_core::persist;
use tasti_core::scoring::ScoringFunction;
use tasti_ingest::{LogConfig, SegmentLog};
use tasti_labeler::{
    BreakerState, FallibleTargetLabeler, FaultKind, LabelerError, LabelerFault, MeteredLabeler,
    RecordId,
};
use tasti_obs::json::{fmt_f64, push_escaped, JsonValue};
use tasti_obs::{QueryTelemetry, Stopwatch};
use tasti_query::{
    try_ebs_aggregate_batch, try_limit_query_batch, try_predicate_aggregate_batch,
    try_supg_precision_target_batch, try_supg_recall_target_batch, AggregationConfig,
    PredicateAggConfig, QueryOutcome, SupgConfig, SupgPrecisionConfig,
};

use crate::config::ServeConfig;
use crate::metrics::ServeMetrics;
use crate::proto::{err_response_full, ok_response, ok_response_routed, ErrorKind, Op, Request};
use crate::registry::{IndexEntry, IndexRegistry};

/// Default oracle match threshold: a record matches when its oracle score
/// is ≥ this. Right for the 0/1 predicate scores (`HasClass`, …).
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// The registry name of the index the service is constructed with — the
/// entry requests without an `"index"` field route to.
pub const DEFAULT_INDEX_NAME: &str = "default";

/// Builds a fresh [`MeteredLabeler`] for an index loaded at runtime
/// (`index_load` or `ServeConfig::preload`), given its registry name.
pub type LabelerFactory<L> = Box<dyn Fn(&str) -> MeteredLabeler<L> + Send + Sync>;

/// A typed request failure: the wire error kind, its message, and (for
/// `labeler_unavailable`) the breaker's backoff hint. Storage faults
/// additionally carry the `"storage"` fault class and, once the index has
/// degraded, the read-only marker.
struct QueryError {
    kind: ErrorKind,
    message: String,
    retry_after_micros: Option<u64>,
    fault_class: Option<&'static str>,
    read_only: bool,
}

impl QueryError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            retry_after_micros: None,
            fault_class: None,
            read_only: false,
        }
    }

    fn with_retry(mut self, retry_after_micros: Option<u64>) -> Self {
        self.retry_after_micros = retry_after_micros;
        self
    }

    /// Tags the error with the `storage` fault class; `read_only` marks
    /// that the service has entered read-only degradation.
    fn storage(mut self, read_only: bool) -> Self {
        self.fault_class = Some("storage");
        self.read_only = read_only;
        self
    }
}

/// What startup replay of the ingest segment log found and did
/// ([`TastiService::open_ingest`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Acknowledged frames recovered from the log.
    pub frames: usize,
    /// Frames folded into an index (past its snapshot watermark).
    pub applied: usize,
    /// Frames skipped because the index's persisted watermark already
    /// covered them (the snapshot on disk was newer than the frame).
    pub already_applied: usize,
    /// Frames addressed to an index that is not loaded.
    pub unknown_index: usize,
    /// Records appended across the applied frames.
    pub records: usize,
    /// Torn (never-acknowledged) tail bytes truncated during recovery.
    pub truncated_bytes: u64,
}

/// The durable side of streaming ingest: the segment log plus the
/// bookkeeping compaction keys on (per index: the highest log sequence
/// holding its frames, and its ingest watermark at the last successful
/// snapshot).
struct IngestLogState {
    log: SegmentLog,
    appended: BTreeMap<String, u64>,
    persisted: BTreeMap<String, u64>,
    replay: ReplaySummary,
    /// `Some(reason)` once a storage fault (failed append or fsync) has
    /// degraded ingest to read-only: queries keep serving, every further
    /// `ingest` is rejected with the typed `storage` fault class. Cleared
    /// only by restart — after a failed fsync the kernel may have dropped
    /// dirty pages, so no in-process retry can re-establish the
    /// durability contract (fsyncgate).
    read_only: Option<String>,
    /// True while one request is running the group-commit fsync off-lock;
    /// batches that append meanwhile wait on the service condvar and share
    /// that fsync (or the next one) instead of issuing their own.
    sync_in_flight: bool,
}

/// Exponential snapshot retry backoff after persist failures (see
/// [`TastiService::handle`]'s `snapshot` op): a failed snapshot opens a
/// window in which further attempts are rejected with a `retry_after`
/// hint, doubling per consecutive failure.
#[derive(Default)]
struct SnapshotBackoff {
    consecutive_failures: u32,
    not_before: Option<Instant>,
}

/// First snapshot retry window; doubles per consecutive failure.
const SNAPSHOT_BACKOFF_BASE: Duration = Duration::from_millis(50);
/// Ceiling for the snapshot retry window.
const SNAPSHOT_BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Unpacks a fault-aware query outcome into the result plus the fault that
/// degraded it (if any).
fn split_outcome<R>(out: QueryOutcome<R>) -> (R, Option<LabelerFault>) {
    match out {
        QueryOutcome::Complete(r) => (r, None),
        QueryOutcome::Degraded(d) => (d.result, Some(d.fault)),
    }
}

/// The shared state of a running service: the index registry, the
/// service-wide aggregate metrics, and (optionally) a labeler factory for
/// loading further indexes at runtime.
pub struct TastiService<L: FallibleTargetLabeler> {
    registry: IndexRegistry<L>,
    /// Service-wide aggregate; each entry additionally records into its own
    /// [`ServeMetrics`]. `Arc`ed so background maintenance threads can
    /// keep counting after `handle` returns.
    metrics: Arc<ServeMetrics>,
    config: ServeConfig,
    factory: Option<LabelerFactory<L>>,
    /// Durable ingest log; `None` until [`TastiService::open_ingest`] runs
    /// (which needs `config.ingest_dir`). Locked briefly: an `ingest`
    /// request holds it only for the append, never across index fold-in
    /// and never across the group-commit fsync.
    ingest: Mutex<Option<IngestLogState>>,
    /// Wakes batches waiting for an in-flight group-commit fsync to
    /// settle (paired with the `ingest` mutex).
    ingest_cv: Condvar,
    /// Snapshot retry state (storage fault tolerance).
    snapshot_backoff: Mutex<SnapshotBackoff>,
    /// Background drift-escalation workers, joined at graceful shutdown.
    refresh_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl<L: FallibleTargetLabeler + 'static> TastiService<L> {
    /// Wraps an index and a labeler into a single-index service (the index
    /// becomes the registry's default entry). A `label_budget` in the
    /// config overrides the labeler's own budget. When `config.ingest_dir`
    /// is set, call [`TastiService::open_ingest`] before serving `ingest`
    /// ([`TastiService::with_factory`] does it automatically).
    ///
    /// # Panics
    ///
    /// When `config.preload` is non-empty — loading further indexes needs a
    /// labeler factory; use [`TastiService::with_factory`].
    pub fn new(index: TastiIndex, labeler: MeteredLabeler<L>, config: ServeConfig) -> Self {
        assert!(
            config.preload.is_empty(),
            "ServeConfig::preload needs a labeler factory; construct with \
             TastiService::with_factory"
        );
        Self::build(index, labeler, config, None)
    }

    /// [`TastiService::new`] plus a labeler factory, enabling `index_load`
    /// over the wire and `config.preload` at startup (each preload pair is
    /// loaded before this returns; a failed load fails construction).
    pub fn with_factory(
        index: TastiIndex,
        labeler: MeteredLabeler<L>,
        config: ServeConfig,
        factory: LabelerFactory<L>,
    ) -> Result<Self, String> {
        let service = Self::build(index, labeler, config, Some(factory));
        for (name, path) in service.config.preload.clone() {
            service.load_index_from(&name, &path, None)?;
        }
        if service.config.ingest_dir.is_some() {
            service.open_ingest()?;
        }
        Ok(service)
    }

    fn build(
        index: TastiIndex,
        labeler: MeteredLabeler<L>,
        config: ServeConfig,
        factory: Option<LabelerFactory<L>>,
    ) -> Self {
        let default = IndexEntry::new(
            DEFAULT_INDEX_NAME,
            index,
            labeler,
            config.label_budget,
            config.snapshot_path.clone(),
        );
        Self {
            registry: IndexRegistry::new(default),
            metrics: Arc::new(ServeMetrics::new()),
            config,
            factory,
            ingest: Mutex::new(None),
            ingest_cv: Condvar::new(),
            snapshot_backoff: Mutex::new(SnapshotBackoff::default()),
            refresh_threads: Mutex::new(Vec::new()),
        }
    }

    /// Opens the ingest segment log at `config.ingest_dir` and replays
    /// every acknowledged frame into its index, so a `kill -9` after an
    /// ingest ack never loses the batch. Frames at or below an index's
    /// ingest watermark (already captured by the snapshot the index was
    /// loaded from) are recognized and skipped, which makes replay
    /// idempotent. Runs automatically in [`TastiService::with_factory`];
    /// services built with [`TastiService::new`] call it explicitly before
    /// serving `ingest`.
    pub fn open_ingest(&self) -> Result<ReplaySummary, String> {
        let dir = self
            .config
            .ingest_dir
            .as_ref()
            .ok_or_else(|| "open_ingest requires ServeConfig::ingest_dir".to_string())?;
        let mut guard = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_some() {
            return Err("the ingest log is already open".to_string());
        }
        let (log, frames, report) = SegmentLog::open_with_vfs(
            dir,
            LogConfig::default(),
            Arc::clone(&self.config.storage_vfs),
        )
        .map_err(|e| format!("failed to open ingest log at {}: {e}", dir.display()))?;
        let mut summary = ReplaySummary {
            frames: frames.len(),
            truncated_bytes: report.truncated_bytes,
            ..ReplaySummary::default()
        };
        let mut appended = BTreeMap::new();
        for frame in &frames {
            let (name, embedded, rows) = decode_ingest_payload(&frame.payload)
                .map_err(|e| format!("ingest log frame {} is unreadable: {e}", frame.seq))?;
            let Some(entry) = self.registry.get(Some(&name)) else {
                summary.unknown_index += 1;
                continue;
            };
            appended.insert(name, frame.seq);
            let out = entry
                .apply_ingest(
                    &rows,
                    embedded,
                    frame.seq,
                    self.config.drift_threshold,
                    true,
                )
                .map_err(|e| {
                    format!(
                        "ingest log frame {} (index '{}') failed to re-apply: {e}",
                        frame.seq, entry.name
                    )
                })?;
            if out.applied {
                summary.applied += 1;
                summary.records += out.added;
                self.metrics.ingest_replayed_frames.incr();
                entry.metrics.ingest_replayed_frames.incr();
                self.metrics.records_ingested.add(out.added as u64);
                entry.metrics.records_ingested.add(out.added as u64);
            } else {
                summary.already_applied += 1;
            }
        }
        *guard = Some(IngestLogState {
            log,
            appended,
            persisted: BTreeMap::new(),
            replay: summary,
            read_only: None,
            sync_in_flight: false,
        });
        Ok(summary)
    }

    /// What startup replay did — `Some` once the ingest log is open.
    pub fn ingest_replay(&self) -> Option<ReplaySummary> {
        self.ingest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|st| st.replay)
    }

    /// Registers a pre-built index under a registry name — the programmatic
    /// face of `index_load`, for embedding the service without snapshot
    /// files or a factory. Rejects duplicate names.
    pub fn insert_index(
        &self,
        name: impl Into<String>,
        index: TastiIndex,
        labeler: MeteredLabeler<L>,
        label_budget: Option<u64>,
        snapshot_path: Option<std::path::PathBuf>,
    ) -> Result<(), String> {
        self.registry.insert(IndexEntry::new(
            name.into(),
            index,
            labeler,
            label_budget,
            snapshot_path,
        ))
    }

    /// Loads an index snapshot from disk into the registry via the labeler
    /// factory. Returns `(records, reps)` of the loaded index. A corrupt
    /// snapshot with a rotated last-good (`.prev`) copy recovers to that
    /// copy (ingest replay from its older watermark makes the fallback
    /// lossless) and bumps `snapshot_fallback_loads`.
    fn load_index_from(
        &self,
        name: &str,
        path: &Path,
        label_budget: Option<u64>,
    ) -> Result<(usize, usize), String> {
        let factory = self.factory.as_ref().ok_or_else(|| {
            "this server cannot load indexes at runtime (no labeler factory configured)".to_string()
        })?;
        let report = persist::load_with_fallback_vfs(path, &*self.config.storage_vfs)
            .map_err(|e| format!("failed to load index '{name}' from {}: {e}", path.display()))?;
        if report.fallback.is_some() {
            self.metrics.snapshot_fallback_loads.incr();
        }
        let index = report.index;
        let shape = (index.n_records(), index.reps().len());
        self.registry.insert(IndexEntry::new(
            name,
            index,
            factory(name),
            label_budget,
            Some(path.to_path_buf()),
        ))?;
        Ok(shape)
    }

    /// The index registry.
    pub fn registry(&self) -> &IndexRegistry<L> {
        &self.registry
    }

    /// A consistent snapshot of the **default** index (brief read lock,
    /// then lock-free).
    pub fn index(&self) -> Arc<TastiIndex> {
        self.registry.default_entry().index()
    }

    /// The **default** index's metered labeler.
    pub fn labeler(&self) -> &MeteredLabeler<L> {
        &self.registry.default_entry().labeler
    }

    /// The service-wide aggregate metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Handles one request, returning the complete response line (no
    /// trailing newline). Never panics: query panics are caught and mapped
    /// to `internal` errors so a poisoned request cannot take a worker
    /// down.
    pub fn handle(&self, req: &Request) -> String {
        self.metrics.requests_total.incr();
        let sw = Stopwatch::start();
        // Resolve routing first. Registry-level ops (load/unload/list) and
        // shutdown are not *about* a loaded entry; `metrics` without an
        // index reports the aggregate. Everything else needs an entry, and
        // an unknown name is a typed `bad_request`.
        let routed: Result<Option<Arc<IndexEntry<L>>>, QueryError> = match req.op {
            Op::IndexLoad | Op::IndexUnload | Op::IndexList | Op::Shutdown => Ok(None),
            Op::Metrics if req.index.is_none() => Ok(None),
            _ => self
                .registry
                .get(req.index.as_deref())
                .map(Some)
                .ok_or_else(|| {
                    QueryError::new(
                        ErrorKind::BadRequest,
                        format!(
                            "unknown index '{}' (see index_list)",
                            req.index.as_deref().unwrap_or("")
                        ),
                    )
                }),
        };
        let (entry, outcome) = match routed {
            Ok(entry) => {
                if let Some(e) = &entry {
                    e.metrics.requests_total.incr();
                }
                let outcome = match req.op {
                    Op::IndexStats => self.index_stats(req, entry.as_deref().expect("routed")),
                    Op::Metrics => self.metrics_response(req, entry.as_deref()),
                    Op::Health => Ok(self.health_response(req, entry.as_deref().expect("routed"))),
                    Op::IndexLoad => self.index_load(req),
                    Op::IndexUnload => self.index_unload(req),
                    Op::IndexList => Ok(self.index_list(req)),
                    Op::Snapshot => self.snapshot(req, entry.as_deref().expect("routed")),
                    Op::Ingest => self.ingest_batch(req, entry.as_deref().expect("routed")),
                    Op::Shutdown => Ok(ok_response(req.id, "\"draining\":true", None)),
                    _ => self.run_query(req, entry.as_deref().expect("routed")),
                };
                (entry, outcome)
            }
            Err(e) => (None, Err(e)),
        };
        let (line, ok) = match outcome {
            Ok(line) => (line, true),
            Err(e) => (
                err_response_full(
                    Some(req.id),
                    e.kind,
                    &e.message,
                    e.retry_after_micros,
                    e.fault_class,
                    e.read_only,
                ),
                false,
            ),
        };
        let micros = sw.elapsed_micros();
        self.metrics.record(req.op, micros, ok);
        if let Some(e) = &entry {
            e.metrics.record(req.op, micros, ok);
        }
        if ok && req.op.is_query() && self.config.crack_after_queries {
            if let Some(e) = &entry {
                let report = e.crack_pending();
                if report.added > 0 {
                    self.metrics.cracked_reps.add(report.added as u64);
                    self.metrics.crack_passes.incr();
                    if report.rebuilt {
                        self.metrics.crack_rebuilds.incr();
                    }
                }
            }
        }
        line
    }

    /// Runs one query op end to end against `entry`. `Err` carries the
    /// typed error.
    fn run_query(&self, req: &Request, entry: &IndexEntry<L>) -> Result<String, QueryError> {
        // Fail fast while the oracle's circuit breaker is open: don't burn
        // a sampling plan on an oracle known to be down — tell the client
        // when to come back instead. Once the open window has elapsed
        // (`retry_after` hits zero) the query is admitted so its first
        // oracle call becomes the breaker's half-open probe.
        if let Some(h) = entry.labeler.oracle_health() {
            let still_cooling = h.retry_after_micros.is_some_and(|m| m > 0);
            if h.breaker == BreakerState::Open && still_cooling {
                self.metrics.labeler_unavailable.incr();
                entry.metrics.labeler_unavailable.incr();
                return Err(QueryError::new(
                    ErrorKind::LabelerUnavailable,
                    format!(
                        "oracle circuit breaker is open after {} consecutive faults",
                        h.consecutive_faults
                    ),
                )
                .with_retry(h.retry_after_micros));
            }
        }
        let idx = entry.index();
        if idx.n_records() == 0 {
            return Err(QueryError::new(ErrorKind::Internal, "index has no records"));
        }
        let score = req
            .score
            .as_ref()
            .ok_or_else(|| {
                QueryError::new(
                    ErrorKind::BadRequest,
                    format!("op '{}' needs a 'score' spec", req.op.name()),
                )
            })?
            .to_scoring();
        let threshold = req.threshold.unwrap_or(DEFAULT_THRESHOLD);
        // `predicate_aggregate` gates records on a second scoring function;
        // validate it up front so the failure is a clean `bad_request`.
        let pred = match req.op {
            Op::PredicateAggregate => Some(
                req.predicate
                    .as_ref()
                    .ok_or_else(|| {
                        QueryError::new(
                            ErrorKind::BadRequest,
                            "predicate_aggregate needs a 'predicate' spec",
                        )
                    })?
                    .to_scoring(),
            ),
            _ => None,
        };
        // The algorithms never call the oracle past their own budgets, but
        // the *entry-lifetime* label budget can run out mid-query. The
        // batch front door labels the affordable prefix and errors; we
        // record the hit, feed the algorithm neutral values so it
        // terminates normally, and discard its result in favor of a typed
        // `budget_exhausted` error. Oracle faults propagate as
        // `LabelerFault` into the fault-aware `try_*` entry points, which
        // degrade the query to a proxy-only partial answer.
        let budget_hit = std::sync::atomic::AtomicBool::new(false);
        let label_scores = |recs: &[RecordId]| -> Result<Vec<f64>, LabelerFault> {
            match entry.labeler.try_label_batch_fallible(recs) {
                Ok(outputs) => Ok(outputs.iter().map(|o| score.score(o)).collect()),
                Err(LabelerError::Budget(_)) => {
                    budget_hit.store(true, std::sync::atomic::Ordering::Relaxed);
                    Ok(vec![0.0; recs.len()])
                }
                Err(LabelerError::Fault(f)) => Err(f),
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| match req.op {
            Op::EbsAggregate => {
                let proxy = self.proxy(&idx, score.as_ref(), req.k);
                let mut config = AggregationConfig::default();
                if let Some(v) = req.error_target {
                    config.error_target = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_ebs_aggregate_batch(&proxy, &mut |recs| label_scores(recs), &config);
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_num(&mut body, "estimate", r.estimate);
                push_num(&mut body, "ci_half_width", r.ci_half_width);
                push_int(&mut body, "samples", r.samples);
                push_bool(&mut body, "exhausted", r.exhausted);
                push_num(&mut body, "control_coefficient", r.control_coefficient);
                push_num(&mut body, "rho_squared", r.rho_squared);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::SupgRecallTarget => {
                let proxy = self.proxy(&idx, score.as_ref(), req.k);
                let mut config = SupgConfig::default();
                if let Some(v) = req.recall_target {
                    config.recall_target = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.budget {
                    config.budget = v;
                }
                if let Some(v) = req.uniform_mix {
                    config.uniform_mix = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_supg_recall_target_batch(
                    &proxy,
                    &mut |recs| {
                        label_scores(recs).map(|v| v.iter().map(|&s| s >= threshold).collect())
                    },
                    &config,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_int(&mut body, "returned_count", r.returned.len() as u64);
                push_records(&mut body, "returned", &r.returned);
                push_num(&mut body, "threshold", r.threshold);
                push_num(&mut body, "estimated_recall", r.estimated_recall);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::SupgPrecisionTarget => {
                let proxy = self.proxy(&idx, score.as_ref(), req.k);
                let mut config = SupgPrecisionConfig::default();
                if let Some(v) = req.precision_target {
                    config.precision_target = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.budget {
                    config.budget = v;
                }
                if let Some(v) = req.uniform_mix {
                    config.uniform_mix = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_supg_precision_target_batch(
                    &proxy,
                    &mut |recs| {
                        label_scores(recs).map(|v| v.iter().map(|&s| s >= threshold).collect())
                    },
                    &config,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_int(&mut body, "returned_count", r.returned.len() as u64);
                push_records(&mut body, "returned", &r.returned);
                push_num(&mut body, "threshold", r.threshold);
                push_num(&mut body, "estimated_precision", r.estimated_precision);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::LimitQuery => {
                let ranking = idx.limit_ranking(score.as_ref());
                let k_matches = req.k_matches.unwrap_or(10);
                let max_scan = req.max_scan.unwrap_or(ranking.len());
                let probe_batch = req.probe_batch.unwrap_or(1).max(1);
                let out = try_limit_query_batch(
                    &ranking,
                    &mut |recs| {
                        label_scores(recs).map(|v| v.iter().map(|&s| s >= threshold).collect())
                    },
                    k_matches,
                    max_scan,
                    probe_batch,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_records(&mut body, "found", &r.found);
                push_bool(&mut body, "satisfied", r.satisfied);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::PredicateAggregate => {
                // `score` plays the value role; `predicate` gates which
                // records count. A single labeler output answers both.
                let pred = pred.as_ref().expect("validated above");
                let pred_proxy = self.proxy(&idx, pred.as_ref(), req.k);
                let mut config = PredicateAggConfig::default();
                if let Some(v) = req.budget {
                    config.budget = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.uniform_mix {
                    config.uniform_mix = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_predicate_aggregate_batch(
                    &pred_proxy,
                    &mut |recs| match entry.labeler.try_label_batch_fallible(recs) {
                        Ok(outputs) => Ok(outputs
                            .iter()
                            .map(|o| (pred.score(o) >= threshold).then(|| score.score(o)))
                            .collect()),
                        Err(LabelerError::Budget(_)) => {
                            budget_hit.store(true, std::sync::atomic::Ordering::Relaxed);
                            Ok(vec![None; recs.len()])
                        }
                        Err(LabelerError::Fault(f)) => Err(f),
                    },
                    &config,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_num(&mut body, "estimate", r.estimate);
                push_num(&mut body, "ci_half_width", r.ci_half_width);
                push_int(&mut body, "matches_sampled", r.matches_sampled as u64);
                body.pop();
                (body, r.telemetry, fault)
            }
            _ => unreachable!("non-query ops are dispatched in handle()"),
        }))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "query panicked".to_string());
            QueryError::new(ErrorKind::Internal, format!("query failed: {msg}"))
        })?;
        if budget_hit.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(QueryError::new(
                ErrorKind::BudgetExhausted,
                "service label budget exhausted mid-query; partial labels were cached but the \
                 result is not statistically valid",
            ));
        }
        let (mut body, telemetry, fault): (String, QueryTelemetry, Option<LabelerFault>) = result;
        if let Some(fault) = fault {
            self.metrics.oracle_fault_queries.incr();
            entry.metrics.oracle_fault_queries.incr();
            if !self.config.degraded_replies {
                self.metrics.labeler_unavailable.incr();
                entry.metrics.labeler_unavailable.incr();
                let retry_after = entry
                    .labeler
                    .oracle_health()
                    .and_then(|h| h.retry_after_micros);
                return Err(QueryError::new(
                    ErrorKind::LabelerUnavailable,
                    format!("oracle fault mid-query ({fault}); degraded replies are disabled"),
                )
                .with_retry(retry_after));
            }
            // Degraded reply: the partial, proxy-only answer ships with the
            // fault spelled out; its telemetry already carries
            // `certified: false`, `degraded: true`.
            self.metrics.degraded_replies.incr();
            entry.metrics.degraded_replies.incr();
            body.push_str(",\"degraded\":true,\"fault\":\"");
            push_escaped(&mut body, &fault.to_string());
            body.push('"');
        }
        Ok(ok_response_routed(
            req.id,
            &body,
            Some(&telemetry),
            req.index.as_deref(),
        ))
    }

    /// The `ingest` op: validate the batch against the routed index,
    /// durably append it to the segment log (fsync'd — that is the ack
    /// promise), then fold it into the index. Rejections *before* the
    /// append use typed errors and never acknowledge; an apply failure
    /// *after* the append is `internal` — the data is safe in the log and
    /// replays on restart.
    fn ingest_batch(&self, req: &Request, entry: &IndexEntry<L>) -> Result<String, QueryError> {
        let rows = match req.rows.as_deref() {
            Some(rows) if !rows.is_empty() => rows,
            _ => {
                return Err(QueryError::new(
                    ErrorKind::BadRequest,
                    "ingest needs a non-empty 'rows' array",
                ))
            }
        };
        let embedded = req.embedded.unwrap_or(false);
        // Validate shape before the durable append: a malformed batch must
        // be a clean `bad_request`, not a logged frame that poisons replay.
        let idx = entry.index();
        let expected = if embedded {
            idx.embedding_dim()
        } else {
            match idx.model() {
                Some(m) => m.input_dim(),
                None => {
                    return Err(QueryError::new(
                        ErrorKind::BadRequest,
                        "this index has no embedding model; send pre-embedded rows \
                         (\"embedded\":true)",
                    ))
                }
            }
        };
        if let Some((i, row)) = rows.iter().enumerate().find(|(_, r)| r.len() != expected) {
            return Err(QueryError::new(
                ErrorKind::BadRequest,
                format!(
                    "rows[{i}] has {} values but the index expects {expected}",
                    row.len()
                ),
            ));
        }
        drop(idx);
        let payload = encode_ingest_payload(&entry.name, embedded, rows);
        // Durable append with group commit. The log lock is held for the
        // append and the sync bookkeeping, never across the fsync itself:
        // one batch (the leader) runs the fsync off-lock while batches
        // appending meanwhile wait on the condvar and share its coverage —
        // or the next fsync's. A failed append or fsync degrades the
        // service to read-only (fsyncgate: after a failed fsync the
        // kernel's dirty pages are gone, so the durability contract can
        // only be re-established by restart + replay).
        let seq = self.append_durable(entry, &payload)?;
        let out = entry
            .apply_ingest(rows, embedded, seq, self.config.drift_threshold, false)
            .map_err(|e| {
                QueryError::new(
                    ErrorKind::Internal,
                    format!(
                        "batch {seq} is durable in the ingest log but failed to apply ({e}); \
                         it will be retried by replay on restart"
                    ),
                )
            })?;
        self.metrics.records_ingested.add(out.added as u64);
        entry.metrics.records_ingested.add(out.added as u64);
        self.metrics.ingest_batches.incr();
        entry.metrics.ingest_batches.incr();
        if out.refresh_scheduled {
            self.metrics.ingest_escalations.incr();
            entry.metrics.ingest_escalations.incr();
            self.spawn_background_refresh(&entry.name);
        }
        let mut body = String::new();
        push_int(&mut body, "ingested", out.added as u64);
        push_int(&mut body, "start", out.start as u64);
        push_int(&mut body, "records", out.total_records as u64);
        push_int(&mut body, "seq", seq);
        if out.escalated {
            // The assignment refresh runs off the request path; the reply
            // reports that it was handed to the maintenance thread.
            body.push_str("\"escalated\":\"scheduled\",");
            push_num(&mut body, "drift", out.drift);
        }
        body.pop();
        Ok(ok_response_routed(
            req.id,
            &body,
            None,
            req.index.as_deref(),
        ))
    }

    /// Durably appends one encoded batch to the segment log, with group
    /// commit across concurrent batches. Returns the frame's sequence only
    /// once an fsync covers it — the ack promise. On any storage failure
    /// the service enters read-only degradation and the batch is rejected
    /// un-acknowledged with the typed `storage` fault class.
    fn append_durable(&self, entry: &IndexEntry<L>, payload: &str) -> Result<u64, QueryError> {
        let reject = |message: String, read_only: bool| {
            self.metrics.ingest_rejected.incr();
            entry.metrics.ingest_rejected.incr();
            Err(QueryError::new(ErrorKind::IngestRejected, message).storage(read_only))
        };
        let mut guard = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let seq = {
            let Some(st) = guard.as_mut() else {
                self.metrics.ingest_rejected.incr();
                entry.metrics.ingest_rejected.incr();
                return Err(QueryError::new(
                    ErrorKind::IngestRejected,
                    "this server runs without an ingest log (start with --ingest-dir)",
                ));
            };
            if let Some(reason) = &st.read_only {
                return reject(
                    format!("ingest is read-only after a storage fault ({reason}); the batch is not acknowledged"),
                    true,
                );
            }
            match st.log.append_unsynced(payload.as_bytes()) {
                Ok(seq) => {
                    st.appended.insert(entry.name.clone(), seq);
                    seq
                }
                Err(e) => {
                    st.read_only = Some(format!("durable append failed: {e}"));
                    self.ingest_cv.notify_all();
                    return reject(
                        format!("durable append failed ({e}); the batch is not acknowledged and ingest is now read-only"),
                        true,
                    );
                }
            }
        };
        // Group-commit loop: ack as soon as any fsync covers `seq`. One
        // waiter at a time leads the fsync off-lock; the rest wait on the
        // condvar and share its result.
        let mut led_a_sync = false;
        loop {
            let st = guard.as_mut().expect("ingest log cannot close mid-request");
            if st.log.synced_seq() >= seq {
                if !led_a_sync {
                    // This batch was covered by an fsync another batch led.
                    self.metrics.group_commit_batches.incr();
                    entry.metrics.group_commit_batches.incr();
                }
                return Ok(seq);
            }
            if let Some(reason) = &st.read_only {
                return reject(
                    format!("fsync failed before the batch was durable ({reason}); the batch is not acknowledged and ingest is now read-only"),
                    true,
                );
            }
            if st.sync_in_flight {
                guard = self
                    .ingest_cv
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the leader for every unsynced frame so far.
            let pending = match st.log.begin_sync() {
                Ok(Some(p)) => p,
                Ok(None) => {
                    // Nothing left to sync, yet `seq` is not covered: the
                    // frame was rolled back by a poison — a storage fault.
                    let reason = "the segment holding the batch was poisoned".to_string();
                    st.read_only = Some(reason.clone());
                    self.ingest_cv.notify_all();
                    return reject(
                        format!(
                            "{reason}; the batch is not acknowledged and ingest is now read-only"
                        ),
                        true,
                    );
                }
                Err(e) => {
                    let reason = format!("could not start the durability fsync: {e}");
                    st.read_only = Some(reason.clone());
                    self.ingest_cv.notify_all();
                    return reject(
                        format!(
                            "{reason}; the batch is not acknowledged and ingest is now read-only"
                        ),
                        true,
                    );
                }
            };
            st.sync_in_flight = true;
            drop(guard);
            let result = pending.sync();
            guard = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
            let st = guard.as_mut().expect("ingest log cannot close mid-request");
            st.sync_in_flight = false;
            match st.log.finish_sync(pending, result) {
                Ok(_) => {
                    led_a_sync = true;
                    self.ingest_cv.notify_all();
                    // Loop re-checks coverage (it must: an append racing
                    // between begin_sync and our append is possible only
                    // for *later* frames, but the check is the invariant).
                }
                Err(e) => {
                    // finish_sync poisoned the open segment and rolled the
                    // sequence counter back to the acknowledged prefix.
                    st.read_only = Some(format!("fsync failed: {e}"));
                    self.ingest_cv.notify_all();
                    return reject(
                        format!(
                            "fsync failed ({e}); the open segment is poisoned, the batch is not \
                             acknowledged, and ingest is now read-only"
                        ),
                        true,
                    );
                }
            }
        }
    }

    /// Spawns the background worker for a newly scheduled drift
    /// escalation ([`IndexEntry::run_scheduled_refresh`]). Joined at
    /// graceful shutdown via
    /// [`TastiService::join_background_refreshes`].
    fn spawn_background_refresh(&self, name: &str) {
        let Some(entry) = self.registry.get(Some(name)) else {
            return;
        };
        let metrics = Arc::clone(&self.metrics);
        let handle = std::thread::spawn(move || {
            if entry.run_scheduled_refresh() {
                metrics.ingest_background_refreshes.incr();
                entry.metrics.ingest_background_refreshes.incr();
            }
        });
        self.refresh_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }

    /// Joins every background drift-escalation worker spawned so far.
    /// Called during graceful shutdown so the final crack/snapshot sees
    /// the refreshed assignment.
    pub fn join_background_refreshes(&self) {
        let handles: Vec<JoinHandle<()>> = self
            .refresh_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// The `"storage"` section of `health`/`metrics`: poisoned segments,
    /// sync failures, snapshot fallback loads, read-only state. `None`
    /// until any storage fault has fired, so fault-free output stays
    /// byte-identical to the pre-fault-model protocol.
    fn storage_json(&self) -> Option<String> {
        let (sync_failures, poisoned, read_only) = {
            let guard = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
            match guard.as_ref() {
                Some(st) => (
                    st.log.sync_failures(),
                    st.log.poisoned_segments(),
                    st.read_only.clone(),
                ),
                None => (0, 0, None),
            }
        };
        let fallback_loads = self.metrics.snapshot_fallback_loads.get();
        if sync_failures == 0 && poisoned == 0 && read_only.is_none() && fallback_loads == 0 {
            return None;
        }
        let mut out = String::from("\"storage\":{");
        push_bool(&mut out, "read_only", read_only.is_some());
        if let Some(reason) = &read_only {
            out.push_str("\"reason\":\"");
            push_escaped(&mut out, reason);
            out.push_str("\",");
        }
        push_int(&mut out, "sync_failures", sync_failures);
        push_int(&mut out, "poisoned_segments", poisoned);
        push_int(&mut out, "snapshot_fallback_loads", fallback_loads);
        out.pop();
        out.push('}');
        Some(out)
    }

    /// The `health` admin response: meter status plus the oracle path's
    /// breaker/fault/retry counters when the wrapped labeler reports them
    /// (a [`tasti_labeler::ResilientLabeler`] does; a plain labeler yields
    /// `"oracle": null`).
    fn health_response(&self, req: &Request, entry: &IndexEntry<L>) -> String {
        let mut body = String::new();
        push_int(&mut body, "invocations", entry.labeler.invocations());
        push_int(&mut body, "cache_hits", entry.labeler.cache_hits());
        push_int(&mut body, "reserved", entry.labeler.reserved());
        match entry.labeler.oracle_health() {
            None => body.push_str("\"oracle\":null"),
            Some(h) => {
                body.push_str("\"oracle\":{\"breaker\":\"");
                body.push_str(h.breaker.name());
                body.push_str("\",");
                match h.retry_after_micros {
                    Some(m) => push_int(&mut body, "retry_after_micros", m),
                    None => body.push_str("\"retry_after_micros\":null,"),
                }
                push_int(&mut body, "consecutive_faults", h.consecutive_faults as u64);
                push_int(&mut body, "total_faults", h.total_faults());
                body.push_str("\"faults_by_kind\":{");
                for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push('"');
                    body.push_str(kind.name());
                    body.push_str("\":");
                    body.push_str(&h.faults_by_kind[kind.index()].to_string());
                }
                body.push_str("},");
                push_int(&mut body, "retries", h.retries);
                push_int(&mut body, "breaker_opens", h.breaker_opens);
                push_int(&mut body, "breaker_transitions", h.breaker_transitions);
                body.pop();
                body.push('}');
            }
        }
        if let Some(s) = self.storage_json() {
            body.push(',');
            body.push_str(&s);
        }
        ok_response_routed(req.id, &body, None, req.index.as_deref())
    }

    /// Proxy scores via rep propagation, honoring a per-request `k`.
    fn proxy(&self, idx: &TastiIndex, score: &dyn ScoringFunction, k: Option<usize>) -> Vec<f64> {
        match k {
            Some(k) => idx.propagate_with_k(score, k.clamp(1, idx.k())),
            None => idx.propagate(score),
        }
    }

    fn index_stats(&self, req: &Request, entry: &IndexEntry<L>) -> Result<String, QueryError> {
        let idx = entry.index();
        let mut body = String::new();
        push_int(&mut body, "records", idx.n_records() as u64);
        push_int(&mut body, "reps", idx.reps().len() as u64);
        push_int(&mut body, "k", idx.k() as u64);
        push_int(&mut body, "embedding_dim", idx.embedding_dim() as u64);
        body.push_str("\"metric\":\"");
        push_escaped(&mut body, &format!("{:?}", idx.metric()));
        body.push_str("\",");
        push_num(&mut body, "cover_radius", idx.cover_radius() as f64);
        push_bool(&mut body, "has_model", idx.model().is_some());
        body.push_str("\"labeler\":{");
        push_int(&mut body, "invocations", entry.labeler.invocations());
        push_int(&mut body, "cache_hits", entry.labeler.cache_hits());
        match entry.label_budget {
            Some(b) => push_int(&mut body, "budget", b),
            None => body.push_str("\"budget\":null,"),
        }
        body.pop();
        body.push('}');
        Ok(ok_response_routed(
            req.id,
            &body,
            None,
            req.index.as_deref(),
        ))
    }

    /// The `metrics` admin response. Routed (`"index"` present): that
    /// entry's metrics alone. Unrouted: the service-wide aggregate — plus,
    /// in multi-index deployments, an `"indexes"` object with one section
    /// per entry. Single-index deployments emit the aggregate only, so the
    /// output stays byte-identical to the pre-registry protocol.
    fn metrics_response(
        &self,
        req: &Request,
        entry: Option<&IndexEntry<L>>,
    ) -> Result<String, QueryError> {
        match entry {
            Some(e) => {
                let mut body = e.metrics.to_json_body();
                append_ingest_section(&mut body, e);
                Ok(ok_response_routed(
                    req.id,
                    &body,
                    None,
                    req.index.as_deref(),
                ))
            }
            None => {
                let mut body = self.metrics.to_json_body();
                if let Some(s) = self.storage_json() {
                    body.push(',');
                    body.push_str(&s);
                }
                if self.registry.len() > 1 {
                    body.push_str(",\"indexes\":{");
                    for (i, e) in self.registry.entries().iter().enumerate() {
                        if i > 0 {
                            body.push(',');
                        }
                        body.push('"');
                        push_escaped(&mut body, &e.name);
                        body.push_str("\":{");
                        body.push_str(&e.metrics.to_json_body());
                        append_ingest_section(&mut body, e);
                        body.push('}');
                    }
                    body.push('}');
                }
                Ok(ok_response(req.id, &body, None))
            }
        }
    }

    fn index_load(&self, req: &Request) -> Result<String, QueryError> {
        let name = req.index.as_deref().ok_or_else(|| {
            QueryError::new(
                ErrorKind::BadRequest,
                "index_load needs an 'index' field naming the new index",
            )
        })?;
        let path = req.path.as_deref().ok_or_else(|| {
            QueryError::new(
                ErrorKind::BadRequest,
                "index_load needs a 'path' field with an index snapshot file",
            )
        })?;
        // `budget` doubles as the new entry's label budget (its query-op
        // meaning — an oracle sampling budget — doesn't apply here).
        let budget = req.budget.map(|b| b as u64);
        let (records, reps) = self
            .load_index_from(name, Path::new(path), budget)
            .map_err(|m| QueryError::new(ErrorKind::BadRequest, m))?;
        let mut body = String::new();
        body.push_str("\"loaded\":\"");
        push_escaped(&mut body, name);
        body.push_str("\",");
        push_int(&mut body, "records", records as u64);
        push_int(&mut body, "reps", reps as u64);
        body.pop();
        Ok(ok_response(req.id, &body, None))
    }

    fn index_unload(&self, req: &Request) -> Result<String, QueryError> {
        let name = req.index.as_deref().ok_or_else(|| {
            QueryError::new(
                ErrorKind::BadRequest,
                "index_unload needs an 'index' field naming the index to unload",
            )
        })?;
        self.registry
            .remove(name)
            .map_err(|m| QueryError::new(ErrorKind::BadRequest, m))?;
        let mut body = String::new();
        body.push_str("\"unloaded\":\"");
        push_escaped(&mut body, name);
        body.push('"');
        Ok(ok_response(req.id, &body, None))
    }

    fn index_list(&self, req: &Request) -> String {
        let mut body = String::new();
        body.push_str("\"default\":\"");
        push_escaped(&mut body, self.registry.default_name());
        body.push_str("\",\"indexes\":[");
        for (i, e) in self.registry.entries().iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let idx = e.index();
            body.push_str("{\"name\":\"");
            push_escaped(&mut body, &e.name);
            body.push_str("\",");
            push_int(&mut body, "records", idx.n_records() as u64);
            push_int(&mut body, "reps", idx.reps().len() as u64);
            push_bool(&mut body, "default", e.name == self.registry.default_name());
            push_int(&mut body, "invocations", e.labeler.invocations());
            push_int(&mut body, "cache_hits", e.labeler.cache_hits());
            match e.label_budget {
                Some(b) => push_int(&mut body, "budget", b),
                None => body.push_str("\"budget\":null,"),
            }
            body.pop();
            body.push('}');
        }
        body.push(']');
        ok_response(req.id, &body, None)
    }

    fn snapshot(&self, req: &Request, entry: &IndexEntry<L>) -> Result<String, QueryError> {
        let path = entry.snapshot_path.as_ref().ok_or_else(|| {
            QueryError::new(
                ErrorKind::BadRequest,
                "no snapshot path configured (start the server with --snapshot)",
            )
        })?;
        // Storage fault tolerance: after a failed persist, further
        // attempts are held back by an exponential retry window so a dead
        // disk is not hammered — the error carries the remaining wait.
        {
            let backoff = self
                .snapshot_backoff
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(t) = backoff.not_before {
                let now = Instant::now();
                if now < t {
                    let remaining = (t - now).as_micros() as u64;
                    return Err(QueryError::new(
                        ErrorKind::Internal,
                        format!(
                            "snapshot is backing off after {} consecutive persist failures",
                            backoff.consecutive_failures
                        ),
                    )
                    .with_retry(Some(remaining.max(1)))
                    .storage(false));
                }
            }
        }
        match entry.snapshot_to(path, &*self.config.storage_vfs) {
            Ok((records, reps, watermark)) => {
                self.metrics.snapshots.incr();
                *self
                    .snapshot_backoff
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()) = SnapshotBackoff::default();
                self.note_persisted(&entry.name, watermark);
                let mut body = String::new();
                body.push_str("\"path\":\"");
                push_escaped(&mut body, &path.display().to_string());
                body.push_str("\",");
                push_int(&mut body, "records", records as u64);
                push_int(&mut body, "reps", reps as u64);
                body.pop();
                Ok(ok_response_routed(
                    req.id,
                    &body,
                    None,
                    req.index.as_deref(),
                ))
            }
            Err(message) => {
                self.metrics.snapshot_failures.incr();
                let mut backoff = self
                    .snapshot_backoff
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                backoff.consecutive_failures = backoff.consecutive_failures.saturating_add(1);
                let exp = backoff.consecutive_failures.saturating_sub(1).min(16);
                let window = SNAPSHOT_BACKOFF_BASE
                    .saturating_mul(1u32 << exp)
                    .min(SNAPSHOT_BACKOFF_CAP);
                backoff.not_before = Some(Instant::now() + window);
                Err(QueryError::new(ErrorKind::Internal, message).storage(false))
            }
        }
    }

    /// Persists the **default** index to `path` (atomic temp-file + rename
    /// via `persist::save`). Returns `(records, reps)` of the saved
    /// snapshot.
    pub fn snapshot_to(
        &self,
        path: &std::path::Path,
    ) -> Result<(usize, usize), (ErrorKind, String)> {
        match self
            .registry
            .default_entry()
            .snapshot_to(path, &*self.config.storage_vfs)
        {
            Ok((records, reps, watermark)) => {
                self.metrics.snapshots.incr();
                self.note_persisted(self.registry.default_name(), watermark);
                Ok((records, reps))
            }
            Err(message) => {
                self.metrics.snapshot_failures.incr();
                Err((ErrorKind::Internal, message))
            }
        }
    }

    /// Records that `name`'s snapshot now covers ingest frames up to
    /// `watermark`, then compacts the segment log past the point *every*
    /// index with logged frames has persisted. Compaction failure is
    /// swallowed — the log merely keeps more history than it needs.
    fn note_persisted(&self, name: &str, watermark: u64) {
        let mut guard = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let Some(st) = guard.as_mut() else { return };
        st.persisted.insert(name.to_string(), watermark);
        let floor = st
            .appended
            .keys()
            .map(|n| st.persisted.get(n).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        if floor > 0 {
            let _ = st.log.compact(floor);
        }
    }

    /// Folds query-paid labels back into **every** loaded index (§3.3
    /// cracking); see [`IndexEntry::crack_pending`] for the per-entry
    /// mechanics. Returns the total number of reps added.
    pub fn crack_pending(&self) -> usize {
        let mut total = 0;
        for entry in self.registry.entries() {
            let report = entry.crack_pending();
            if report.added > 0 {
                self.metrics.cracked_reps.add(report.added as u64);
                self.metrics.crack_passes.incr();
                if report.rebuilt {
                    self.metrics.crack_rebuilds.incr();
                }
            }
            total += report.added;
        }
        total
    }
}

impl<L: FallibleTargetLabeler + 'static> std::fmt::Debug for TastiService<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let idx = self.index();
        f.debug_struct("TastiService")
            .field("indexes", &self.registry.len())
            .field("records", &idx.n_records())
            .field("reps", &idx.reps().len())
            .field("labeler_invocations", &self.labeler().invocations())
            .finish()
    }
}

/// How many record ids a response array carries before truncating (the
/// count field is always exact).
const MAX_RECORDS_IN_RESPONSE: usize = 1000;

/// Appends `,"ingest":{...}` when the entry has streaming-ingest activity.
/// Idle entries emit nothing, keeping ingest-free `metrics` output
/// byte-identical to the pre-ingest protocol.
fn append_ingest_section<L: FallibleTargetLabeler>(body: &mut String, entry: &IndexEntry<L>) {
    let t = entry.ingest_telemetry();
    if !t.is_idle() {
        body.push_str(",\"ingest\":");
        t.write_json(body);
    }
}

/// Serializes one ingest batch as a segment-log frame payload. The index
/// name rides inside the frame so replay can route it without any state
/// outside the log.
fn encode_ingest_payload(index: &str, embedded: bool, rows: &[Vec<f32>]) -> String {
    let mut out = String::from("{\"index\":\"");
    push_escaped(&mut out, index);
    out.push_str("\",\"embedded\":");
    out.push_str(if embedded { "true" } else { "false" });
    out.push_str(",\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&fmt_f64(f64::from(*v)));
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// Parses a frame payload back into `(index, embedded, rows)`.
fn decode_ingest_payload(payload: &[u8]) -> Result<(String, bool, Vec<Vec<f32>>), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let doc = JsonValue::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
    let index = doc
        .get("index")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "payload is missing 'index'".to_string())?
        .to_string();
    let embedded = doc
        .get("embedded")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    let rows_v = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "payload is missing 'rows'".to_string())?;
    let mut rows = Vec::with_capacity(rows_v.len());
    for row in rows_v {
        let vals = row
            .as_array()
            .ok_or_else(|| "payload row is not an array".to_string())?;
        let mut out = Vec::with_capacity(vals.len());
        for v in vals {
            out.push(
                v.as_f64()
                    .ok_or_else(|| "payload row value is not a number".to_string())?
                    as f32,
            );
        }
        rows.push(out);
    }
    Ok((index, embedded, rows))
}

fn push_num(out: &mut String, key: &str, v: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&fmt_f64(v));
    out.push(',');
}

fn push_int(out: &mut String, key: &str, v: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
    out.push(',');
}

fn push_bool(out: &mut String, key: &str, v: bool) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if v { "true" } else { "false" });
    out.push(',');
}

fn push_records(out: &mut String, key: &str, records: &[usize]) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, r) in records.iter().take(MAX_RECORDS_IN_RESPONSE).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_string());
    }
    out.push(']');
    out.push(',');
    if records.len() > MAX_RECORDS_IN_RESPONSE {
        push_bool(out, "truncated", true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_payload_round_trips_through_the_frame_codec() {
        let rows = vec![vec![0.5f32, -1.25, 3.0], vec![0.0, 2.0, 4.5]];
        let payload = encode_ingest_payload("night \"street\"", true, &rows);
        let (name, embedded, back) = decode_ingest_payload(payload.as_bytes()).unwrap();
        assert_eq!(name, "night \"street\"");
        assert!(embedded);
        assert_eq!(back, rows);
    }

    #[test]
    fn malformed_frame_payloads_are_typed_errors_not_panics() {
        assert!(decode_ingest_payload(&[0xff, 0xfe])
            .unwrap_err()
            .contains("UTF-8"));
        assert!(decode_ingest_payload(b"not json")
            .unwrap_err()
            .contains("not JSON"));
        assert!(decode_ingest_payload(b"{\"rows\":[[1.0]]}")
            .unwrap_err()
            .contains("'index'"));
        assert!(decode_ingest_payload(b"{\"index\":\"a\"}")
            .unwrap_err()
            .contains("'rows'"));
        assert!(
            decode_ingest_payload(b"{\"index\":\"a\",\"rows\":[[true]]}")
                .unwrap_err()
                .contains("not a number")
        );
    }
}
