//! The query service: one shared index + one shared metered labeler.
//!
//! [`TastiService`] is transport-agnostic — [`crate::Server`] feeds it
//! requests parsed off TCP connections, tests call [`TastiService::handle`]
//! directly. All concurrency lives here:
//!
//! * The index sits behind `RwLock<Arc<TastiIndex>>`. Readers hold the
//!   lock only long enough to clone the `Arc`, then query a consistent
//!   snapshot with no lock held.
//! * Oracle labels go through one [`MeteredLabeler`], whose in-flight set
//!   gives exactly-once semantics across concurrent queries for free.
//! * Cracking (§3.3) runs on a maintenance path: after a query, one thread
//!   at a time clones the current index, folds the labeler's cache in via
//!   [`crack_from_labeler`] *off-lock*, and swaps the `Arc` under a brief
//!   write lock. Readers never wait on a crack.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, RwLock, TryLockError};

use tasti_core::crack::crack_from_labeler;
use tasti_core::index::TastiIndex;
use tasti_core::persist;
use tasti_core::scoring::ScoringFunction;
use tasti_labeler::{
    BreakerState, FallibleTargetLabeler, FaultKind, LabelerError, LabelerFault, MeteredLabeler,
    RecordId,
};
use tasti_obs::json::{fmt_f64, push_escaped};
use tasti_obs::{QueryTelemetry, Stopwatch};
use tasti_query::{
    try_ebs_aggregate_batch, try_limit_query_batch, try_predicate_aggregate_batch,
    try_supg_precision_target_batch, try_supg_recall_target_batch, AggregationConfig,
    PredicateAggConfig, QueryOutcome, SupgConfig, SupgPrecisionConfig,
};

use crate::config::ServeConfig;
use crate::metrics::ServeMetrics;
use crate::proto::{err_response_with_retry, ok_response, ErrorKind, Op, Request};

/// Default oracle match threshold: a record matches when its oracle score
/// is ≥ this. Right for the 0/1 predicate scores (`HasClass`, …).
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// A typed request failure: the wire error kind, its message, and (for
/// `labeler_unavailable`) the breaker's backoff hint.
struct QueryError {
    kind: ErrorKind,
    message: String,
    retry_after_micros: Option<u64>,
}

impl QueryError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
            retry_after_micros: None,
        }
    }

    fn with_retry(mut self, retry_after_micros: Option<u64>) -> Self {
        self.retry_after_micros = retry_after_micros;
        self
    }
}

/// Unpacks a fault-aware query outcome into the result plus the fault that
/// degraded it (if any).
fn split_outcome<R>(out: QueryOutcome<R>) -> (R, Option<LabelerFault>) {
    match out {
        QueryOutcome::Complete(r) => (r, None),
        QueryOutcome::Degraded(d) => (d.result, Some(d.fault)),
    }
}

/// The shared state of a running service.
pub struct TastiService<L: FallibleTargetLabeler> {
    index: RwLock<Arc<TastiIndex>>,
    labeler: MeteredLabeler<L>,
    metrics: ServeMetrics,
    /// Serializes crack maintenance; queries never wait on it
    /// (`try_lock`, losers skip the pass — the winner folds their labels
    /// in anyway, since the labeler cache is shared).
    maintenance: Mutex<()>,
    config: ServeConfig,
}

impl<L: FallibleTargetLabeler> TastiService<L> {
    /// Wraps an index and a labeler into a service. A `label_budget` in the
    /// config overrides the labeler's own budget.
    pub fn new(index: TastiIndex, mut labeler: MeteredLabeler<L>, config: ServeConfig) -> Self {
        if config.label_budget.is_some() {
            labeler.set_budget(config.label_budget);
        }
        Self {
            index: RwLock::new(Arc::new(index)),
            labeler,
            metrics: ServeMetrics::new(),
            maintenance: Mutex::new(()),
            config,
        }
    }

    /// A consistent snapshot of the current index (brief read lock, then
    /// lock-free).
    pub fn index(&self) -> Arc<TastiIndex> {
        Arc::clone(&self.index.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The shared metered labeler.
    pub fn labeler(&self) -> &MeteredLabeler<L> {
        &self.labeler
    }

    /// The operational metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Handles one request, returning the complete response line (no
    /// trailing newline). Never panics: query panics are caught and mapped
    /// to `internal` errors so a poisoned request cannot take a worker
    /// down.
    pub fn handle(&self, req: &Request) -> String {
        self.metrics.requests_total.incr();
        let sw = Stopwatch::start();
        let line = match req.op {
            Op::IndexStats => self.index_stats(req),
            Op::Metrics => Ok(ok_response(req.id, &self.metrics.to_json_body(), None)),
            Op::Health => Ok(self.health_response(req)),
            Op::Snapshot => self.snapshot(req),
            Op::Shutdown => Ok(ok_response(req.id, "\"draining\":true", None)),
            _ => self.run_query(req),
        };
        let (line, ok) = match line {
            Ok(line) => (line, true),
            Err(e) => (
                err_response_with_retry(Some(req.id), e.kind, &e.message, e.retry_after_micros),
                false,
            ),
        };
        self.metrics.record(req.op, sw.elapsed_micros(), ok);
        if ok && req.op.is_query() && self.config.crack_after_queries {
            self.crack_pending();
        }
        line
    }

    /// Runs one query op end to end. `Err` carries the typed error.
    fn run_query(&self, req: &Request) -> Result<String, QueryError> {
        // Fail fast while the oracle's circuit breaker is open: don't burn
        // a sampling plan on an oracle known to be down — tell the client
        // when to come back instead. Once the open window has elapsed
        // (`retry_after` hits zero) the query is admitted so its first
        // oracle call becomes the breaker's half-open probe.
        if let Some(h) = self.labeler.oracle_health() {
            let still_cooling = h.retry_after_micros.is_some_and(|m| m > 0);
            if h.breaker == BreakerState::Open && still_cooling {
                self.metrics.labeler_unavailable.incr();
                return Err(QueryError::new(
                    ErrorKind::LabelerUnavailable,
                    format!(
                        "oracle circuit breaker is open after {} consecutive faults",
                        h.consecutive_faults
                    ),
                )
                .with_retry(h.retry_after_micros));
            }
        }
        let idx = self.index();
        if idx.n_records() == 0 {
            return Err(QueryError::new(ErrorKind::Internal, "index has no records"));
        }
        let score = req
            .score
            .as_ref()
            .ok_or_else(|| {
                QueryError::new(
                    ErrorKind::BadRequest,
                    format!("op '{}' needs a 'score' spec", req.op.name()),
                )
            })?
            .to_scoring();
        let threshold = req.threshold.unwrap_or(DEFAULT_THRESHOLD);
        // `predicate_aggregate` gates records on a second scoring function;
        // validate it up front so the failure is a clean `bad_request`.
        let pred = match req.op {
            Op::PredicateAggregate => Some(
                req.predicate
                    .as_ref()
                    .ok_or_else(|| {
                        QueryError::new(
                            ErrorKind::BadRequest,
                            "predicate_aggregate needs a 'predicate' spec",
                        )
                    })?
                    .to_scoring(),
            ),
            _ => None,
        };
        // The algorithms never call the oracle past their own budgets, but
        // the *service-lifetime* label budget can run out mid-query. The
        // batch front door labels the affordable prefix and errors; we
        // record the hit, feed the algorithm neutral values so it
        // terminates normally, and discard its result in favor of a typed
        // `budget_exhausted` error. Oracle faults propagate as
        // `LabelerFault` into the fault-aware `try_*` entry points, which
        // degrade the query to a proxy-only partial answer.
        let budget_hit = std::sync::atomic::AtomicBool::new(false);
        let label_scores = |recs: &[RecordId]| -> Result<Vec<f64>, LabelerFault> {
            match self.labeler.try_label_batch_fallible(recs) {
                Ok(outputs) => Ok(outputs.iter().map(|o| score.score(o)).collect()),
                Err(LabelerError::Budget(_)) => {
                    budget_hit.store(true, std::sync::atomic::Ordering::Relaxed);
                    Ok(vec![0.0; recs.len()])
                }
                Err(LabelerError::Fault(f)) => Err(f),
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| match req.op {
            Op::EbsAggregate => {
                let proxy = self.proxy(&idx, score.as_ref(), req.k);
                let mut config = AggregationConfig::default();
                if let Some(v) = req.error_target {
                    config.error_target = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_ebs_aggregate_batch(&proxy, &mut |recs| label_scores(recs), &config);
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_num(&mut body, "estimate", r.estimate);
                push_num(&mut body, "ci_half_width", r.ci_half_width);
                push_int(&mut body, "samples", r.samples);
                push_bool(&mut body, "exhausted", r.exhausted);
                push_num(&mut body, "control_coefficient", r.control_coefficient);
                push_num(&mut body, "rho_squared", r.rho_squared);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::SupgRecallTarget => {
                let proxy = self.proxy(&idx, score.as_ref(), req.k);
                let mut config = SupgConfig::default();
                if let Some(v) = req.recall_target {
                    config.recall_target = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.budget {
                    config.budget = v;
                }
                if let Some(v) = req.uniform_mix {
                    config.uniform_mix = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_supg_recall_target_batch(
                    &proxy,
                    &mut |recs| {
                        label_scores(recs).map(|v| v.iter().map(|&s| s >= threshold).collect())
                    },
                    &config,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_int(&mut body, "returned_count", r.returned.len() as u64);
                push_records(&mut body, "returned", &r.returned);
                push_num(&mut body, "threshold", r.threshold);
                push_num(&mut body, "estimated_recall", r.estimated_recall);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::SupgPrecisionTarget => {
                let proxy = self.proxy(&idx, score.as_ref(), req.k);
                let mut config = SupgPrecisionConfig::default();
                if let Some(v) = req.precision_target {
                    config.precision_target = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.budget {
                    config.budget = v;
                }
                if let Some(v) = req.uniform_mix {
                    config.uniform_mix = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_supg_precision_target_batch(
                    &proxy,
                    &mut |recs| {
                        label_scores(recs).map(|v| v.iter().map(|&s| s >= threshold).collect())
                    },
                    &config,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_int(&mut body, "returned_count", r.returned.len() as u64);
                push_records(&mut body, "returned", &r.returned);
                push_num(&mut body, "threshold", r.threshold);
                push_num(&mut body, "estimated_precision", r.estimated_precision);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::LimitQuery => {
                let ranking = idx.limit_ranking(score.as_ref());
                let k_matches = req.k_matches.unwrap_or(10);
                let max_scan = req.max_scan.unwrap_or(ranking.len());
                let probe_batch = req.probe_batch.unwrap_or(1).max(1);
                let out = try_limit_query_batch(
                    &ranking,
                    &mut |recs| {
                        label_scores(recs).map(|v| v.iter().map(|&s| s >= threshold).collect())
                    },
                    k_matches,
                    max_scan,
                    probe_batch,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_records(&mut body, "found", &r.found);
                push_bool(&mut body, "satisfied", r.satisfied);
                body.pop();
                (body, r.telemetry, fault)
            }
            Op::PredicateAggregate => {
                // `score` plays the value role; `predicate` gates which
                // records count. A single labeler output answers both.
                let pred = pred.as_ref().expect("validated above");
                let pred_proxy = self.proxy(&idx, pred.as_ref(), req.k);
                let mut config = PredicateAggConfig::default();
                if let Some(v) = req.budget {
                    config.budget = v;
                }
                if let Some(v) = req.confidence {
                    config.confidence = v;
                }
                if let Some(v) = req.uniform_mix {
                    config.uniform_mix = v;
                }
                if let Some(v) = req.seed {
                    config.seed = v;
                }
                let out = try_predicate_aggregate_batch(
                    &pred_proxy,
                    &mut |recs| match self.labeler.try_label_batch_fallible(recs) {
                        Ok(outputs) => Ok(outputs
                            .iter()
                            .map(|o| (pred.score(o) >= threshold).then(|| score.score(o)))
                            .collect()),
                        Err(LabelerError::Budget(_)) => {
                            budget_hit.store(true, std::sync::atomic::Ordering::Relaxed);
                            Ok(vec![None; recs.len()])
                        }
                        Err(LabelerError::Fault(f)) => Err(f),
                    },
                    &config,
                );
                let (r, fault) = split_outcome(out);
                let mut body = String::new();
                push_num(&mut body, "estimate", r.estimate);
                push_num(&mut body, "ci_half_width", r.ci_half_width);
                push_int(&mut body, "matches_sampled", r.matches_sampled as u64);
                body.pop();
                (body, r.telemetry, fault)
            }
            _ => unreachable!("non-query ops are dispatched in handle()"),
        }))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "query panicked".to_string());
            QueryError::new(ErrorKind::Internal, format!("query failed: {msg}"))
        })?;
        if budget_hit.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(QueryError::new(
                ErrorKind::BudgetExhausted,
                "service label budget exhausted mid-query; partial labels were cached but the \
                 result is not statistically valid",
            ));
        }
        let (mut body, telemetry, fault): (String, QueryTelemetry, Option<LabelerFault>) = result;
        if let Some(fault) = fault {
            self.metrics.oracle_fault_queries.incr();
            if !self.config.degraded_replies {
                self.metrics.labeler_unavailable.incr();
                let retry_after = self
                    .labeler
                    .oracle_health()
                    .and_then(|h| h.retry_after_micros);
                return Err(QueryError::new(
                    ErrorKind::LabelerUnavailable,
                    format!("oracle fault mid-query ({fault}); degraded replies are disabled"),
                )
                .with_retry(retry_after));
            }
            // Degraded reply: the partial, proxy-only answer ships with the
            // fault spelled out; its telemetry already carries
            // `certified: false`, `degraded: true`.
            self.metrics.degraded_replies.incr();
            body.push_str(",\"degraded\":true,\"fault\":\"");
            push_escaped(&mut body, &fault.to_string());
            body.push('"');
        }
        Ok(ok_response(req.id, &body, Some(&telemetry)))
    }

    /// The `health` admin response: meter status plus the oracle path's
    /// breaker/fault/retry counters when the wrapped labeler reports them
    /// (a [`tasti_labeler::ResilientLabeler`] does; a plain labeler yields
    /// `"oracle": null`).
    fn health_response(&self, req: &Request) -> String {
        let mut body = String::new();
        push_int(&mut body, "invocations", self.labeler.invocations());
        push_int(&mut body, "cache_hits", self.labeler.cache_hits());
        push_int(&mut body, "reserved", self.labeler.reserved());
        match self.labeler.oracle_health() {
            None => body.push_str("\"oracle\":null"),
            Some(h) => {
                body.push_str("\"oracle\":{\"breaker\":\"");
                body.push_str(h.breaker.name());
                body.push_str("\",");
                match h.retry_after_micros {
                    Some(m) => push_int(&mut body, "retry_after_micros", m),
                    None => body.push_str("\"retry_after_micros\":null,"),
                }
                push_int(&mut body, "consecutive_faults", h.consecutive_faults as u64);
                push_int(&mut body, "total_faults", h.total_faults());
                body.push_str("\"faults_by_kind\":{");
                for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push('"');
                    body.push_str(kind.name());
                    body.push_str("\":");
                    body.push_str(&h.faults_by_kind[kind.index()].to_string());
                }
                body.push_str("},");
                push_int(&mut body, "retries", h.retries);
                push_int(&mut body, "breaker_opens", h.breaker_opens);
                push_int(&mut body, "breaker_transitions", h.breaker_transitions);
                body.pop();
                body.push('}');
            }
        }
        ok_response(req.id, &body, None)
    }

    /// Proxy scores via rep propagation, honoring a per-request `k`.
    fn proxy(&self, idx: &TastiIndex, score: &dyn ScoringFunction, k: Option<usize>) -> Vec<f64> {
        match k {
            Some(k) => idx.propagate_with_k(score, k.clamp(1, idx.k())),
            None => idx.propagate(score),
        }
    }

    fn index_stats(&self, req: &Request) -> Result<String, QueryError> {
        let idx = self.index();
        let mut body = String::new();
        push_int(&mut body, "records", idx.n_records() as u64);
        push_int(&mut body, "reps", idx.reps().len() as u64);
        push_int(&mut body, "k", idx.k() as u64);
        push_int(&mut body, "embedding_dim", idx.embedding_dim() as u64);
        body.push_str("\"metric\":\"");
        push_escaped(&mut body, &format!("{:?}", idx.metric()));
        body.push_str("\",");
        push_num(&mut body, "cover_radius", idx.cover_radius() as f64);
        push_bool(&mut body, "has_model", idx.model().is_some());
        body.push_str("\"labeler\":{");
        push_int(&mut body, "invocations", self.labeler.invocations());
        push_int(&mut body, "cache_hits", self.labeler.cache_hits());
        match self.config.label_budget {
            Some(b) => push_int(&mut body, "budget", b),
            None => body.push_str("\"budget\":null,"),
        }
        body.pop();
        body.push('}');
        Ok(ok_response(req.id, &body, None))
    }

    fn snapshot(&self, req: &Request) -> Result<String, QueryError> {
        let path = self.config.snapshot_path.as_ref().ok_or_else(|| {
            QueryError::new(
                ErrorKind::BadRequest,
                "no snapshot path configured (start the server with --snapshot)",
            )
        })?;
        self.snapshot_to(path)
            .map(|(records, reps)| {
                let mut body = String::new();
                body.push_str("\"path\":\"");
                push_escaped(&mut body, &path.display().to_string());
                body.push_str("\",");
                push_int(&mut body, "records", records as u64);
                push_int(&mut body, "reps", reps as u64);
                body.pop();
                ok_response(req.id, &body, None)
            })
            .map_err(|(kind, message)| QueryError::new(kind, message))
    }

    /// Persists the current index to `path` (atomic temp-file + rename via
    /// `persist::save`). Returns `(records, reps)` of the saved snapshot.
    pub fn snapshot_to(
        &self,
        path: &std::path::Path,
    ) -> Result<(usize, usize), (ErrorKind, String)> {
        let idx = self.index();
        persist::save(&idx, path)
            .map_err(|e| (ErrorKind::Internal, format!("snapshot failed: {e}")))?;
        self.metrics.snapshots.incr();
        Ok((idx.n_records(), idx.reps().len()))
    }

    /// Folds query-paid labels back into the index (§3.3 cracking) without
    /// blocking readers: clone the current index, crack the clone off-lock,
    /// swap the `Arc` under a brief write lock. One pass at a time; callers
    /// that lose the `try_lock` race skip — the winner folds the shared
    /// labeler cache in anyway. Returns the number of reps added.
    pub fn crack_pending(&self) -> usize {
        let _guard = match self.maintenance.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return 0,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let snapshot = self.index();
        // Cheap pre-check: anything new to fold in?
        if !self
            .labeler
            .labeled_records()
            .iter()
            .any(|&r| r < snapshot.n_records() && !snapshot.is_rep(r))
        {
            return 0;
        }
        let mut working = (*snapshot).clone();
        let added = crack_from_labeler(&mut working, &self.labeler);
        if added > 0 {
            let next = Arc::new(working);
            *self.index.write().unwrap_or_else(|e| e.into_inner()) = next;
            self.metrics.cracked_reps.add(added as u64);
            self.metrics.crack_passes.incr();
        }
        added
    }
}

impl<L: FallibleTargetLabeler> std::fmt::Debug for TastiService<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let idx = self.index();
        f.debug_struct("TastiService")
            .field("records", &idx.n_records())
            .field("reps", &idx.reps().len())
            .field("labeler_invocations", &self.labeler.invocations())
            .finish()
    }
}

/// How many record ids a response array carries before truncating (the
/// count field is always exact).
const MAX_RECORDS_IN_RESPONSE: usize = 1000;

fn push_num(out: &mut String, key: &str, v: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&fmt_f64(v));
    out.push(',');
}

fn push_int(out: &mut String, key: &str, v: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
    out.push(',');
}

fn push_bool(out: &mut String, key: &str, v: bool) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if v { "true" } else { "false" });
    out.push(',');
}

fn push_records(out: &mut String, key: &str, records: &[usize]) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, r) in records.iter().take(MAX_RECORDS_IN_RESPONSE).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_string());
    }
    out.push(']');
    out.push(',');
    if records.len() > MAX_RECORDS_IN_RESPONSE {
        push_bool(out, "truncated", true);
    }
}
