//! The named-index registry: one server, many datasets, many tenants.
//!
//! PR 4's service held exactly one `TastiIndex`, so serving the paper's
//! five workloads needed five deployments. The registry makes indexes a
//! *routed* resource: every entry is a named bundle of
//!
//! * the index itself behind `RwLock<Arc<TastiIndex>>` (readers clone the
//!   `Arc` under a brief read lock, cracking swaps it),
//! * its own [`MeteredLabeler`] — exactly-once oracle accounting is
//!   **per index**, because the oracle answers for one dataset and its
//!   label-cost ledger must not be polluted by a co-tenant's traffic,
//! * its own label budget (tenant cost isolation),
//! * its own [`ServeMetrics`] (per-index sections in the `metrics` op),
//! * its own maintenance mutex (cracking one index never serializes
//!   another's fold-ins), and
//! * an optional snapshot path (where the `snapshot` op persists it).
//!
//! Requests carry an optional `"index"` field; absent means the **default
//! entry**, so every pre-registry wire line keeps working unchanged. The
//! default entry can never be unloaded — `Server` teardown and the
//! back-compat accessors on [`crate::TastiService`] rely on it.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};

use tasti_ingest::Vfs;

use tasti_core::crack::crack_from_labeler_audited;
use tasti_core::index::{AppendError, CrackReport, TastiIndex};
use tasti_core::persist;
use tasti_core::AssignStats;
use tasti_labeler::{FallibleTargetLabeler, MeteredLabeler};
use tasti_obs::{AssignTelemetry, DriftGauge, IngestTelemetry};

use crate::metrics::ServeMetrics;

/// Bridges the cluster crate's assignment stats into the dependency-free
/// telemetry record the `metrics` op serializes (same mapping
/// `tasti_core::build` uses for build telemetry).
fn assign_telemetry(stats: &AssignStats) -> AssignTelemetry {
    AssignTelemetry {
        strategy: stats.strategy.to_string(),
        n_records: stats.n_records as u64,
        n_reps: stats.n_reps as u64,
        n_cells: stats.n_cells as u64,
        nprobe: stats.nprobe as u64,
        quant: stats.quant.to_string(),
        candidate_mean: stats.candidate_mean(),
        candidate_min: stats.candidate_min as u64,
        candidate_max: stats.candidate_max as u64,
        probe_widenings: stats.probe_widenings,
        exact_fallback: stats.exact_fallback,
        audited_records: stats.audited_records as u64,
        audited_recall: stats.audited_recall,
        seconds: stats.seconds,
    }
}

/// Anchors a [`DriftGauge`] on an index's current cluster structure:
/// per-rep mean nearest distances (the radius baseline) and the global
/// nearest-distance variance. `O(n_records)`; runs once per entry at first
/// ingest and again after each drift escalation.
fn anchor_gauge(index: &TastiIndex) -> DriftGauge {
    let mink = index.mink();
    let n_reps = mink.n_reps();
    let mut sum = vec![0.0f64; n_reps];
    let mut count = vec![0u64; n_reps];
    let (mut gsum, mut gsumsq, mut gcount) = (0.0f64, 0.0f64, 0u64);
    for r in 0..mink.n_records() {
        let nb = mink.nearest(r);
        let d = f64::from(nb.dist);
        if !d.is_finite() {
            continue;
        }
        sum[nb.rep as usize] += d;
        count[nb.rep as usize] += 1;
        gsum += d;
        gsumsq += d * d;
        gcount += 1;
    }
    let radius: Vec<f64> = (0..n_reps)
        .map(|c| {
            if count[c] > 0 {
                sum[c] / count[c] as f64
            } else {
                0.0
            }
        })
        .collect();
    let variance = if gcount > 0 {
        let mean = gsum / gcount as f64;
        (gsumsq / gcount as f64 - mean * mean).max(0.0)
    } else {
        0.0
    };
    DriftGauge::new(radius, variance)
}

/// The index-side work of one ingest batch: append, watermark, drift
/// observation, and (past the threshold) the drift escalation. Shared by
/// [`IndexEntry::apply_ingest`]'s in-place and clone-and-swap paths.
/// `inline_refresh` decides what an escalation *does*: replay runs the
/// full assignment refresh right here (startup has no request path to
/// protect), the live path only reports it so the serving layer can
/// schedule the refresh on its background maintenance thread. Returns the
/// assigned id range, the drift reading compared against the threshold,
/// whether it escalated, and the refresh stats when one ran inline.
fn ingest_into(
    idx: &mut TastiIndex,
    gauge: &mut DriftGauge,
    rows: &[Vec<f32>],
    embedded: bool,
    seq: u64,
    drift_threshold: f64,
    inline_refresh: bool,
) -> Result<(std::ops::Range<usize>, f64, bool, Option<AssignStats>), AppendError> {
    let range = idx.try_append_rows(rows, embedded)?;
    idx.set_ingest_watermark(seq);
    for r in range.clone() {
        let nb = idx.mink().nearest(r);
        gauge.observe(nb.rep as usize, f64::from(nb.dist));
    }
    let drift = gauge.drift();
    let escalated = drift > drift_threshold && !range.is_empty();
    let assign = if escalated && inline_refresh {
        let stats = idx.refresh_assignment();
        *gauge = anchor_gauge(idx);
        Some(stats)
    } else {
        None
    };
    Ok((range, drift, escalated, assign))
}

/// Per-entry streaming-ingest state: the drift gauge (anchored lazily on
/// first ingest so ingest-free entries pay nothing) and the telemetry
/// record the `metrics` op emits.
#[derive(Default)]
struct IngestState {
    gauge: Option<DriftGauge>,
    telemetry: IngestTelemetry,
}

/// What one applied ingest batch did to an entry's index.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// False when the frame's sequence was at or below the index's ingest
    /// watermark — an already-applied frame seen again during replay.
    pub applied: bool,
    /// First record id assigned to the batch.
    pub start: usize,
    /// Records appended.
    pub added: usize,
    /// Total records in the index after the batch.
    pub total_records: usize,
    /// Whether drift crossed the threshold. During replay the rep
    /// assignment was refreshed inline; on the live path the refresh is
    /// the serving layer's to schedule (see
    /// [`IndexEntry::schedule_refresh`]), keeping it off the request path.
    pub escalated: bool,
    /// True when this batch's escalation newly claimed the background
    /// refresh slot — the serving layer must run
    /// [`IndexEntry::run_scheduled_refresh`] (escalations firing while a
    /// refresh is already pending coalesce and leave this false).
    pub refresh_scheduled: bool,
    /// The drift-gauge reading right after the batch folded in (pre-reset
    /// when it escalated — the value that tripped the threshold).
    pub drift: f64,
}

/// One named index with everything that must travel with it: labeler,
/// budget, metrics, maintenance lock, snapshot target.
pub struct IndexEntry<L: FallibleTargetLabeler> {
    /// The registry name this entry answers to.
    pub name: String,
    index: RwLock<Arc<TastiIndex>>,
    /// The entry's own metered labeler: exactly-once accounting and the
    /// label-cost ledger are per index, never shared across tenants.
    pub labeler: MeteredLabeler<L>,
    /// Hard target-labeler budget for this entry's lifetime (`None` =
    /// unlimited). Applied to the labeler at construction.
    pub label_budget: Option<u64>,
    /// Per-index operational metrics (the `metrics` op emits one section
    /// per entry plus the service-wide aggregate).
    pub metrics: ServeMetrics,
    /// Serializes this entry's crack maintenance; queries never wait on it.
    maintenance: Mutex<()>,
    /// Streaming-ingest drift gauge + telemetry. Locked after
    /// `maintenance` (ingest) or alone (telemetry reads).
    ingest: Mutex<IngestState>,
    /// Set while a drift-escalated assignment refresh is scheduled but not
    /// yet completed — deduplicates escalations that fire while the
    /// background refresh is still queued or running.
    refresh_pending: AtomicBool,
    /// Where the `snapshot` op persists this entry. For loaded entries this
    /// defaults to the path the snapshot came from.
    pub snapshot_path: Option<PathBuf>,
}

impl<L: FallibleTargetLabeler> IndexEntry<L> {
    /// Bundles an index and a labeler into a named entry. A `label_budget`
    /// overrides the labeler's own budget (same contract the single-index
    /// service had).
    pub fn new(
        name: impl Into<String>,
        index: TastiIndex,
        mut labeler: MeteredLabeler<L>,
        label_budget: Option<u64>,
        snapshot_path: Option<PathBuf>,
    ) -> Self {
        if label_budget.is_some() {
            labeler.set_budget(label_budget);
        }
        Self {
            name: name.into(),
            index: RwLock::new(Arc::new(index)),
            labeler,
            label_budget,
            metrics: ServeMetrics::new(),
            maintenance: Mutex::new(()),
            ingest: Mutex::new(IngestState::default()),
            refresh_pending: AtomicBool::new(false),
            snapshot_path,
        }
    }

    /// A consistent snapshot of this entry's index (brief read lock, then
    /// lock-free).
    pub fn index(&self) -> Arc<TastiIndex> {
        Arc::clone(&self.index.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Folds query-paid labels back into this entry's index (§3.3
    /// cracking) without blocking readers: clone the current index, crack
    /// the clone off-lock, swap the `Arc` under a brief write lock. One
    /// pass at a time per entry; callers that lose the `try_lock` race
    /// skip — the winner folds the shared labeler cache in anyway. The
    /// returned [`CrackReport`] makes the maintenance decision visible:
    /// whether the batch stayed on the incremental min-k append path or
    /// escalated to a full assignment rebuild (and with what realized
    /// candidate counts).
    pub fn crack_pending(&self) -> CrackReport {
        let skipped = CrackReport {
            added: 0,
            rebuilt: false,
            assign: None,
        };
        let _guard = match self.maintenance.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return skipped,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let snapshot = self.index();
        // Cheap pre-check: anything new to fold in?
        if !self
            .labeler
            .labeled_records()
            .iter()
            .any(|&r| r < snapshot.n_records() && !snapshot.is_rep(r))
        {
            return skipped;
        }
        let mut working = (*snapshot).clone();
        let report = crack_from_labeler_audited(&mut working, &self.labeler);
        if report.added > 0 {
            let next = Arc::new(working);
            *self.index.write().unwrap_or_else(|e| e.into_inner()) = next;
            self.metrics.cracked_reps.add(report.added as u64);
            self.metrics.crack_passes.incr();
            let mut st = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
            if report.rebuilt {
                st.telemetry.crack_rebuilds += 1;
                self.metrics.crack_rebuilds.incr();
                if let Some(stats) = &report.assign {
                    st.telemetry.last_assign = Some(assign_telemetry(stats));
                }
            } else {
                st.telemetry.crack_incremental += 1;
            }
        }
        report
    }

    /// Durably-logged ingest, index side: appends `rows` to this entry's
    /// index, feeds the drift gauge, and escalates when drift crosses
    /// `drift_threshold` — inline during replay, reported for background
    /// scheduling on the live path. `seq` is the batch's segment-log
    /// sequence — it becomes the index's ingest watermark, and a frame at
    /// or below the current watermark is skipped (`applied: false`), which
    /// is what makes startup replay idempotent.
    ///
    /// Takes the maintenance lock *blocking* (unlike cracking, ingest must
    /// never be dropped) and mutates a clone off-lock unless no reader
    /// holds the index, in which case it updates in place under the write
    /// lock. Validation errors leave index and gauge untouched.
    pub fn apply_ingest(
        &self,
        rows: &[Vec<f32>],
        embedded: bool,
        seq: u64,
        drift_threshold: f64,
        replay: bool,
    ) -> Result<IngestOutcome, AppendError> {
        let _guard = self.maintenance.lock().unwrap_or_else(|e| e.into_inner());
        let mut slot = self.index.write().unwrap_or_else(|e| e.into_inner());
        if seq != 0 && slot.ingest_watermark() >= seq {
            return Ok(IngestOutcome {
                applied: false,
                start: slot.n_records(),
                added: 0,
                total_records: slot.n_records(),
                escalated: false,
                refresh_scheduled: false,
                drift: 0.0,
            });
        }
        let mut st = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let st = &mut *st;
        if st.gauge.is_none() {
            // Anchor on the pre-ingest structure the FPF pass built.
            st.gauge = Some(anchor_gauge(&slot));
        }
        let gauge = st.gauge.as_mut().expect("anchored above");
        // Replay refreshes inline (startup has no request path to keep
        // fast); live escalations are handed to the background thread.
        let inline = replay;
        // Fast path: no in-flight query holds the index — mutate in place
        // under the write lock (appends are incremental, O(batch)).
        // Otherwise clone off-lock and swap, like cracking.
        let (range, drift, escalated, assign) = match Arc::get_mut(&mut slot) {
            Some(idx) => ingest_into(idx, gauge, rows, embedded, seq, drift_threshold, inline)?,
            None => {
                drop(slot);
                let snapshot = self.index();
                let mut working = (*snapshot).clone();
                drop(snapshot);
                let out = ingest_into(
                    &mut working,
                    gauge,
                    rows,
                    embedded,
                    seq,
                    drift_threshold,
                    inline,
                )?;
                *self.index.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(working);
                out
            }
        };
        st.telemetry.records_ingested += range.len() as u64;
        if replay {
            st.telemetry.replayed_frames += 1;
        } else {
            st.telemetry.batches += 1;
        }
        // Live escalations coalesce onto one pending background refresh;
        // the counter ticks per refresh initiated, not per batch that saw
        // drift above threshold while one was already queued.
        let refresh_scheduled = escalated && !inline && self.schedule_refresh();
        if (escalated && inline) || refresh_scheduled {
            st.telemetry.escalations += 1;
        }
        if let Some(stats) = &assign {
            st.telemetry.last_assign = Some(assign_telemetry(stats));
        }
        st.telemetry.drift_threshold = drift_threshold;
        st.telemetry.drift = st.gauge.as_ref().map(DriftGauge::drift).unwrap_or(0.0);
        Ok(IngestOutcome {
            applied: true,
            start: range.start,
            added: range.len(),
            total_records: range.end,
            escalated,
            refresh_scheduled,
            drift,
        })
    }

    /// Marks a drift escalation as needing a background assignment
    /// refresh. Returns `true` when this call claimed the slot (the caller
    /// should spawn/queue [`IndexEntry::run_scheduled_refresh`]) and
    /// `false` when a refresh is already pending — escalations arriving
    /// while one is queued coalesce into it.
    pub fn schedule_refresh(&self) -> bool {
        self.refresh_pending
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Runs one scheduled drift escalation off the request path: clone the
    /// index, refresh the rep assignment from scratch, swap, re-anchor the
    /// drift gauge on the rebuilt structure. Serialized against ingest and
    /// cracking by the maintenance lock. No-op when nothing was scheduled.
    pub fn run_scheduled_refresh(&self) -> bool {
        if !self.refresh_pending.load(Ordering::Acquire) {
            return false;
        }
        let _guard = self.maintenance.lock().unwrap_or_else(|e| e.into_inner());
        let snapshot = self.index();
        let mut working = (*snapshot).clone();
        drop(snapshot);
        let stats = working.refresh_assignment();
        let rebuilt = anchor_gauge(&working);
        *self.index.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(working);
        let mut st = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        st.gauge = Some(rebuilt);
        st.telemetry.background_refreshes += 1;
        st.telemetry.last_assign = Some(assign_telemetry(&stats));
        st.telemetry.drift = 0.0;
        drop(st);
        self.refresh_pending.store(false, Ordering::Release);
        true
    }

    /// A point-in-time copy of this entry's ingest telemetry with the
    /// drift gauge's current reading folded in. [`IngestTelemetry::is_idle`]
    /// on the result tells callers whether to emit it at all.
    pub fn ingest_telemetry(&self) -> IngestTelemetry {
        let st = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let mut t = st.telemetry.clone();
        if let Some(g) = &st.gauge {
            t.drift = g.drift();
        }
        t
    }

    /// Persists this entry's current index to `path` (atomic temp-file +
    /// rename via `persist::save_with_vfs`, through the service's storage
    /// seam so disk faults are injectable). Returns
    /// `(records, reps, watermark)` of the saved snapshot — the watermark
    /// is what segment-log compaction keys on; bumps this entry's snapshot
    /// counters either way.
    pub fn snapshot_to(
        &self,
        path: &std::path::Path,
        vfs: &dyn Vfs,
    ) -> Result<(usize, usize, u64), String> {
        let idx = self.index();
        match persist::save_with_vfs(&idx, path, vfs) {
            Ok(()) => {
                self.metrics.snapshots.incr();
                Ok((idx.n_records(), idx.reps().len(), idx.ingest_watermark()))
            }
            Err(e) => {
                self.metrics.snapshot_failures.incr();
                Err(format!("snapshot failed: {e}"))
            }
        }
    }
}

impl<L: FallibleTargetLabeler> std::fmt::Debug for IndexEntry<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let idx = self.index();
        f.debug_struct("IndexEntry")
            .field("name", &self.name)
            .field("records", &idx.n_records())
            .field("reps", &idx.reps().len())
            .field("label_budget", &self.label_budget)
            .finish()
    }
}

/// The name → entry map plus the name unnamed requests route to.
///
/// Entries are `Arc`ed so a request can keep serving against an entry that
/// is concurrently unloaded: the unload removes the *route*, the entry
/// itself lives until its last in-flight query drops it.
pub struct IndexRegistry<L: FallibleTargetLabeler> {
    entries: RwLock<BTreeMap<String, Arc<IndexEntry<L>>>>,
    /// The entry unnamed requests route to; protected from unloading.
    default_name: String,
    /// Held separately so back-compat accessors can hand out references
    /// with the service's lifetime.
    default: Arc<IndexEntry<L>>,
}

impl<L: FallibleTargetLabeler> IndexRegistry<L> {
    /// A registry holding only the default entry.
    pub fn new(default: IndexEntry<L>) -> Self {
        let default_name = default.name.clone();
        let default = Arc::new(default);
        let mut entries = BTreeMap::new();
        entries.insert(default_name.clone(), Arc::clone(&default));
        Self {
            entries: RwLock::new(entries),
            default_name,
            default,
        }
    }

    /// The name unnamed requests route to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The default entry (always present).
    pub fn default_entry(&self) -> &Arc<IndexEntry<L>> {
        &self.default
    }

    /// Resolves a request's routing: `None` → the default entry, `Some` →
    /// the named entry (or `None` if no such index is loaded).
    pub fn get(&self, name: Option<&str>) -> Option<Arc<IndexEntry<L>>> {
        match name {
            None => Some(Arc::clone(&self.default)),
            Some(n) => self
                .entries
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(n)
                .cloned(),
        }
    }

    /// Registers a new named entry. Rejects duplicates — unload first to
    /// replace, so a tenant's meter can never be silently reset.
    pub fn insert(&self, entry: IndexEntry<L>) -> Result<(), String> {
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        if entries.contains_key(&entry.name) {
            return Err(format!("index '{}' is already loaded", entry.name));
        }
        entries.insert(entry.name.clone(), Arc::new(entry));
        Ok(())
    }

    /// Removes a named entry from routing (in-flight queries against it
    /// finish on their own `Arc`). The default entry cannot be unloaded.
    pub fn remove(&self, name: &str) -> Result<Arc<IndexEntry<L>>, String> {
        if name == self.default_name {
            return Err(format!(
                "index '{name}' is the default index and cannot be unloaded"
            ));
        }
        self.entries
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .ok_or_else(|| format!("no index named '{name}' is loaded"))
    }

    /// Every loaded entry, sorted by name.
    pub fn entries(&self) -> Vec<Arc<IndexEntry<L>>> {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Number of loaded entries (≥ 1: the default is always present).
    pub fn len(&self) -> usize {
        self.entries.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Never true — the default entry is always present. Provided because
    /// clippy insists a `len` has an `is_empty`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl<L: FallibleTargetLabeler> std::fmt::Debug for IndexRegistry<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.entries().iter().map(|e| e.name.clone()).collect();
        f.debug_struct("IndexRegistry")
            .field("default", &self.default_name)
            .field("entries", &names)
            .finish()
    }
}
