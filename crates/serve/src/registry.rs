//! The named-index registry: one server, many datasets, many tenants.
//!
//! PR 4's service held exactly one `TastiIndex`, so serving the paper's
//! five workloads needed five deployments. The registry makes indexes a
//! *routed* resource: every entry is a named bundle of
//!
//! * the index itself behind `RwLock<Arc<TastiIndex>>` (readers clone the
//!   `Arc` under a brief read lock, cracking swaps it),
//! * its own [`MeteredLabeler`] — exactly-once oracle accounting is
//!   **per index**, because the oracle answers for one dataset and its
//!   label-cost ledger must not be polluted by a co-tenant's traffic,
//! * its own label budget (tenant cost isolation),
//! * its own [`ServeMetrics`] (per-index sections in the `metrics` op),
//! * its own maintenance mutex (cracking one index never serializes
//!   another's fold-ins), and
//! * an optional snapshot path (where the `snapshot` op persists it).
//!
//! Requests carry an optional `"index"` field; absent means the **default
//! entry**, so every pre-registry wire line keeps working unchanged. The
//! default entry can never be unloaded — `Server` teardown and the
//! back-compat accessors on [`crate::TastiService`] rely on it.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock, TryLockError};

use tasti_core::crack::crack_from_labeler;
use tasti_core::index::TastiIndex;
use tasti_core::persist;
use tasti_labeler::{FallibleTargetLabeler, MeteredLabeler};

use crate::metrics::ServeMetrics;

/// One named index with everything that must travel with it: labeler,
/// budget, metrics, maintenance lock, snapshot target.
pub struct IndexEntry<L: FallibleTargetLabeler> {
    /// The registry name this entry answers to.
    pub name: String,
    index: RwLock<Arc<TastiIndex>>,
    /// The entry's own metered labeler: exactly-once accounting and the
    /// label-cost ledger are per index, never shared across tenants.
    pub labeler: MeteredLabeler<L>,
    /// Hard target-labeler budget for this entry's lifetime (`None` =
    /// unlimited). Applied to the labeler at construction.
    pub label_budget: Option<u64>,
    /// Per-index operational metrics (the `metrics` op emits one section
    /// per entry plus the service-wide aggregate).
    pub metrics: ServeMetrics,
    /// Serializes this entry's crack maintenance; queries never wait on it.
    maintenance: Mutex<()>,
    /// Where the `snapshot` op persists this entry. For loaded entries this
    /// defaults to the path the snapshot came from.
    pub snapshot_path: Option<PathBuf>,
}

impl<L: FallibleTargetLabeler> IndexEntry<L> {
    /// Bundles an index and a labeler into a named entry. A `label_budget`
    /// overrides the labeler's own budget (same contract the single-index
    /// service had).
    pub fn new(
        name: impl Into<String>,
        index: TastiIndex,
        mut labeler: MeteredLabeler<L>,
        label_budget: Option<u64>,
        snapshot_path: Option<PathBuf>,
    ) -> Self {
        if label_budget.is_some() {
            labeler.set_budget(label_budget);
        }
        Self {
            name: name.into(),
            index: RwLock::new(Arc::new(index)),
            labeler,
            label_budget,
            metrics: ServeMetrics::new(),
            maintenance: Mutex::new(()),
            snapshot_path,
        }
    }

    /// A consistent snapshot of this entry's index (brief read lock, then
    /// lock-free).
    pub fn index(&self) -> Arc<TastiIndex> {
        Arc::clone(&self.index.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Folds query-paid labels back into this entry's index (§3.3
    /// cracking) without blocking readers: clone the current index, crack
    /// the clone off-lock, swap the `Arc` under a brief write lock. One
    /// pass at a time per entry; callers that lose the `try_lock` race
    /// skip — the winner folds the shared labeler cache in anyway. Returns
    /// the number of reps added.
    pub fn crack_pending(&self) -> usize {
        let _guard = match self.maintenance.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return 0,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        let snapshot = self.index();
        // Cheap pre-check: anything new to fold in?
        if !self
            .labeler
            .labeled_records()
            .iter()
            .any(|&r| r < snapshot.n_records() && !snapshot.is_rep(r))
        {
            return 0;
        }
        let mut working = (*snapshot).clone();
        let added = crack_from_labeler(&mut working, &self.labeler);
        if added > 0 {
            let next = Arc::new(working);
            *self.index.write().unwrap_or_else(|e| e.into_inner()) = next;
            self.metrics.cracked_reps.add(added as u64);
            self.metrics.crack_passes.incr();
        }
        added
    }

    /// Persists this entry's current index to `path` (atomic temp-file +
    /// rename via `persist::save`). Returns `(records, reps)` of the saved
    /// snapshot; bumps this entry's snapshot counters either way.
    pub fn snapshot_to(&self, path: &std::path::Path) -> Result<(usize, usize), String> {
        let idx = self.index();
        match persist::save(&idx, path) {
            Ok(()) => {
                self.metrics.snapshots.incr();
                Ok((idx.n_records(), idx.reps().len()))
            }
            Err(e) => {
                self.metrics.snapshot_failures.incr();
                Err(format!("snapshot failed: {e}"))
            }
        }
    }
}

impl<L: FallibleTargetLabeler> std::fmt::Debug for IndexEntry<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let idx = self.index();
        f.debug_struct("IndexEntry")
            .field("name", &self.name)
            .field("records", &idx.n_records())
            .field("reps", &idx.reps().len())
            .field("label_budget", &self.label_budget)
            .finish()
    }
}

/// The name → entry map plus the name unnamed requests route to.
///
/// Entries are `Arc`ed so a request can keep serving against an entry that
/// is concurrently unloaded: the unload removes the *route*, the entry
/// itself lives until its last in-flight query drops it.
pub struct IndexRegistry<L: FallibleTargetLabeler> {
    entries: RwLock<BTreeMap<String, Arc<IndexEntry<L>>>>,
    /// The entry unnamed requests route to; protected from unloading.
    default_name: String,
    /// Held separately so back-compat accessors can hand out references
    /// with the service's lifetime.
    default: Arc<IndexEntry<L>>,
}

impl<L: FallibleTargetLabeler> IndexRegistry<L> {
    /// A registry holding only the default entry.
    pub fn new(default: IndexEntry<L>) -> Self {
        let default_name = default.name.clone();
        let default = Arc::new(default);
        let mut entries = BTreeMap::new();
        entries.insert(default_name.clone(), Arc::clone(&default));
        Self {
            entries: RwLock::new(entries),
            default_name,
            default,
        }
    }

    /// The name unnamed requests route to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The default entry (always present).
    pub fn default_entry(&self) -> &Arc<IndexEntry<L>> {
        &self.default
    }

    /// Resolves a request's routing: `None` → the default entry, `Some` →
    /// the named entry (or `None` if no such index is loaded).
    pub fn get(&self, name: Option<&str>) -> Option<Arc<IndexEntry<L>>> {
        match name {
            None => Some(Arc::clone(&self.default)),
            Some(n) => self
                .entries
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(n)
                .cloned(),
        }
    }

    /// Registers a new named entry. Rejects duplicates — unload first to
    /// replace, so a tenant's meter can never be silently reset.
    pub fn insert(&self, entry: IndexEntry<L>) -> Result<(), String> {
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        if entries.contains_key(&entry.name) {
            return Err(format!("index '{}' is already loaded", entry.name));
        }
        entries.insert(entry.name.clone(), Arc::new(entry));
        Ok(())
    }

    /// Removes a named entry from routing (in-flight queries against it
    /// finish on their own `Arc`). The default entry cannot be unloaded.
    pub fn remove(&self, name: &str) -> Result<Arc<IndexEntry<L>>, String> {
        if name == self.default_name {
            return Err(format!(
                "index '{name}' is the default index and cannot be unloaded"
            ));
        }
        self.entries
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .ok_or_else(|| format!("no index named '{name}' is loaded"))
    }

    /// Every loaded entry, sorted by name.
    pub fn entries(&self) -> Vec<Arc<IndexEntry<L>>> {
        self.entries
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Number of loaded entries (≥ 1: the default is always present).
    pub fn len(&self) -> usize {
        self.entries.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Never true — the default entry is always present. Provided because
    /// clippy insists a `len` has an `is_empty`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl<L: FallibleTargetLabeler> std::fmt::Debug for IndexRegistry<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.entries().iter().map(|e| e.name.clone()).collect();
        f.debug_struct("IndexRegistry")
            .field("default", &self.default_name)
            .field("entries", &names)
            .finish()
    }
}
