//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, in order. Grammar (fields
//! beyond `id`/`op` depend on the operation; unknown fields are ignored so
//! old servers tolerate newer clients):
//!
//! ```text
//! request  := { "id": u64, "op": op, ["index": string], [params…] } "\n"
//! op       := "ebs_aggregate" | "supg_recall_target" | "supg_precision_target"
//!           | "limit_query" | "predicate_aggregate" | "ingest"
//!           | "index_stats" | "metrics" | "health"
//!           | "index_load" | "index_unload" | "index_list"
//!           | "snapshot" | "shutdown"
//! score    := { "fn": "count_class" | "has_class" | "has_at_least"
//!                   | "mean_x_position", "class": class, ["count": u64] }
//!           | { "fn": "sql_num_predicates" } | { "fn": "sql_op_is", "op": sqlop }
//!           | { "fn": "speech_is_male" }
//! class    := "car" | "bus" | "truck" | "pedestrian" | "bicycle"
//! sqlop    := "select" | "count" | "max" | "min" | "sum" | "avg"
//! response := { "id": u64|null, "ok": true,  "result": {…},
//!               ["telemetry": {…QueryTelemetry…}] } "\n"
//!           | { "id": u64|null, "ok": false,
//!               "error": { "kind": kind, "message": string,
//!                          ["retry_after_micros": u64],
//!                          ["fault_class": string], ["read_only": true] } } "\n"
//! kind     := "bad_request" | "overloaded" | "shutting_down"
//!           | "budget_exhausted" | "labeler_unavailable"
//!           | "ingest_rejected" | "internal"
//! ```
//!
//! **Storage faults:** when the server's disk rejects writes, `ingest`
//! errors carry `"fault_class":"storage"` and, once the index has entered
//! read-only degradation, `"read_only":true`. Both fields are omitted on
//! every non-storage error, keeping fault-free wire output byte-identical.
//!
//! **Streaming ingest:** `ingest` appends a batch of new records to the
//! routed index: `"rows"` is an array of feature rows (arrays of numbers);
//! `"embedded": true` marks rows already in the index's embedding space
//! (required for TASTI-PT indexes, which carry no embedding model). The
//! batch is acknowledged only after it is durable in the server's segment
//! log; a server running without an ingest log rejects the op with the
//! typed `ingest_rejected` error.
//!
//! Query operations take a `score` (the scoring function executed on
//! representatives and oracle outputs), an optional propagation `k`, an
//! oracle match `threshold` (selection/limit/predicate ops), and the
//! algorithm knobs of the matching `tasti-query` config (defaults apply
//! when absent). `predicate_aggregate` additionally takes a `predicate`
//! score spec; `score` then plays the value role.
//!
//! **Multi-index routing:** every query/admin op accepts an optional
//! `"index": "<name>"` field naming a registry entry; absent routes to the
//! default index, and replies to unrouted requests are byte-identical to
//! the single-index protocol. Routed success replies echo the name as a
//! top-level `"index"` field and inside `telemetry` (so cost ledgers can
//! collate per index). `index_load` takes `"index"` (the new name),
//! `"path"` (an index snapshot file) and optionally `"budget"` (a
//! per-index label budget); `index_unload` takes `"index"`; `index_list`
//! takes nothing and reports every loaded entry.

use std::fmt;
use tasti_core::scoring::{
    CountClass, HasAtLeast, HasClass, MeanXPosition, ScoringFunction, SpeechIsMale,
    SqlNumPredicates, SqlOpIs,
};
use tasti_labeler::{ObjectClass, SqlOp};
use tasti_obs::json::{fmt_f64, push_escaped, JsonValue};
use tasti_obs::QueryTelemetry;

/// A protocol operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// EBS aggregation with the proxy as a control variate.
    EbsAggregate,
    /// SUPG selection with a recall target.
    SupgRecallTarget,
    /// SUPG selection with a precision target.
    SupgPrecisionTarget,
    /// BlazeIt limit query over the proxy ranking.
    LimitQuery,
    /// Importance-sampled aggregation over records matching a predicate.
    PredicateAggregate,
    /// Durably append a batch of new records to the routed index.
    Ingest,
    /// Index metadata (records, reps, cover radius, …).
    IndexStats,
    /// Full operational-metrics dump (admin).
    Metrics,
    /// Oracle-path health: breaker state, fault counters, meter reservation
    /// status (admin).
    Health,
    /// Load an index snapshot under a registry name (admin).
    IndexLoad,
    /// Unload a named index from the registry (admin).
    IndexUnload,
    /// List every loaded index with its routing/meter summary (admin).
    IndexList,
    /// Persist the current (possibly cracked) index atomically (admin).
    Snapshot,
    /// Graceful drain-and-shutdown (admin).
    Shutdown,
}

impl Op {
    /// Every operation, in protocol order.
    pub const ALL: [Op; 14] = [
        Op::EbsAggregate,
        Op::SupgRecallTarget,
        Op::SupgPrecisionTarget,
        Op::LimitQuery,
        Op::PredicateAggregate,
        Op::Ingest,
        Op::IndexStats,
        Op::Metrics,
        Op::Health,
        Op::IndexLoad,
        Op::IndexUnload,
        Op::IndexList,
        Op::Snapshot,
        Op::Shutdown,
    ];

    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Op::EbsAggregate => "ebs_aggregate",
            Op::SupgRecallTarget => "supg_recall_target",
            Op::SupgPrecisionTarget => "supg_precision_target",
            Op::LimitQuery => "limit_query",
            Op::PredicateAggregate => "predicate_aggregate",
            Op::Ingest => "ingest",
            Op::IndexStats => "index_stats",
            Op::Metrics => "metrics",
            Op::Health => "health",
            Op::IndexLoad => "index_load",
            Op::IndexUnload => "index_unload",
            Op::IndexList => "index_list",
            Op::Snapshot => "snapshot",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.name() == name)
    }

    /// Whether the operation runs a query algorithm (touches the labeler
    /// and is followed by crack maintenance).
    pub fn is_query(self) -> bool {
        matches!(
            self,
            Op::EbsAggregate
                | Op::SupgRecallTarget
                | Op::SupgPrecisionTarget
                | Op::LimitQuery
                | Op::PredicateAggregate
        )
    }
}

/// A wire-encodable scoring-function specification (§4.2's `Score` API over
/// the induced schemas the repo ships).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreSpec {
    /// Count detections of a class.
    CountClass(ObjectClass),
    /// 1 if any detection of the class is present.
    HasClass(ObjectClass),
    /// 1 if at least `count` detections of the class are present.
    HasAtLeast(ObjectClass, usize),
    /// Mean box-center x of the class's detections.
    MeanXPosition(ObjectClass),
    /// Number of WHERE predicates of a SQL annotation.
    SqlNumPredicates,
    /// 1 if the SQL annotation's operator matches.
    SqlOpIs(SqlOp),
    /// 1 if the speech annotation is a male speaker.
    SpeechIsMale,
}

fn class_name(c: ObjectClass) -> &'static str {
    match c {
        ObjectClass::Car => "car",
        ObjectClass::Bus => "bus",
        ObjectClass::Truck => "truck",
        ObjectClass::Pedestrian => "pedestrian",
        ObjectClass::Bicycle => "bicycle",
    }
}

fn parse_class(name: &str) -> Option<ObjectClass> {
    ObjectClass::ALL
        .into_iter()
        .find(|&c| class_name(c) == name)
}

fn sql_op_name(op: SqlOp) -> &'static str {
    match op {
        SqlOp::Select => "select",
        SqlOp::Count => "count",
        SqlOp::Max => "max",
        SqlOp::Min => "min",
        SqlOp::Sum => "sum",
        SqlOp::Avg => "avg",
    }
}

fn parse_sql_op(name: &str) -> Option<SqlOp> {
    SqlOp::ALL.into_iter().find(|&op| sql_op_name(op) == name)
}

impl ScoreSpec {
    /// Materializes the scoring function.
    pub fn to_scoring(&self) -> Box<dyn ScoringFunction> {
        match *self {
            ScoreSpec::CountClass(c) => Box::new(CountClass(c)),
            ScoreSpec::HasClass(c) => Box::new(HasClass(c)),
            ScoreSpec::HasAtLeast(c, n) => Box::new(HasAtLeast(c, n)),
            ScoreSpec::MeanXPosition(c) => Box::new(MeanXPosition(c)),
            ScoreSpec::SqlNumPredicates => Box::new(SqlNumPredicates),
            ScoreSpec::SqlOpIs(op) => Box::new(SqlOpIs(op)),
            ScoreSpec::SpeechIsMale => Box::new(SpeechIsMale),
        }
    }

    /// Writes the spec as a JSON object.
    pub fn write(&self, out: &mut String) {
        match *self {
            ScoreSpec::CountClass(c) => {
                out.push_str("{\"fn\":\"count_class\",\"class\":\"");
                out.push_str(class_name(c));
                out.push_str("\"}");
            }
            ScoreSpec::HasClass(c) => {
                out.push_str("{\"fn\":\"has_class\",\"class\":\"");
                out.push_str(class_name(c));
                out.push_str("\"}");
            }
            ScoreSpec::HasAtLeast(c, n) => {
                out.push_str("{\"fn\":\"has_at_least\",\"class\":\"");
                out.push_str(class_name(c));
                out.push_str("\",\"count\":");
                out.push_str(&n.to_string());
                out.push('}');
            }
            ScoreSpec::MeanXPosition(c) => {
                out.push_str("{\"fn\":\"mean_x_position\",\"class\":\"");
                out.push_str(class_name(c));
                out.push_str("\"}");
            }
            ScoreSpec::SqlNumPredicates => out.push_str("{\"fn\":\"sql_num_predicates\"}"),
            ScoreSpec::SqlOpIs(op) => {
                out.push_str("{\"fn\":\"sql_op_is\",\"op\":\"");
                out.push_str(sql_op_name(op));
                out.push_str("\"}");
            }
            ScoreSpec::SpeechIsMale => out.push_str("{\"fn\":\"speech_is_male\"}"),
        }
    }

    /// Parses a spec from its JSON object form.
    pub fn parse(v: &JsonValue) -> Result<ScoreSpec, String> {
        let name = v
            .get("fn")
            .and_then(JsonValue::as_str)
            .ok_or("score spec needs a string 'fn' field")?;
        let class = || {
            let c = v
                .get("class")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("score fn '{name}' needs a 'class' field"))?;
            parse_class(c).ok_or(format!(
                "unknown class '{c}' (car|bus|truck|pedestrian|bicycle)"
            ))
        };
        match name {
            "count_class" => Ok(ScoreSpec::CountClass(class()?)),
            "has_class" => Ok(ScoreSpec::HasClass(class()?)),
            "has_at_least" => {
                let n = v
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or("has_at_least needs an integer 'count' field")?;
                Ok(ScoreSpec::HasAtLeast(class()?, n as usize))
            }
            "mean_x_position" => Ok(ScoreSpec::MeanXPosition(class()?)),
            "sql_num_predicates" => Ok(ScoreSpec::SqlNumPredicates),
            "sql_op_is" => {
                let o = v
                    .get("op")
                    .and_then(JsonValue::as_str)
                    .ok_or("sql_op_is needs a string 'op' field")?;
                Ok(ScoreSpec::SqlOpIs(parse_sql_op(o).ok_or(format!(
                    "unknown sql op '{o}' (select|count|max|min|sum|avg)"
                ))?))
            }
            "speech_is_male" => Ok(ScoreSpec::SpeechIsMale),
            other => Err(format!("unknown score fn '{other}'")),
        }
    }
}

/// A parsed protocol request. Optional fields default to the matching
/// `tasti-query` config defaults at execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Registry index to route to (absent → the default index). For
    /// `index_load`/`index_unload` this is the registry name operated on.
    pub index: Option<String>,
    /// Index snapshot file to load (`index_load` only).
    pub path: Option<String>,
    /// Feature rows to append (`ingest` only).
    pub rows: Option<Vec<Vec<f32>>>,
    /// Whether `rows` are already in the index's embedding space
    /// (`ingest` only; default false = raw features run through the
    /// index's embedding model).
    pub embedded: Option<bool>,
    /// Scoring function (query ops; the *value* score for
    /// `predicate_aggregate`).
    pub score: Option<ScoreSpec>,
    /// Predicate scoring function (`predicate_aggregate` only).
    pub predicate: Option<ScoreSpec>,
    /// Oracle match threshold: a record matches when its oracle score is
    /// ≥ this (SUPG, limit, and the predicate of `predicate_aggregate`).
    /// Default 0.5 — right for 0/1 predicate scores.
    pub threshold: Option<f64>,
    /// Propagation `k` override (default: the index's own `k`).
    pub k: Option<usize>,
    /// EBS absolute error target.
    pub error_target: Option<f64>,
    /// Confidence level (all guarantee-carrying ops).
    pub confidence: Option<f64>,
    /// SUPG recall target.
    pub recall_target: Option<f64>,
    /// SUPG precision target.
    pub precision_target: Option<f64>,
    /// Oracle budget (SUPG / predicate aggregation).
    pub budget: Option<usize>,
    /// Matches requested (limit queries).
    pub k_matches: Option<usize>,
    /// Scan cap (limit queries; default: all records).
    pub max_scan: Option<usize>,
    /// Probe chunk size (limit queries; default 1 = sequential-identical).
    pub probe_batch: Option<usize>,
    /// RNG seed for the sampling-based ops.
    pub seed: Option<u64>,
    /// Uniform mixing fraction of the importance samplers.
    pub uniform_mix: Option<f64>,
}

impl Request {
    /// A request for `op` with every parameter unset.
    pub fn new(op: Op) -> Self {
        Self {
            id: 0,
            op,
            index: None,
            path: None,
            rows: None,
            embedded: None,
            score: None,
            predicate: None,
            threshold: None,
            k: None,
            error_target: None,
            confidence: None,
            recall_target: None,
            precision_target: None,
            budget: None,
            k_matches: None,
            max_scan: None,
            probe_batch: None,
            seed: None,
            uniform_mix: None,
        }
    }

    /// Serializes to one wire line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"op\":\"");
        out.push_str(self.op.name());
        out.push('"');
        if let Some(name) = &self.index {
            out.push_str(",\"index\":\"");
            push_escaped(&mut out, name);
            out.push('"');
        }
        if let Some(path) = &self.path {
            out.push_str(",\"path\":\"");
            push_escaped(&mut out, path);
            out.push('"');
        }
        if let Some(rows) = &self.rows {
            out.push_str(",\"rows\":[");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, x) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&fmt_f64(f64::from(*x)));
                }
                out.push(']');
            }
            out.push(']');
        }
        if let Some(embedded) = self.embedded {
            out.push_str(",\"embedded\":");
            out.push_str(if embedded { "true" } else { "false" });
        }
        if let Some(s) = &self.score {
            out.push_str(",\"score\":");
            s.write(&mut out);
        }
        if let Some(p) = &self.predicate {
            out.push_str(",\"predicate\":");
            p.write(&mut out);
        }
        let num = |key: &str, v: Option<f64>, out: &mut String| {
            if let Some(v) = v {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":");
                out.push_str(&fmt_f64(v));
            }
        };
        num("threshold", self.threshold, &mut out);
        num("error_target", self.error_target, &mut out);
        num("confidence", self.confidence, &mut out);
        num("recall_target", self.recall_target, &mut out);
        num("precision_target", self.precision_target, &mut out);
        num("uniform_mix", self.uniform_mix, &mut out);
        let int = |key: &str, v: Option<u64>, out: &mut String| {
            if let Some(v) = v {
                out.push_str(",\"");
                out.push_str(key);
                out.push_str("\":");
                out.push_str(&v.to_string());
            }
        };
        int("k", self.k.map(|v| v as u64), &mut out);
        int("budget", self.budget.map(|v| v as u64), &mut out);
        int("k_matches", self.k_matches.map(|v| v as u64), &mut out);
        int("max_scan", self.max_scan.map(|v| v as u64), &mut out);
        int("probe_batch", self.probe_batch.map(|v| v as u64), &mut out);
        int("seed", self.seed, &mut out);
        out.push('}');
        out
    }

    /// Parses one wire line. On failure the error carries whatever request
    /// id could be recovered, so the error response still correlates.
    pub fn parse_line(line: &str) -> Result<Request, ProtoError> {
        let v = JsonValue::parse(line).map_err(|e| ProtoError {
            id: None,
            message: format!("malformed JSON: {e}"),
        })?;
        let id = v.get("id").and_then(JsonValue::as_u64);
        let fail = |message: String| ProtoError { id, message };
        let op_name = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("request needs a string 'op' field".into()))?;
        let op = Op::parse(op_name).ok_or_else(|| fail(format!("unknown op '{op_name}'")))?;
        let score = match v.get("score") {
            Some(s) => Some(ScoreSpec::parse(s).map_err(&fail)?),
            None => None,
        };
        let predicate = match v.get("predicate") {
            Some(s) => Some(ScoreSpec::parse(s).map_err(&fail)?),
            None => None,
        };
        let f = |key: &str| -> Result<Option<f64>, ProtoError> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => x.as_f64().map(Some).ok_or_else(|| ProtoError {
                    id,
                    message: format!("field '{key}' must be a number"),
                }),
            }
        };
        let u = |key: &str| -> Result<Option<u64>, ProtoError> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => x.as_u64().map(Some).ok_or_else(|| ProtoError {
                    id,
                    message: format!("field '{key}' must be a non-negative integer"),
                }),
            }
        };
        let s = |key: &str| -> Result<Option<String>, ProtoError> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => x
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| ProtoError {
                        id,
                        message: format!("field '{key}' must be a string"),
                    }),
            }
        };
        let rows = match v.get("rows") {
            None | Some(JsonValue::Null) => None,
            Some(JsonValue::Array(items)) => {
                let mut parsed = Vec::with_capacity(items.len());
                for (i, row) in items.iter().enumerate() {
                    let bad = || ProtoError {
                        id,
                        message: format!("'rows[{i}]' must be an array of numbers"),
                    };
                    let row = row.as_array().ok_or_else(bad)?;
                    let mut vals = Vec::with_capacity(row.len());
                    for x in row {
                        vals.push(x.as_f64().ok_or_else(bad)? as f32);
                    }
                    parsed.push(vals);
                }
                Some(parsed)
            }
            Some(_) => {
                return Err(fail("field 'rows' must be an array of arrays".into()));
            }
        };
        let embedded = match v.get("embedded") {
            None | Some(JsonValue::Null) => None,
            Some(x) => Some(
                x.as_bool()
                    .ok_or_else(|| fail("field 'embedded' must be a boolean".into()))?,
            ),
        };
        Ok(Request {
            id: id.unwrap_or(0),
            op,
            index: s("index")?,
            path: s("path")?,
            rows,
            embedded,
            score,
            predicate,
            threshold: f("threshold")?,
            k: u("k")?.map(|v| v as usize),
            error_target: f("error_target")?,
            confidence: f("confidence")?,
            recall_target: f("recall_target")?,
            precision_target: f("precision_target")?,
            budget: u("budget")?.map(|v| v as usize),
            k_matches: u("k_matches")?.map(|v| v as usize),
            max_scan: u("max_scan")?.map(|v| v as usize),
            probe_batch: u("probe_batch")?.map(|v| v as usize),
            seed: u("seed")?,
            uniform_mix: f("uniform_mix")?,
        })
    }
}

/// A request that could not be parsed; `id` is echoed when recoverable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The request id, when the document was well-formed enough to carry
    /// one.
    pub id: Option<u64>,
    /// Why parsing failed.
    pub message: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Typed error kinds of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request could not be parsed or misses required parameters.
    BadRequest,
    /// Admission control: the connection queue is full.
    Overloaded,
    /// The server is draining; no new requests are accepted.
    ShuttingDown,
    /// The service-lifetime labeler budget would be exceeded.
    BudgetExhausted,
    /// The oracle path is down: the circuit breaker is open (the error
    /// carries `retry_after_micros`), or degraded replies are disabled and
    /// the oracle faulted mid-query.
    LabelerUnavailable,
    /// An ingest batch could not be accepted: the server runs without an
    /// ingest log, or the durable append itself failed (the batch is NOT
    /// acknowledged and must be retried).
    IngestRejected,
    /// The query panicked or another internal failure occurred.
    Internal,
}

impl ErrorKind {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::BudgetExhausted => "budget_exhausted",
            ErrorKind::LabelerUnavailable => "labeler_unavailable",
            ErrorKind::IngestRejected => "ingest_rejected",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Builds a success response line: `result_body` must be the inner JSON of
/// the result object (without braces — e.g. `"estimate":1.5,"samples":100`).
pub fn ok_response(id: u64, result_body: &str, telemetry: Option<&QueryTelemetry>) -> String {
    ok_response_routed(id, result_body, telemetry, None)
}

/// [`ok_response`] for a request that named its index: echoes the name as
/// a top-level `"index"` field and splices it into the telemetry object so
/// downstream cost ledgers can collate per index. With `index == None` the
/// output is byte-identical to [`ok_response`] — the back-compat contract
/// for unrouted (pre-registry) request lines.
pub fn ok_response_routed(
    id: u64,
    result_body: &str,
    telemetry: Option<&QueryTelemetry>,
    index: Option<&str>,
) -> String {
    let mut out = String::from("{\"id\":");
    out.push_str(&id.to_string());
    out.push_str(",\"ok\":true,\"result\":{");
    out.push_str(result_body);
    out.push('}');
    if let Some(name) = index {
        out.push_str(",\"index\":\"");
        push_escaped(&mut out, name);
        out.push('"');
    }
    if let Some(t) = telemetry {
        out.push_str(",\"telemetry\":");
        let json = t.to_json();
        match index {
            // Splice `"index"` in before the closing brace; QueryTelemetry
            // stays index-agnostic (routing is a serve-layer concept).
            Some(name) => {
                out.push_str(&json[..json.len() - 1]);
                out.push_str(",\"index\":\"");
                push_escaped(&mut out, name);
                out.push_str("\"}");
            }
            None => out.push_str(&json),
        }
    }
    out.push('}');
    out
}

/// Builds an error response line.
pub fn err_response(id: Option<u64>, kind: ErrorKind, message: &str) -> String {
    err_response_with_retry(id, kind, message, None)
}

/// Builds an error response line carrying a retry hint: clients seeing a
/// `labeler_unavailable` error should back off `retry_after_micros` before
/// retrying (the server's circuit-breaker window). Omitted when `None`, so
/// hint-free errors stay byte-identical to the pre-fault-model wire form.
pub fn err_response_with_retry(
    id: Option<u64>,
    kind: ErrorKind,
    message: &str,
    retry_after_micros: Option<u64>,
) -> String {
    err_response_full(id, kind, message, retry_after_micros, None, false)
}

/// The full error-response builder: additionally carries the fault
/// taxonomy of storage failures. `fault_class` names the failing subsystem
/// (`"storage"` for disk faults) and `read_only` marks that the routed
/// index has entered read-only degradation. Both are omitted when absent /
/// false, so every pre-existing error stays byte-identical on the wire.
pub fn err_response_full(
    id: Option<u64>,
    kind: ErrorKind,
    message: &str,
    retry_after_micros: Option<u64>,
    fault_class: Option<&str>,
    read_only: bool,
) -> String {
    let mut out = String::from("{\"id\":");
    match id {
        Some(id) => out.push_str(&id.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"ok\":false,\"error\":{\"kind\":\"");
    out.push_str(kind.name());
    out.push_str("\",\"message\":\"");
    push_escaped(&mut out, message);
    out.push('"');
    if let Some(micros) = retry_after_micros {
        out.push_str(",\"retry_after_micros\":");
        out.push_str(&micros.to_string());
    }
    if let Some(class) = fault_class {
        out.push_str(",\"fault_class\":\"");
        push_escaped(&mut out, class);
        out.push('"');
    }
    if read_only {
        out.push_str(",\"read_only\":true");
    }
    out.push_str("}}");
    out
}

/// A parsed response line (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoed request id (`None` for connection-level errors such as
    /// `overloaded`, which precede any request).
    pub id: Option<u64>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// The result object (`Null` on errors).
    pub result: JsonValue,
    /// The registry index the request was routed to (echoed only when the
    /// request named one).
    pub index: Option<String>,
    /// The echoed per-request `QueryTelemetry`, when the op produced one.
    pub telemetry: Option<JsonValue>,
    /// Error kind (`ok == false`).
    pub error_kind: Option<String>,
    /// Error message (`ok == false`).
    pub error_message: Option<String>,
    /// Server backoff hint (`labeler_unavailable` errors): microseconds
    /// until the breaker allows its next probe.
    pub retry_after_micros: Option<u64>,
    /// Failing subsystem on typed faults (`"storage"` for disk failures);
    /// absent on non-fault errors.
    pub fault_class: Option<String>,
    /// Whether the routed index has entered read-only degradation (storage
    /// faults only; `false` when the field is absent).
    pub read_only: bool,
}

impl Reply {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
        let ok = v
            .get("ok")
            .and_then(JsonValue::as_bool)
            .ok_or("response needs a boolean 'ok' field")?;
        Ok(Reply {
            id: v.get("id").and_then(JsonValue::as_u64),
            ok,
            result: v.get("result").cloned().unwrap_or(JsonValue::Null),
            index: v
                .get("index")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            telemetry: v.get("telemetry").cloned(),
            error_kind: v
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            error_message: v
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            retry_after_micros: v
                .get("error")
                .and_then(|e| e.get("retry_after_micros"))
                .and_then(JsonValue::as_u64),
            fault_class: v
                .get("error")
                .and_then(|e| e.get("fault_class"))
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            read_only: v
                .get("error")
                .and_then(|e| e.get("read_only"))
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_round_trips_through_its_name() {
        for op in Op::ALL {
            assert_eq!(Op::parse(op.name()), Some(op));
        }
        assert_eq!(Op::parse("nope"), None);
    }

    #[test]
    fn score_specs_round_trip_through_json() {
        let specs = [
            ScoreSpec::CountClass(ObjectClass::Car),
            ScoreSpec::HasClass(ObjectClass::Bus),
            ScoreSpec::HasAtLeast(ObjectClass::Truck, 3),
            ScoreSpec::MeanXPosition(ObjectClass::Pedestrian),
            ScoreSpec::SqlNumPredicates,
            ScoreSpec::SqlOpIs(SqlOp::Select),
            ScoreSpec::SpeechIsMale,
        ];
        for spec in specs {
            let mut json = String::new();
            spec.write(&mut json);
            let parsed = ScoreSpec::parse(&JsonValue::parse(&json).unwrap()).unwrap();
            assert_eq!(parsed, spec, "via {json}");
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let mut req = Request::new(Op::SupgRecallTarget);
        req.id = 42;
        req.score = Some(ScoreSpec::HasAtLeast(ObjectClass::Car, 2));
        req.recall_target = Some(0.9);
        req.budget = Some(500);
        req.seed = Some(7);
        let parsed = Request::parse_line(&req.to_json()).unwrap();
        assert_eq!(parsed, req);
        // Unset fields stay unset.
        assert_eq!(parsed.k_matches, None);
        assert_eq!(parsed.threshold, None);
    }

    #[test]
    fn parse_errors_recover_the_request_id() {
        let err = Request::parse_line(r#"{"id":9,"op":"launch_missiles"}"#).unwrap_err();
        assert_eq!(err.id, Some(9));
        assert!(err.message.contains("unknown op"));
        let err = Request::parse_line("not json at all").unwrap_err();
        assert_eq!(err.id, None);
        let err = Request::parse_line(r#"{"id":3,"op":"limit_query","k_matches":-2}"#).unwrap_err();
        assert_eq!(err.id, Some(3));
        assert!(err.message.contains("k_matches"));
    }

    #[test]
    fn responses_round_trip_through_reply() {
        let mut t = QueryTelemetry::new("limit_query");
        t.invocations = 17;
        let line = ok_response(5, "\"found\":[1,2],\"satisfied\":true", Some(&t));
        let reply = Reply::parse(&line).unwrap();
        assert_eq!(reply.id, Some(5));
        assert!(reply.ok);
        assert_eq!(
            reply.result.get("found").unwrap().as_array().unwrap().len(),
            2
        );
        assert_eq!(
            reply
                .telemetry
                .as_ref()
                .unwrap()
                .get("invocations")
                .unwrap()
                .as_u64(),
            Some(17)
        );

        let line = err_response(None, ErrorKind::Overloaded, "queue full (depth 16)");
        let reply = Reply::parse(&line).unwrap();
        assert_eq!(reply.id, None);
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some("overloaded"));
        assert!(reply.error_message.unwrap().contains("queue full"));
    }

    #[test]
    fn retry_after_hint_round_trips_and_is_elided_when_absent() {
        let line = err_response_with_retry(
            Some(8),
            ErrorKind::LabelerUnavailable,
            "circuit breaker open",
            Some(750_000),
        );
        let reply = Reply::parse(&line).unwrap();
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some("labeler_unavailable"));
        assert_eq!(reply.retry_after_micros, Some(750_000));

        let bare = err_response(Some(8), ErrorKind::Internal, "boom");
        assert!(!bare.contains("retry_after_micros"));
        assert_eq!(Reply::parse(&bare).unwrap().retry_after_micros, None);
    }

    #[test]
    fn routed_requests_round_trip_and_reject_non_strings() {
        let mut req = Request::new(Op::LimitQuery);
        req.id = 11;
        req.index = Some("night_street".into());
        req.k_matches = Some(3);
        let parsed = Request::parse_line(&req.to_json()).unwrap();
        assert_eq!(parsed, req);

        let mut load = Request::new(Op::IndexLoad);
        load.index = Some("alt".into());
        load.path = Some("/tmp/idx \"quoted\".json".into());
        let parsed = Request::parse_line(&load.to_json()).unwrap();
        assert_eq!(parsed, load);

        let err = Request::parse_line(r#"{"id":4,"op":"index_stats","index":7}"#).unwrap_err();
        assert_eq!(err.id, Some(4));
        assert!(err.message.contains("'index' must be a string"));
        let err = Request::parse_line(r#"{"id":5,"op":"index_load","path":[]}"#).unwrap_err();
        assert!(err.message.contains("'path' must be a string"));
    }

    #[test]
    fn routed_responses_carry_the_index_everywhere_unrouted_stay_identical() {
        let mut t = QueryTelemetry::new("limit_query");
        t.invocations = 3;
        // No index → byte-identical to the plain builder (back-compat).
        assert_eq!(
            ok_response_routed(7, "\"x\":1", Some(&t), None),
            ok_response(7, "\"x\":1", Some(&t))
        );
        let line = ok_response_routed(7, "\"x\":1", Some(&t), Some("alt"));
        let reply = Reply::parse(&line).unwrap();
        assert_eq!(reply.index.as_deref(), Some("alt"));
        // …and spliced into the telemetry object for the cost ledger.
        assert_eq!(
            reply
                .telemetry
                .as_ref()
                .unwrap()
                .get("index")
                .and_then(JsonValue::as_str),
            Some("alt")
        );
        // Telemetry-free admin replies still echo the top-level field.
        let line = ok_response_routed(8, "\"records\":10", None, Some("alt"));
        let reply = Reply::parse(&line).unwrap();
        assert_eq!(reply.index.as_deref(), Some("alt"));
        assert!(reply.telemetry.is_none());
    }

    #[test]
    fn ingest_requests_round_trip_rows_and_embedded_flag() {
        let mut req = Request::new(Op::Ingest);
        req.id = 21;
        req.index = Some("night_street".into());
        req.rows = Some(vec![vec![0.5, -1.25, 3.0], vec![0.0, 2.0, 4.5]]);
        req.embedded = Some(true);
        let line = req.to_json();
        assert!(line.contains("\"op\":\"ingest\""));
        assert!(line.contains("\"rows\":[[0.5,-1.25,3.0],[0.0,2.0,4.5]]"));
        assert!(line.contains("\"embedded\":true"));
        let parsed = Request::parse_line(&line).unwrap();
        assert_eq!(parsed, req);
        // Absent fields stay absent (and off the wire).
        let bare = Request::new(Op::Ingest).to_json();
        assert!(!bare.contains("rows") && !bare.contains("embedded"));
        let parsed = Request::parse_line(&bare).unwrap();
        assert_eq!(parsed.rows, None);
        assert_eq!(parsed.embedded, None);
    }

    #[test]
    fn malformed_ingest_fields_are_typed_parse_errors() {
        let err = Request::parse_line(r#"{"id":6,"op":"ingest","rows":"nope"}"#).unwrap_err();
        assert_eq!(err.id, Some(6));
        assert!(err.message.contains("'rows' must be an array of arrays"));
        let err = Request::parse_line(r#"{"id":7,"op":"ingest","rows":[[1,"x"]]}"#).unwrap_err();
        assert!(err
            .message
            .contains("'rows[0]' must be an array of numbers"));
        let err = Request::parse_line(r#"{"id":8,"op":"ingest","rows":[1]}"#).unwrap_err();
        assert!(err
            .message
            .contains("'rows[0]' must be an array of numbers"));
        let err =
            Request::parse_line(r#"{"id":9,"op":"ingest","rows":[[1]],"embedded":3}"#).unwrap_err();
        assert!(err.message.contains("'embedded' must be a boolean"));
    }

    #[test]
    fn ingest_is_not_a_query_op() {
        assert!(!Op::Ingest.is_query());
        assert_eq!(Op::parse("ingest"), Some(Op::Ingest));
        assert_eq!(ErrorKind::IngestRejected.name(), "ingest_rejected");
    }

    #[test]
    fn unknown_request_fields_are_ignored() {
        let req =
            Request::parse_line(r#"{"id":1,"op":"index_stats","future_field":{"x":1}}"#).unwrap();
        assert_eq!(req.op, Op::IndexStats);
    }
}
