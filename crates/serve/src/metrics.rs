//! Operational metrics of the service.
//!
//! Wraps `tasti-obs` counters and histograms behind one struct the server,
//! service, and the `/metrics` admin request all share. Counters are
//! lock-free; per-operation latency histograms sit behind tiny mutexes
//! (recording is O(1), so the critical section is nanoseconds).

use std::sync::Mutex;
use tasti_obs::json::fmt_f64;
use tasti_obs::{Counter, Histogram, HistogramSummary};

use crate::proto::Op;

/// Latency + outcome statistics for one protocol operation.
#[derive(Debug, Default)]
struct OpStats {
    ok: Counter,
    err: Counter,
    latency_micros: Mutex<Histogram>,
}

/// Shared operational metrics, dumped verbatim by the `metrics` request.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Connections handed to the worker pool.
    pub connections_accepted: Counter,
    /// Connections rejected by admission control (queue full).
    pub connections_rejected_overloaded: Counter,
    /// Connections refused because the server was draining.
    pub connections_rejected_shutdown: Counter,
    /// Requests parsed off the wire (well-formed or not).
    pub requests_total: Counter,
    /// Success responses written.
    pub responses_ok: Counter,
    /// Error responses written (any kind).
    pub responses_error: Counter,
    /// Requests that failed to parse.
    pub bad_requests: Counter,
    /// Representatives added by crack maintenance since startup.
    pub cracked_reps: Counter,
    /// Crack maintenance passes that folded in at least one label.
    pub crack_passes: Counter,
    /// Snapshots persisted (admin `snapshot` requests + shutdown snapshot).
    pub snapshots: Counter,
    /// Queries that observed an unrecoverable oracle fault (whether they
    /// were answered degraded or rejected).
    pub oracle_fault_queries: Counter,
    /// `ok` replies that carried a degraded (proxy-only) partial result.
    pub degraded_replies: Counter,
    /// Requests rejected with `labeler_unavailable` (breaker open on entry,
    /// or a mid-query fault with degraded replies disabled).
    pub labeler_unavailable: Counter,
    /// Rejection replies (`overloaded`/`shutting_down`) dropped because the
    /// peer would not accept the write within the rejection write timeout.
    /// The connection is closed either way — this only tracks that the
    /// courtesy error line was lost.
    pub rejection_write_drops: Counter,
    /// Snapshot attempts (admin `snapshot` requests + shutdown snapshot)
    /// that failed to persist (bad path, full disk, …).
    pub snapshot_failures: Counter,
    /// Requests answered `overloaded` because the evented core's compute
    /// channel was full (request-level backpressure; the connection stays
    /// open). Zero under the threaded core, which rejects at admission.
    pub requests_rejected_overloaded: Counter,
    /// Records durably ingested and applied (acknowledged batches summed).
    pub records_ingested: Counter,
    /// Acknowledged `ingest` batches.
    pub ingest_batches: Counter,
    /// `ingest` batches rejected with the typed `ingest_rejected` error
    /// (no ingest log configured, or the durable append failed).
    pub ingest_rejected: Counter,
    /// Segment-log frames re-applied during startup replay.
    pub ingest_replayed_frames: Counter,
    /// Drift-triggered escalations from incremental rep assignment to a
    /// full assignment refresh.
    pub ingest_escalations: Counter,
    /// Crack maintenance passes that escalated to a full assignment
    /// rebuild (the previously silent reps-grown-by-⅛ heuristic, audited).
    pub crack_rebuilds: Counter,
    /// Drift-escalated assignment refreshes completed off the request path
    /// by the background maintenance thread.
    pub ingest_background_refreshes: Counter,
    /// Acknowledged `ingest` batches whose durability rode a group-commit
    /// fsync led by a concurrent batch (i.e. they shared a sync instead of
    /// issuing their own).
    pub group_commit_batches: Counter,
    /// Index loads that recovered from a corrupt/missing snapshot by
    /// falling back to the rotated last-good (`.prev`) copy.
    pub snapshot_fallback_loads: Counter,
    /// Reactor loop iterations (readiness wakeups + timer/completion
    /// wakeups). Zero under the threaded core.
    pub reactor_wakeups: Counter,
    /// Timer-wheel entries fired (scheduled labeler backoffs, drain
    /// deadlines — including those fired early by a drain).
    pub reactor_timer_fires: Counter,
    /// Time the reactor spent processing one wakeup (not waiting).
    reactor_loop_micros: Mutex<Histogram>,
    /// Readiness events delivered per wakeup (ready-queue depth).
    reactor_ready_events: Mutex<Histogram>,
    per_op: [OpStats; Op::ALL.len()],
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            connections_accepted: Counter::new(),
            connections_rejected_overloaded: Counter::new(),
            connections_rejected_shutdown: Counter::new(),
            requests_total: Counter::new(),
            responses_ok: Counter::new(),
            responses_error: Counter::new(),
            bad_requests: Counter::new(),
            cracked_reps: Counter::new(),
            crack_passes: Counter::new(),
            snapshots: Counter::new(),
            oracle_fault_queries: Counter::new(),
            degraded_replies: Counter::new(),
            labeler_unavailable: Counter::new(),
            rejection_write_drops: Counter::new(),
            snapshot_failures: Counter::new(),
            requests_rejected_overloaded: Counter::new(),
            records_ingested: Counter::new(),
            ingest_batches: Counter::new(),
            ingest_rejected: Counter::new(),
            ingest_replayed_frames: Counter::new(),
            ingest_escalations: Counter::new(),
            crack_rebuilds: Counter::new(),
            ingest_background_refreshes: Counter::new(),
            group_commit_batches: Counter::new(),
            snapshot_fallback_loads: Counter::new(),
            reactor_wakeups: Counter::new(),
            reactor_timer_fires: Counter::new(),
            reactor_loop_micros: Mutex::new(Histogram::default()),
            reactor_ready_events: Mutex::new(Histogram::default()),
            per_op: Default::default(),
        }
    }

    /// Records one reactor loop iteration: processing time and the number
    /// of readiness events it handled.
    pub fn record_reactor_loop(&self, micros: u64, ready_events: u64) {
        self.reactor_loop_micros
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(micros);
        self.reactor_ready_events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(ready_events);
    }

    /// Latency summary of reactor loop processing time.
    pub fn reactor_loop_summary(&self) -> HistogramSummary {
        self.reactor_loop_micros
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .summary()
    }

    /// Summary of readiness events per reactor wakeup.
    pub fn reactor_ready_summary(&self) -> HistogramSummary {
        self.reactor_ready_events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .summary()
    }

    fn stats(&self, op: Op) -> &OpStats {
        let idx = Op::ALL.iter().position(|&o| o == op).expect("op in ALL");
        &self.per_op[idx]
    }

    /// Records one handled request for `op`.
    pub fn record(&self, op: Op, micros: u64, ok: bool) {
        let stats = self.stats(op);
        if ok {
            stats.ok.incr();
            self.responses_ok.incr();
        } else {
            stats.err.incr();
            self.responses_error.incr();
        }
        stats
            .latency_micros
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(micros);
    }

    /// Latency summary for one operation.
    pub fn latency_summary(&self, op: Op) -> HistogramSummary {
        self.stats(op)
            .latency_micros
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .summary()
    }

    /// Success/error response counts for one operation.
    pub fn op_counts(&self, op: Op) -> (u64, u64) {
        let stats = self.stats(op);
        (stats.ok.get(), stats.err.get())
    }

    /// The inner JSON body of the `metrics` result object (no braces).
    pub fn to_json_body(&self) -> String {
        let mut out = String::new();
        let counter = |key: &str, c: &Counter, out: &mut String| {
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&c.get().to_string());
            out.push(',');
        };
        counter("connections_accepted", &self.connections_accepted, &mut out);
        counter(
            "connections_rejected_overloaded",
            &self.connections_rejected_overloaded,
            &mut out,
        );
        counter(
            "connections_rejected_shutdown",
            &self.connections_rejected_shutdown,
            &mut out,
        );
        counter("requests_total", &self.requests_total, &mut out);
        counter("responses_ok", &self.responses_ok, &mut out);
        counter("responses_error", &self.responses_error, &mut out);
        counter("bad_requests", &self.bad_requests, &mut out);
        counter("cracked_reps", &self.cracked_reps, &mut out);
        counter("crack_passes", &self.crack_passes, &mut out);
        counter("snapshots", &self.snapshots, &mut out);
        // Fault-path counters are emitted only once they fire, so the
        // fault-free metrics dump is byte-identical to pre-fault-model
        // output.
        for (key, c) in [
            ("oracle_fault_queries", &self.oracle_fault_queries),
            ("degraded_replies", &self.degraded_replies),
            ("labeler_unavailable", &self.labeler_unavailable),
            ("rejection_write_drops", &self.rejection_write_drops),
            ("snapshot_failures", &self.snapshot_failures),
            (
                "requests_rejected_overloaded",
                &self.requests_rejected_overloaded,
            ),
            // Ingest counters join the same fire-before-emit convention:
            // an ingest-free server's dump stays byte-identical.
            ("records_ingested", &self.records_ingested),
            ("ingest_batches", &self.ingest_batches),
            ("ingest_rejected", &self.ingest_rejected),
            ("ingest_replayed_frames", &self.ingest_replayed_frames),
            ("ingest_escalations", &self.ingest_escalations),
            ("crack_rebuilds", &self.crack_rebuilds),
            // Storage fault-tolerance counters: same convention — absent
            // until the corresponding event fires.
            (
                "ingest_background_refreshes",
                &self.ingest_background_refreshes,
            ),
            ("group_commit_batches", &self.group_commit_batches),
            ("snapshot_fallback_loads", &self.snapshot_fallback_loads),
        ] {
            if c.get() > 0 {
                counter(key, c, &mut out);
            }
        }
        // The reactor section appears only once the evented core has run a
        // loop iteration, so threaded-core dumps stay byte-identical to the
        // pre-reactor output.
        if self.reactor_wakeups.get() > 0 {
            let summary = |key: &str, s: &HistogramSummary, out: &mut String| {
                out.push('"');
                out.push_str(key);
                out.push_str("\":{\"count\":");
                out.push_str(&s.count.to_string());
                out.push_str(",\"min\":");
                out.push_str(&s.min.to_string());
                out.push_str(",\"max\":");
                out.push_str(&s.max.to_string());
                out.push_str(",\"mean\":");
                out.push_str(&fmt_f64(s.mean));
                out.push_str(",\"p50\":");
                out.push_str(&s.p50.to_string());
                out.push_str(",\"p90\":");
                out.push_str(&s.p90.to_string());
                out.push_str(",\"p99\":");
                out.push_str(&s.p99.to_string());
                out.push('}');
            };
            out.push_str("\"reactor\":{");
            out.push_str("\"wakeups\":");
            out.push_str(&self.reactor_wakeups.get().to_string());
            out.push_str(",\"timer_fires\":");
            out.push_str(&self.reactor_timer_fires.get().to_string());
            out.push(',');
            summary("loop_micros", &self.reactor_loop_summary(), &mut out);
            out.push(',');
            summary("ready_events", &self.reactor_ready_summary(), &mut out);
            out.push_str("},");
        }
        out.push_str("\"ops\":{");
        let mut first = true;
        for op in Op::ALL {
            let (ok, err) = self.op_counts(op);
            let s = self.latency_summary(op);
            if s.count == 0 && ok == 0 && err == 0 {
                continue; // keep the dump small: only ops that saw traffic
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(op.name());
            out.push_str("\":{\"ok\":");
            out.push_str(&ok.to_string());
            out.push_str(",\"err\":");
            out.push_str(&err.to_string());
            out.push_str(",\"latency_micros\":{\"count\":");
            out.push_str(&s.count.to_string());
            out.push_str(",\"min\":");
            out.push_str(&s.min.to_string());
            out.push_str(",\"max\":");
            out.push_str(&s.max.to_string());
            out.push_str(",\"mean\":");
            out.push_str(&fmt_f64(s.mean));
            out.push_str(",\"p50\":");
            out.push_str(&s.p50.to_string());
            out.push_str(",\"p90\":");
            out.push_str(&s.p90.to_string());
            out.push_str(",\"p99\":");
            out.push_str(&s.p99.to_string());
            out.push_str("}}");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasti_obs::JsonValue;

    #[test]
    fn record_updates_totals_and_per_op() {
        let m = ServeMetrics::new();
        m.record(Op::EbsAggregate, 120, true);
        m.record(Op::EbsAggregate, 80, true);
        m.record(Op::LimitQuery, 50, false);
        assert_eq!(m.responses_ok.get(), 2);
        assert_eq!(m.responses_error.get(), 1);
        assert_eq!(m.op_counts(Op::EbsAggregate), (2, 0));
        assert_eq!(m.op_counts(Op::LimitQuery), (0, 1));
        let s = m.latency_summary(Op::EbsAggregate);
        assert_eq!(s.count, 2);
        assert!((s.mean - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_are_emitted_only_once_they_fire() {
        let m = ServeMetrics::new();
        let clean = m.to_json_body();
        assert!(!clean.contains("oracle_fault_queries"));
        assert!(!clean.contains("degraded_replies"));
        assert!(!clean.contains("labeler_unavailable"));
        assert!(!clean.contains("rejection_write_drops"));
        assert!(!clean.contains("snapshot_failures"));
        m.oracle_fault_queries.incr();
        m.degraded_replies.incr();
        m.rejection_write_drops.incr();
        m.snapshot_failures.incr();
        let doc = JsonValue::parse(&format!("{{{}}}", m.to_json_body())).unwrap();
        assert_eq!(doc.get("oracle_fault_queries").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("degraded_replies").unwrap().as_u64(), Some(1));
        assert!(doc.get("labeler_unavailable").is_none());
        assert_eq!(doc.get("rejection_write_drops").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("snapshot_failures").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn reactor_section_appears_only_once_the_reactor_runs() {
        let m = ServeMetrics::new();
        assert!(!m.to_json_body().contains("\"reactor\""));
        assert!(!m.to_json_body().contains("requests_rejected_overloaded"));
        m.reactor_wakeups.incr();
        m.reactor_timer_fires.add(2);
        m.record_reactor_loop(75, 3);
        m.requests_rejected_overloaded.incr();
        let doc = JsonValue::parse(&format!("{{{}}}", m.to_json_body())).unwrap();
        assert_eq!(
            doc.get("requests_rejected_overloaded").unwrap().as_u64(),
            Some(1)
        );
        let reactor = doc.get("reactor").unwrap();
        assert_eq!(reactor.get("wakeups").unwrap().as_u64(), Some(1));
        assert_eq!(reactor.get("timer_fires").unwrap().as_u64(), Some(2));
        let loop_micros = reactor.get("loop_micros").unwrap();
        assert_eq!(loop_micros.get("count").unwrap().as_u64(), Some(1));
        let ready = reactor.get("ready_events").unwrap();
        assert_eq!(ready.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn ingest_counters_are_absent_until_ingest_happens() {
        let m = ServeMetrics::new();
        let clean = m.to_json_body();
        for key in [
            "records_ingested",
            "ingest_batches",
            "ingest_rejected",
            "ingest_replayed_frames",
            "ingest_escalations",
            "crack_rebuilds",
        ] {
            assert!(!clean.contains(key), "idle dump must omit {key}");
        }
        m.records_ingested.add(40);
        m.ingest_batches.incr();
        m.crack_rebuilds.incr();
        let doc = JsonValue::parse(&format!("{{{}}}", m.to_json_body())).unwrap();
        assert_eq!(doc.get("records_ingested").unwrap().as_u64(), Some(40));
        assert_eq!(doc.get("ingest_batches").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("crack_rebuilds").unwrap().as_u64(), Some(1));
        assert!(doc.get("ingest_rejected").is_none());
        assert!(doc.get("ingest_escalations").is_none());
    }

    #[test]
    fn storage_counters_are_absent_until_a_fault_fires() {
        let m = ServeMetrics::new();
        let clean = m.to_json_body();
        for key in [
            "ingest_background_refreshes",
            "group_commit_batches",
            "snapshot_fallback_loads",
        ] {
            assert!(!clean.contains(key), "idle dump must omit {key}");
        }
        m.group_commit_batches.add(3);
        m.snapshot_fallback_loads.incr();
        let doc = JsonValue::parse(&format!("{{{}}}", m.to_json_body())).unwrap();
        assert_eq!(doc.get("group_commit_batches").unwrap().as_u64(), Some(3));
        assert_eq!(
            doc.get("snapshot_fallback_loads").unwrap().as_u64(),
            Some(1)
        );
        assert!(doc.get("ingest_background_refreshes").is_none());
    }

    #[test]
    fn json_body_parses_and_omits_idle_ops() {
        let m = ServeMetrics::new();
        m.connections_accepted.add(3);
        m.record(Op::IndexStats, 10, true);
        let doc = JsonValue::parse(&format!("{{{}}}", m.to_json_body())).unwrap();
        assert_eq!(doc.get("connections_accepted").unwrap().as_u64(), Some(3));
        let ops = doc.get("ops").unwrap();
        assert!(ops.get("index_stats").is_some());
        assert!(ops.get("ebs_aggregate").is_none(), "idle ops omitted");
        assert_eq!(
            ops.get("index_stats")
                .unwrap()
                .get("latency_micros")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
