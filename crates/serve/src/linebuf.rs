//! Byte-accurate request-line accumulation, shared by both serving cores.
//!
//! The old threaded reader used `BufReader::read_line`, which **truncates
//! the partial line away when a read times out** (`read_line` restores the
//! buffer's original length on `Err` to keep it valid UTF-8) — so a client
//! whose request straddled the idle-poll timeout had its bytes silently
//! dropped and the eventual reassembled line mangled. [`LineBuffer`]
//! accumulates raw bytes in a `Vec<u8>` instead: a timed-out read leaves
//! every byte in place and the retry appends after them, whatever the
//! timing.

/// Accumulates raw bytes and yields complete `\n`-terminated lines.
///
/// UTF-8 is validated per line (mirroring the `read_line` contract the wire
/// protocol always had): an invalid line is reported as
/// [`LineError::Utf8`], which callers treat as connection-fatal.
#[derive(Debug, Default)]
pub(crate) struct LineBuffer {
    buf: Vec<u8>,
    /// Resume point for the newline scan: bytes before this offset were
    /// already scanned without finding `\n`, so a retry after a short read
    /// does not rescan them.
    scanned: usize,
}

/// Why a line could not be produced.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum LineError {
    /// The line bytes are not valid UTF-8 (connection-fatal, as with the
    /// old `read_line` path).
    Utf8,
}

impl LineBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete or partial).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pops the next complete line (without its `\n`; a trailing `\r` is
    /// kept — the protocol trims whitespace later). Returns `None` when no
    /// complete line is buffered yet.
    pub fn next_line(&mut self) -> Option<Result<String, LineError>> {
        let nl = self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| self.scanned + i);
        match nl {
            Some(nl) => {
                let rest = self.buf.split_off(nl + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the '\n'
                self.scanned = 0;
                Some(String::from_utf8(line).map_err(|_| LineError::Utf8))
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// Takes whatever is buffered as a final, unterminated line — the EOF
    /// path: a one-shot client that half-closes without a trailing `\n`
    /// still deserves an answer. Returns `None` when nothing is buffered.
    pub fn take_trailing(&mut self) -> Option<Result<String, LineError>> {
        if self.buf.is_empty() {
            return None;
        }
        self.scanned = 0;
        let line = std::mem::take(&mut self.buf);
        Some(String::from_utf8(line).map_err(|_| LineError::Utf8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drip_fed_bytes_reassemble_across_arbitrary_chunking() {
        // The regression the old read_line path failed: a line arriving
        // one byte at a time, with "timeouts" (empty extends) in between.
        let line = r#"{"id":7,"op":"index_stats"}"#;
        let mut lb = LineBuffer::new();
        for b in line.as_bytes() {
            assert!(lb.next_line().is_none(), "no line before the newline");
            lb.extend(&[*b]);
        }
        lb.extend(b"\n");
        assert_eq!(lb.next_line().unwrap().unwrap(), line);
        assert!(lb.is_empty());
        assert!(lb.next_line().is_none());
    }

    #[test]
    fn multiple_lines_in_one_chunk_pop_in_order() {
        let mut lb = LineBuffer::new();
        lb.extend(b"first\nsecond\npart");
        assert_eq!(lb.next_line().unwrap().unwrap(), "first");
        assert_eq!(lb.next_line().unwrap().unwrap(), "second");
        assert!(lb.next_line().is_none());
        assert_eq!(lb.len(), 4);
        lb.extend(b"ial\n");
        assert_eq!(lb.next_line().unwrap().unwrap(), "partial");
    }

    #[test]
    fn trailing_line_is_recovered_at_eof() {
        let mut lb = LineBuffer::new();
        lb.extend(b"unterminated request");
        assert!(lb.next_line().is_none());
        assert_eq!(lb.take_trailing().unwrap().unwrap(), "unterminated request");
        assert!(lb.take_trailing().is_none(), "taken exactly once");
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut lb = LineBuffer::new();
        lb.extend(&[0xff, 0xfe, b'\n']);
        assert_eq!(lb.next_line().unwrap().unwrap_err(), LineError::Utf8);
        let mut lb = LineBuffer::new();
        lb.extend(&[0xff, 0xfe]);
        assert_eq!(lb.take_trailing().unwrap().unwrap_err(), LineError::Utf8);
    }

    #[test]
    fn scan_resume_does_not_miss_a_newline_on_the_chunk_boundary() {
        let mut lb = LineBuffer::new();
        lb.extend(b"abc");
        assert!(lb.next_line().is_none());
        lb.extend(b"\ndef");
        assert_eq!(lb.next_line().unwrap().unwrap(), "abc");
        lb.extend(b"\n");
        assert_eq!(lb.next_line().unwrap().unwrap(), "def");
    }
}
