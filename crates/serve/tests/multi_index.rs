//! Loopback tests for the named-index registry: one server hosting many
//! indexes, per-index routing/metering/budgets, registry admin ops, and
//! regressions for the serve-layer shutdown/acceptor bugfixes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tasti_cluster::{Metric, MinKTable};
use tasti_core::index::TastiIndex;
use tasti_core::persist;
use tasti_labeler::{
    BatchTargetLabeler, Detection, LabelCost, LabelerOutput, MeteredLabeler, ObjectClass, RecordId,
    Schema, TargetLabeler,
};
use tasti_nn::Matrix;
use tasti_serve::{
    Client, LabelerFactory, Op, Reply, Request, ScoreSpec, ServeConfig, ServeCore, Server,
    TastiService,
};

const N_RECORDS: usize = 120;

fn truth(record: RecordId) -> usize {
    usize::from(record >= N_RECORDS / 2)
}

fn frame(n_cars: usize) -> LabelerOutput {
    LabelerOutput::Detections(
        (0..n_cars)
            .map(|i| Detection {
                class: ObjectClass::Car,
                x: 0.1 * (i + 1) as f32,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            })
            .collect(),
    )
}

/// Counts how many times each record was labeled — the exactly-once probe,
/// one per hosted index.
#[derive(Default)]
struct CountingLabeler {
    per_record: Mutex<HashMap<RecordId, u64>>,
    total: AtomicU64,
}

impl CountingLabeler {
    fn max_labels_per_record(&self) -> u64 {
        self.per_record
            .lock()
            .unwrap()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn distinct_records(&self) -> u64 {
        self.per_record.lock().unwrap().len() as u64
    }
}

impl TargetLabeler for CountingLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        *self.per_record.lock().unwrap().entry(record).or_insert(0) += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        frame(truth(record))
    }

    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 0.0,
            dollars: 0.0,
        }
    }

    fn schema(&self) -> Schema {
        Schema::object_detection()
    }

    fn name(&self) -> &str {
        "counting"
    }
}

impl BatchTargetLabeler for CountingLabeler {}

/// A synthetic index over `N_RECORDS` 1-D embeddings on a line, reps every
/// 20 records.
fn tiny_index() -> TastiIndex {
    let embeddings = Matrix::from_fn(N_RECORDS, 1, |r, _| r as f32);
    let reps: Vec<RecordId> = (0..N_RECORDS).step_by(20).collect();
    let rep_outputs: Vec<LabelerOutput> = reps.iter().map(|&r| frame(truth(r))).collect();
    let rep_emb: Vec<f32> = reps.iter().map(|&r| r as f32).collect();
    let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
    TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
}

fn counting_labeler() -> MeteredLabeler<CountingLabeler> {
    MeteredLabeler::new(CountingLabeler::default())
}

/// A server hosting the default index plus two named co-tenants, `night`
/// (unlimited) and `taipei` (label budget 5).
fn start_multi_server(config: ServeConfig) -> Server<CountingLabeler> {
    let service = TastiService::new(tiny_index(), counting_labeler(), config);
    service
        .insert_index("night", tiny_index(), counting_labeler(), None, None)
        .expect("insert night");
    service
        .insert_index("taipei", tiny_index(), counting_labeler(), Some(5), None)
        .expect("insert taipei");
    Server::start(Arc::new(service)).expect("bind loopback")
}

fn has_car() -> ScoreSpec {
    ScoreSpec::HasClass(ObjectClass::Car)
}

fn limit_request(index: Option<&str>) -> Request {
    let mut req = Request::new(Op::LimitQuery);
    req.score = Some(has_car());
    req.k_matches = Some(3);
    req.index = index.map(String::from);
    req
}

#[test]
fn named_indexes_route_and_meter_independently() {
    let server = start_multi_server(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // All five query ops against the named index, plus the same limit
    // query against the default: metering must stay per-entry.
    let reply = client.call(limit_request(Some("night"))).expect("limit");
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(
        reply.index.as_deref(),
        Some("night"),
        "routed replies echo the index"
    );
    let telemetry = reply.telemetry.expect("telemetry");
    assert_eq!(
        telemetry.get("index").and_then(|v| v.as_str()),
        Some("night"),
        "routed telemetry carries the index for the bench ledger"
    );

    for op in [
        Op::EbsAggregate,
        Op::SupgRecallTarget,
        Op::SupgPrecisionTarget,
        Op::PredicateAggregate,
    ] {
        let mut req = Request::new(op);
        req.index = Some("night".to_string());
        req.seed = Some(7);
        match op {
            Op::EbsAggregate => {
                req.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
                req.error_target = Some(0.2);
            }
            Op::PredicateAggregate => {
                req.predicate = Some(has_car());
                req.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
                req.budget = Some(40);
            }
            _ => {
                req.score = Some(has_car());
                req.recall_target = Some(0.8);
                req.precision_target = Some(0.8);
                req.budget = Some(40);
            }
        }
        let reply = client.call(req).expect("routed query");
        assert!(reply.ok, "{op:?}: {:?}", reply.error_message);
        assert_eq!(reply.index.as_deref(), Some("night"));
    }

    let reply = client.call(limit_request(None)).expect("default limit");
    assert!(reply.ok);
    assert_eq!(reply.index, None, "unrouted replies carry no index");

    // Per-index exactly-once: each entry's counter saw its own records at
    // most once, and the default entry only paid for the default query.
    let service = Arc::clone(server.service());
    let night = service.registry().get(Some("night")).expect("night entry");
    let default = service.registry().get(None).expect("default entry");
    assert!(night.labeler.inner().distinct_records() > 0);
    assert_eq!(night.labeler.inner().max_labels_per_record(), 1);
    assert_eq!(
        night.labeler.invocations(),
        night.labeler.inner().total.load(Ordering::Relaxed)
    );
    assert!(default.labeler.inner().distinct_records() > 0);
    assert_eq!(default.labeler.inner().max_labels_per_record(), 1);
    assert!(
        default.labeler.invocations() < night.labeler.invocations(),
        "five queries on 'night' vs one on default: {} vs {}",
        night.labeler.invocations(),
        default.labeler.invocations()
    );

    // Per-index request accounting: entry metrics split the aggregate.
    assert_eq!(night.metrics.requests_total.get(), 5);
    assert_eq!(default.metrics.requests_total.get(), 1);
    assert_eq!(service.metrics().requests_total.get(), 6);

    // Per-index budget isolation: 'taipei' has budget 5; exhausting it
    // yields the typed error without touching the co-tenants.
    let mut req = Request::new(Op::EbsAggregate);
    req.index = Some("taipei".to_string());
    req.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
    req.error_target = Some(0.01);
    let reply = client.call(req).expect("budget probe");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("budget_exhausted"));
    let taipei = service.registry().get(Some("taipei")).expect("taipei");
    assert_eq!(taipei.labeler.invocations(), 5);
    assert_eq!(
        night.labeler.inner().max_labels_per_record(),
        1,
        "a co-tenant's budget exhaustion must not touch other meters"
    );

    server.shutdown_and_join();
}

#[test]
fn unknown_index_is_a_typed_bad_request() {
    let server = start_multi_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let reply = client.call(limit_request(Some("nope"))).expect("call");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));
    let msg = reply.error_message.expect("message");
    assert!(msg.contains("unknown index 'nope'"), "{msg}");
    assert!(msg.contains("index_list"), "{msg}");
    server.shutdown_and_join();
}

#[test]
fn pre_registry_request_lines_keep_their_reply_shape() {
    // PR 4-era clients know nothing about the registry: raw wire lines
    // without an "index" field must produce replies without one.
    let server = start_multi_server(ServeConfig::default());
    let addr = server.local_addr();

    let conn = TcpStream::connect(addr).expect("connect");
    let mut writer = conn.try_clone().expect("clone");
    let mut reader = BufReader::new(conn);
    for raw in [
        r#"{"op":"index_stats","id":1}"#,
        r#"{"op":"health","id":2}"#,
        r#"{"op":"metrics","id":3}"#,
        r#"{"op":"limit_query","id":4,"score":{"fn":"has_class","class":"car"},"k_matches":2}"#,
    ] {
        writeln!(writer, "{raw}").expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let reply = Reply::parse(line.trim_end()).expect("parse");
        assert!(reply.ok, "{raw}: {:?}", reply.error_message);
        assert_eq!(reply.index, None, "{raw}");
        assert!(
            !line.contains("\"index\":"),
            "unrouted reply grew an index key: {line}"
        );
    }
    // The aggregate metrics reply in a multi-index deployment does gain a
    // per-index section — under the "indexes" key, never "index".
    writeln!(writer, r#"{{"op":"metrics","id":5}}"#).expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"indexes\":{"), "{line}");
    drop(writer);
    server.shutdown_and_join();
}

#[test]
fn index_list_unload_and_default_protection_over_the_wire() {
    let server = start_multi_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // index_list names every entry and the default route.
    let (line, _) = client
        .call_raw(Request::new(Op::IndexList))
        .expect("index_list");
    let reply = Reply::parse(&line).expect("parse");
    assert!(reply.ok);
    assert_eq!(
        reply.result.get("default").and_then(|v| v.as_str()),
        Some("default")
    );
    for name in [
        "\"name\":\"default\"",
        "\"name\":\"night\"",
        "\"name\":\"taipei\"",
    ] {
        assert!(line.contains(name), "{line}");
    }

    // Unload removes the route...
    let mut req = Request::new(Op::IndexUnload);
    req.index = Some("night".to_string());
    let reply = client.call(req).expect("unload");
    assert!(reply.ok, "{:?}", reply.error_message);
    let reply = client.call(limit_request(Some("night"))).expect("query");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));

    // ...but the default entry is protected,
    let mut req = Request::new(Op::IndexUnload);
    req.index = Some("default".to_string());
    let reply = client.call(req).expect("unload default");
    assert!(!reply.ok);
    assert!(reply
        .error_message
        .expect("message")
        .contains("cannot be unloaded"));

    // and a nameless unload is a bad request.
    let reply = client.call(Request::new(Op::IndexUnload)).expect("call");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));

    server.shutdown_and_join();
}

#[test]
fn index_load_snapshot_round_trip_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("tasti-multi-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("tenant.tasti.json");
    persist::save(&tiny_index(), &path).expect("save snapshot");

    // A factory-equipped service can both preload and wire-load snapshots.
    let factory: LabelerFactory<CountingLabeler> = Box::new(|_| counting_labeler());
    let service = TastiService::with_factory(
        tiny_index(),
        counting_labeler(),
        ServeConfig {
            preload: vec![("preloaded".to_string(), path.clone())],
            ..ServeConfig::default()
        },
        factory,
    )
    .expect("preload");
    let server = Server::start(Arc::new(service)).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let reply = client
        .call(limit_request(Some("preloaded")))
        .expect("query");
    assert!(
        reply.ok,
        "preloaded index serves: {:?}",
        reply.error_message
    );

    let mut req = Request::new(Op::IndexLoad);
    req.index = Some("loaded".to_string());
    req.path = Some(path.display().to_string());
    req.budget = Some(5);
    let reply = client.call(req.clone()).expect("index_load");
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(
        reply.result.get("records").and_then(|v| v.as_u64()),
        Some(N_RECORDS as u64)
    );

    // The wire-loaded index serves, under the label budget it was given.
    let reply = client.call(limit_request(Some("loaded"))).expect("query");
    assert!(reply.ok, "{:?}", reply.error_message);
    let entry = server
        .service()
        .registry()
        .get(Some("loaded"))
        .expect("loaded entry");
    assert_eq!(entry.label_budget, Some(5));

    // Duplicate names are rejected; so are loads without a factory-known
    // path.
    let reply = client.call(req).expect("duplicate load");
    assert!(!reply.ok);
    assert!(reply
        .error_message
        .expect("message")
        .contains("already loaded"));
    let mut req = Request::new(Op::IndexLoad);
    req.index = Some("ghost".to_string());
    req.path = Some(dir.join("missing.json").display().to_string());
    let reply = client.call(req).expect("missing load");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn services_without_a_factory_refuse_wire_loads() {
    let server = start_multi_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut req = Request::new(Op::IndexLoad);
    req.index = Some("extra".to_string());
    req.path = Some("/tmp/nope.json".to_string());
    let reply = client.call(req).expect("call");
    assert!(!reply.ok);
    assert!(reply
        .error_message
        .expect("message")
        .contains("no labeler factory"),);
    server.shutdown_and_join();
}

#[test]
fn stalled_rejection_peers_do_not_block_the_acceptor() {
    // Regression: rejection writes used to block without a timeout, so a
    // peer that never read could park the acceptor and freeze admission
    // control for everyone. Pinned to the threaded core — the occupancy
    // mechanics (one worker holds one connection, extras queue then
    // overflow) are specific to the worker-pool architecture.
    let server = start_multi_server(ServeConfig {
        core: ServeCore::Threaded,
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // Occupy the only worker (the round-trip guarantees ownership), then
    // fill the queue.
    let mut held = Client::connect(addr).expect("connect");
    assert!(held.index_stats().expect("stats").ok);
    let _queued = Client::connect(addr).expect("connect queued");
    let service = Arc::clone(server.service());
    for _ in 0..200 {
        if service.metrics().connections_accepted.get() >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Stalled peers: connect into the rejection path and never read.
    let stalled: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(addr).expect("connect stalled"))
        .collect();

    // The acceptor must keep answering promptly: later clients get their
    // typed overloaded reply within a short client-side deadline.
    for round in 0..3 {
        let mut rejected = Client::connect_with_timeouts(
            addr,
            Some(Duration::from_secs(5)),
            Some(Duration::from_secs(2)),
        )
        .expect("connect rejected");
        let reply = rejected
            .index_stats()
            .unwrap_or_else(|e| panic!("acceptor stalled on round {round}: {e}"));
        assert!(!reply.ok);
        assert_eq!(reply.error_kind.as_deref(), Some("overloaded"));
    }
    assert!(service.metrics().connections_rejected_overloaded.get() >= 6);
    drop(stalled);
    drop(held);
    server.shutdown_and_join();
}

#[test]
fn wildcard_bind_server_drains_without_hanging_evented() {
    wildcard_bind_server_drains_without_hanging(ServeCore::Evented);
}

#[test]
fn wildcard_bind_server_drains_without_hanging_threaded() {
    wildcard_bind_server_drains_without_hanging(ServeCore::Threaded);
}

fn wildcard_bind_server_drains_without_hanging(core: ServeCore) {
    // Regression (threaded): begin_shutdown used to self-connect to the
    // *bound* address — for a wildcard bind (0.0.0.0) that connect can
    // fail, which left the acceptor blocked in accept() forever. The
    // evented core needs no self-connection at all (eventfd wakeup), which
    // this test also pins down.
    let server = start_multi_server(ServeConfig {
        core,
        addr: "0.0.0.0:0".to_string(),
        ..ServeConfig::default()
    });
    let port = server.local_addr().port();
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect");
    assert!(client.index_stats().expect("stats").ok);
    drop(client);

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown_and_join();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("wildcard-bind shutdown_and_join hung");
}

#[test]
fn shutdown_snapshot_failure_is_surfaced_not_swallowed() {
    // Regression: join() used to discard the shutdown snapshot result, so
    // a failed persist lost the cracked index silently.
    let dir = std::env::temp_dir().join(format!(
        "tasti-multi-missing-{}/no/such/dir",
        std::process::id()
    ));
    let server = start_multi_server(ServeConfig {
        snapshot_path: Some(dir.join("snap.json")),
        snapshot_on_shutdown: true,
        ..ServeConfig::default()
    });
    let service = Arc::clone(server.service());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert!(client.call(limit_request(None)).expect("limit").ok);
    drop(client);

    server.shutdown();
    let report = server.join_report();
    let message = report.snapshot_error.expect("failure must be reported");
    assert!(message.contains("snapshot failed"), "{message}");
    assert_eq!(service.metrics().snapshot_failures.get(), 1);
}
