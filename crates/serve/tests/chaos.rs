//! Chaos tests: the full resilience stack under a real server —
//! `MeteredLabeler<ResilientLabeler<FaultInjectingLabeler<CountingLabeler>>>`
//! behind TCP, with faults injected deterministically and time driven by a
//! [`TestClock`] (no real sleeps anywhere).
//!
//! The load-bearing assertions, per ROADMAP acceptance criteria:
//!
//! * **100% typed replies**: every request under the fault storm yields a
//!   parseable reply — `ok` (possibly `degraded`), never a dropped
//!   connection or a panic.
//! * **Zero lost reservations**: the meter's reserved count returns to 0
//!   after the storm, faults and all.
//! * **Exactly-once billing**: no record is ever labeled twice by the
//!   inner oracle, and the meter's invoice matches the oracle's own count.
//! * **Breaker lifecycle over the wire**: fatal faults trip the breaker,
//!   open-breaker queries fail fast with `labeler_unavailable` +
//!   `retry_after_micros`, and the half-open probe closes it again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tasti_cluster::{Metric, MinKTable};
use tasti_core::index::TastiIndex;
use tasti_labeler::{
    BatchTargetLabeler, BreakerConfig, Detection, FallibleTargetLabeler, FaultInjectingLabeler,
    FaultKind, FaultPlan, LabelCost, LabelerOutput, MeteredLabeler, ObjectClass, RecordId,
    ResilientLabeler, Schema, TargetLabeler, TestClock,
};
use tasti_nn::Matrix;
use tasti_obs::JsonValue;
use tasti_serve::{Client, Op, Request, ScoreSpec, ServeConfig, ServeCore, Server, TastiService};

const N_RECORDS: usize = 120;

fn truth(record: RecordId) -> usize {
    usize::from(record >= N_RECORDS / 2)
}

fn frame(n_cars: usize) -> LabelerOutput {
    LabelerOutput::Detections(
        (0..n_cars)
            .map(|i| Detection {
                class: ObjectClass::Car,
                x: 0.1 * (i + 1) as f32,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            })
            .collect(),
    )
}

/// The exactly-once probe: counts how many times each record was labeled.
#[derive(Default)]
struct CountingLabeler {
    per_record: Mutex<HashMap<RecordId, u64>>,
    total: AtomicU64,
}

impl CountingLabeler {
    fn max_labels_per_record(&self) -> u64 {
        self.per_record
            .lock()
            .unwrap()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn distinct_records(&self) -> u64 {
        self.per_record.lock().unwrap().len() as u64
    }
}

impl TargetLabeler for CountingLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        *self.per_record.lock().unwrap().entry(record).or_insert(0) += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        frame(truth(record))
    }

    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 0.0,
            dollars: 0.0,
        }
    }

    fn schema(&self) -> Schema {
        Schema::object_detection()
    }

    fn name(&self) -> &str {
        "counting"
    }
}

impl BatchTargetLabeler for CountingLabeler {}

fn tiny_index() -> TastiIndex {
    let embeddings = Matrix::from_fn(N_RECORDS, 1, |r, _| r as f32);
    let reps: Vec<RecordId> = (0..N_RECORDS).step_by(20).collect();
    let rep_outputs: Vec<LabelerOutput> = reps.iter().map(|&r| frame(truth(r))).collect();
    let rep_emb: Vec<f32> = reps.iter().map(|&r| r as f32).collect();
    let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
    TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
}

type ChaosOracle = ResilientLabeler<FaultInjectingLabeler<CountingLabeler>>;

/// A server whose oracle path is the full resilience stack under a test
/// clock: backoff sleeps advance virtual time instead of blocking.
fn chaos_server(
    plan: FaultPlan,
    breaker: BreakerConfig,
    config: ServeConfig,
) -> (Server<ChaosOracle>, Arc<TestClock>) {
    let clock = Arc::new(TestClock::new());
    let injecting = FaultInjectingLabeler::new(CountingLabeler::default(), plan);
    let resilient = ResilientLabeler::with_clock(injecting, clock.clone()).with_breaker(breaker);
    let service = Arc::new(TastiService::new(
        tiny_index(),
        MeteredLabeler::new(resilient),
        config,
    ));
    (Server::start(service).expect("bind loopback"), clock)
}

fn has_car() -> ScoreSpec {
    ScoreSpec::HasClass(ObjectClass::Car)
}

fn limit_request(seed: u64) -> Request {
    let mut req = Request::new(Op::LimitQuery);
    req.score = Some(has_car());
    req.k_matches = Some(3);
    req.seed = Some(seed);
    req
}

/// 8 clients × 4 mixed queries against an oracle that faults on ~40% of
/// calls. Retries absorb the retryable ones; fatal faults degrade their
/// query. Every reply must be typed, every reservation released, and every
/// record billed at most once. Runs against both serving cores — the
/// evented core's scheduled-retry timer must preserve every one of these
/// guarantees.
#[test]
fn storm_of_faults_keeps_replies_typed_and_billing_exact_evented() {
    storm_of_faults_keeps_replies_typed_and_billing_exact(ServeCore::Evented);
}

#[test]
fn storm_of_faults_keeps_replies_typed_and_billing_exact_threaded() {
    storm_of_faults_keeps_replies_typed_and_billing_exact(ServeCore::Threaded);
}

fn storm_of_faults_keeps_replies_typed_and_billing_exact(core: ServeCore) {
    let plan = FaultPlan {
        transient_rate: 0.25,
        timeout_rate: 0.1,
        fatal_rate: 0.05,
        ..FaultPlan::default()
    };
    // A breaker that cannot trip: this test is about the retry path, and a
    // mid-storm open would make which queries fail order-dependent.
    let breaker = BreakerConfig {
        failure_threshold: u32::MAX,
        ..BreakerConfig::default()
    };
    let (server, _clock) = chaos_server(
        plan,
        breaker,
        ServeConfig {
            core,
            workers: 8,
            queue_depth: 32,
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();

    let degraded_total = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let degraded_total = &degraded_total;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..4u64 {
                    let mut req = match (t + round) % 5 {
                        0 => {
                            let mut r = Request::new(Op::EbsAggregate);
                            r.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
                            r.error_target = Some(0.2);
                            r
                        }
                        1 => {
                            let mut r = Request::new(Op::SupgRecallTarget);
                            r.score = Some(has_car());
                            r.recall_target = Some(0.8);
                            r.budget = Some(40);
                            r
                        }
                        2 => {
                            let mut r = Request::new(Op::SupgPrecisionTarget);
                            r.score = Some(has_car());
                            r.precision_target = Some(0.8);
                            r.budget = Some(40);
                            r
                        }
                        3 => limit_request(0),
                        _ => {
                            let mut r = Request::new(Op::PredicateAggregate);
                            r.predicate = Some(has_car());
                            r.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
                            r.budget = Some(40);
                            r
                        }
                    };
                    req.seed = Some(t * 100 + round);
                    let reply = client.call(req).expect("every request gets a reply");
                    // 100% typed: with the breaker pinned shut and no label
                    // budget, every reply is ok — complete or degraded.
                    assert!(
                        reply.ok,
                        "untyped or unexpected failure: {:?} {:?}",
                        reply.error_kind, reply.error_message
                    );
                    if let Some(JsonValue::Bool(true)) = reply.result.get("degraded") {
                        degraded_total.fetch_add(1, Ordering::Relaxed);
                        let telemetry = reply.telemetry.expect("telemetry");
                        assert_eq!(
                            telemetry.get("certified").unwrap().as_bool(),
                            Some(false),
                            "degraded replies are never certified"
                        );
                        assert!(reply.result.get("fault").is_some());
                    }
                }
            });
        }
    });

    let service = Arc::clone(server.service());
    let labeler = service.labeler();
    let resilient = labeler.inner();
    let injecting = resilient.inner();
    let counting = injecting.inner();

    // The storm actually stormed: faults were injected and retried.
    assert!(injecting.injected_faults() > 0, "no faults injected");
    let health = resilient.health().expect("resilient reports health");
    assert!(health.retries > 0, "no retries under a 35% retryable rate");

    // Zero lost reservations, exactly-once billing.
    assert_eq!(labeler.reserved(), 0, "a reservation leaked");
    assert!(counting.distinct_records() > 0);
    assert_eq!(
        counting.max_labels_per_record(),
        1,
        "a record was labeled twice despite retries"
    );
    assert_eq!(
        labeler.invocations(),
        counting.total.load(Ordering::Relaxed)
    );
    assert_eq!(labeler.invocations(), counting.distinct_records());

    // The metrics and health surfaces saw the same story.
    let metrics = service.metrics();
    assert_eq!(metrics.requests_total.get(), 32);
    assert_eq!(metrics.responses_ok.get(), 32);
    assert_eq!(
        metrics.degraded_replies.get(),
        degraded_total.load(Ordering::Relaxed)
    );
    assert_eq!(
        metrics.oracle_fault_queries.get(),
        metrics.degraded_replies.get()
    );

    let mut admin = Client::connect(addr).expect("connect admin");
    let reply = admin.health().expect("health");
    assert!(reply.ok);
    let oracle = reply.result.get("oracle").expect("oracle health present");
    assert!(oracle.get("retries").unwrap().as_u64().unwrap() > 0);
    assert_eq!(reply.result.get("reserved").unwrap().as_u64(), Some(0));

    server.shutdown_and_join();
}

/// Breaker lifecycle over the wire: five fatal faults trip it open, the
/// next query fails fast with a typed `labeler_unavailable` carrying
/// `retry_after_micros`, advancing the clock past the open window admits a
/// half-open probe, and a successful probe closes the breaker again.
#[test]
fn breaker_opens_fails_fast_and_recovers_over_the_wire() {
    let (server, clock) = chaos_server(
        FaultPlan::default(),
        BreakerConfig::default(), // threshold 5, open window 1s
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let service = Arc::clone(server.service());
    let injecting = service.labeler().inner().inner();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Five queries, each meeting one scripted fatal fault on its first
    // oracle call (the degrade gate stops calling after the first fault,
    // so each query consumes exactly one script entry).
    injecting.push_script((0..5).map(|_| Some(FaultKind::Fatal)));
    for i in 0..5u64 {
        let reply = client.call(limit_request(i)).expect("reply");
        assert!(reply.ok, "degraded, not dropped: {:?}", reply.error_message);
        assert_eq!(reply.result.get("degraded").unwrap().as_bool(), Some(true));
        let fault = reply.result.get("fault").unwrap().as_str().unwrap();
        assert!(fault.contains("fatal"), "got: {fault}");
        assert_eq!(
            reply
                .telemetry
                .expect("telemetry")
                .get("certified")
                .unwrap()
                .as_bool(),
            Some(false)
        );
    }

    // Sixth query: breaker is open and the window has not elapsed — the
    // service fails fast without touching the oracle.
    let calls_before = injecting.inner_calls();
    let reply = client.call(limit_request(100)).expect("reply");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("labeler_unavailable"));
    let retry_after = reply
        .retry_after_micros
        .expect("open breaker advertises a retry hint");
    assert!(retry_after > 0, "hint must be in the future");
    assert_eq!(
        injecting.inner_calls(),
        calls_before,
        "fail-fast must not reach the oracle"
    );

    // Health over the wire agrees: breaker open, five fatal faults.
    let health = client.health().expect("health");
    let oracle = health.result.get("oracle").expect("oracle health");
    assert_eq!(oracle.get("breaker").unwrap().as_str(), Some("open"));
    assert_eq!(
        oracle
            .get("faults_by_kind")
            .unwrap()
            .get("fatal")
            .unwrap()
            .as_u64(),
        Some(5)
    );
    assert_eq!(oracle.get("breaker_opens").unwrap().as_u64(), Some(1));

    // Let the open window elapse; the next query is admitted as the
    // half-open probe, succeeds (the script is exhausted, rates are zero),
    // and closes the breaker.
    clock.advance(1_000_001);
    let reply = client.call(limit_request(200)).expect("reply");
    assert!(reply.ok, "{:?}", reply.error_message);
    assert!(reply.result.get("degraded").is_none(), "clean reply");

    let health = client.health().expect("health");
    let oracle = health.result.get("oracle").expect("oracle health");
    assert_eq!(oracle.get("breaker").unwrap().as_str(), Some("closed"));
    assert_eq!(oracle.get("consecutive_faults").unwrap().as_u64(), Some(0));

    // Billing stayed exact through the whole incident.
    let counting = injecting.inner();
    assert_eq!(service.labeler().reserved(), 0);
    assert!(counting.max_labels_per_record() <= 1);
    assert_eq!(service.labeler().invocations(), counting.distinct_records());
    assert_eq!(service.metrics().degraded_replies.get(), 5);
    assert_eq!(service.metrics().labeler_unavailable.get(), 1);

    server.shutdown_and_join();
}

/// With `degraded_replies: false` the service converts a mid-query fault
/// into a typed `labeler_unavailable` error instead of a partial result.
#[test]
fn disabling_degraded_replies_turns_faults_into_typed_errors() {
    let (server, _clock) = chaos_server(
        FaultPlan::default(),
        BreakerConfig::default(),
        ServeConfig {
            workers: 1,
            degraded_replies: false,
            ..ServeConfig::default()
        },
    );
    let service = Arc::clone(server.service());
    service
        .labeler()
        .inner()
        .inner()
        .push_script([Some(FaultKind::Fatal)]);

    let mut client = Client::connect(server.local_addr()).expect("connect");
    let reply = client.call(limit_request(0)).expect("reply");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("labeler_unavailable"));
    assert!(reply
        .error_message
        .unwrap()
        .contains("degraded replies are disabled"));

    let metrics = service.metrics();
    assert_eq!(metrics.labeler_unavailable.get(), 1);
    assert_eq!(metrics.oracle_fault_queries.get(), 1);
    assert_eq!(metrics.degraded_replies.get(), 0);
    assert_eq!(service.labeler().reserved(), 0, "fault released its hold");

    server.shutdown_and_join();
}
