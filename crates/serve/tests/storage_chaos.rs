//! Storage fault tolerance, asserted over the wire: a scripted fsync
//! failure must leave the batch un-acknowledged, degrade ingest to
//! read-only with typed `storage` rejections while queries keep serving,
//! and a restart must replay exactly the acknowledged prefix. Group
//! commit is pinned deterministically with a blocking-sync VFS, and the
//! fault-free paths are pinned byte-for-byte against the real filesystem.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use tasti_cluster::{Metric, MinKTable};
use tasti_core::index::TastiIndex;
use tasti_ingest::{FaultScript, FaultVfs, RealVfs, Vfs, VfsFile, VfsSyncHandle};
use tasti_labeler::{
    BatchTargetLabeler, Detection, LabelCost, LabelerOutput, MeteredLabeler, ObjectClass, RecordId,
    Schema, TargetLabeler,
};
use tasti_nn::Matrix;
use tasti_obs::json::JsonValue;
use tasti_serve::{Client, Op, Reply, Request, ScoreSpec, ServeConfig, Server, TastiService};

const N_RECORDS: usize = 120;

fn frame(n_cars: usize) -> LabelerOutput {
    LabelerOutput::Detections(
        (0..n_cars)
            .map(|i| Detection {
                class: ObjectClass::Car,
                x: 0.1 * (i + 1) as f32,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            })
            .collect(),
    )
}

struct LineLabeler;

impl TargetLabeler for LineLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        frame(usize::from(record >= N_RECORDS / 2))
    }

    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 0.0,
            dollars: 0.0,
        }
    }

    fn schema(&self) -> Schema {
        Schema::object_detection()
    }

    fn name(&self) -> &str {
        "line"
    }
}

impl BatchTargetLabeler for LineLabeler {}

/// A synthetic model-less index over 1-D embeddings on a line (the
/// `ingest.rs` fixture).
fn tiny_index() -> TastiIndex {
    let embeddings = Matrix::from_fn(N_RECORDS, 1, |r, _| r as f32);
    let reps: Vec<RecordId> = (0..N_RECORDS).step_by(20).collect();
    let rep_outputs: Vec<LabelerOutput> = reps
        .iter()
        .map(|&r| frame(usize::from(r >= N_RECORDS / 2)))
        .collect();
    let rep_emb: Vec<f32> = reps.iter().map(|&r| r as f32).collect();
    let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
    TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
}

fn service(config: ServeConfig) -> TastiService<LineLabeler> {
    TastiService::new(tiny_index(), MeteredLabeler::new(LineLabeler), config)
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tasti-storage-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ingest_req(rows: Vec<Vec<f32>>, embedded: bool) -> Request {
    let mut req = Request::new(Op::Ingest);
    req.rows = Some(rows);
    req.embedded = Some(embedded);
    req
}

fn result_u64(reply: &Reply, key: &str) -> Option<u64> {
    reply.result.get(key).and_then(JsonValue::as_u64)
}

fn limit_req() -> Request {
    let mut q = Request::new(Op::LimitQuery);
    q.score = Some(ScoreSpec::HasClass(ObjectClass::Car));
    q.k_matches = Some(2);
    q
}

/// The headline chaos scenario, end to end over a real socket: fsync #2
/// is scripted to fail, so batch 2 is never acknowledged, ingest turns
/// read-only with typed rejections, queries keep answering, health
/// exposes the storage section — and a restart on the clean filesystem
/// replays exactly the acknowledged prefix (batch 1).
#[test]
fn fsync_failure_degrades_to_read_only_and_restart_replays_acked_prefix() {
    let dir = scratch("fsync");
    let config = ServeConfig {
        ingest_dir: Some(dir.clone()),
        storage_vfs: Arc::new(FaultVfs::scripted(
            FaultScript::parse("sync:2=eio").expect("script"),
        )),
        ..ServeConfig::default()
    };
    let svc = service(config);
    svc.open_ingest().expect("open log");
    let server = Server::start(Arc::new(svc)).expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Batch 1: fsync #1 succeeds — acknowledged.
    let reply = client
        .call(ingest_req(vec![vec![200.0]], true))
        .expect("batch 1");
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(result_u64(&reply, "seq"), Some(1));

    // Batch 2: fsync #2 fails. The reply must be a typed storage
    // rejection, explicit that the batch was NOT acknowledged.
    let reply = client
        .call(ingest_req(vec![vec![201.0], vec![202.0]], true))
        .expect("batch 2 call");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("ingest_rejected"));
    assert_eq!(reply.fault_class.as_deref(), Some("storage"));
    assert!(reply.read_only, "read-only degradation must be visible");
    let msg = reply.error_message.expect("message");
    assert!(msg.contains("not acknowledged"), "message: {msg}");

    // Batch 3 arrives while read-only: same typed rejection.
    let reply = client
        .call(ingest_req(vec![vec![203.0]], true))
        .expect("batch 3 call");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("ingest_rejected"));
    assert!(reply.read_only);

    // Queries keep serving on the same connection.
    let reply = client.call(limit_req()).expect("query under read-only");
    assert!(reply.ok, "{:?}", reply.error_message);

    // Health gains the storage section.
    let reply = client.call(Request::new(Op::Health)).expect("health");
    assert!(reply.ok);
    let storage = reply.result.get("storage").expect("storage section");
    assert_eq!(
        storage.get("read_only").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        storage.get("sync_failures").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        storage.get("poisoned_segments").and_then(JsonValue::as_u64),
        Some(1)
    );

    // And the unrouted metrics dump carries it too, plus the rejections.
    let reply = client.call(Request::new(Op::Metrics)).expect("metrics");
    assert!(reply.ok);
    assert!(reply.result.get("storage").is_some());
    assert_eq!(result_u64(&reply, "ingest_rejected"), Some(2));

    server.shutdown_and_join();

    // Restart on the pristine filesystem: exactly the acked prefix
    // (batch 1, one record) replays — batch 2's rows were never durable.
    let svc = service(ServeConfig {
        ingest_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let replay = svc.open_ingest().expect("reopen log");
    assert_eq!(replay.frames, 1, "only the acked frame replays");
    assert_eq!(replay.applied, 1);
    assert_eq!(replay.records, 1);
    assert_eq!(svc.index().n_records(), N_RECORDS + 1);
    assert_eq!(svc.index().ingest_watermark(), 1);
    // The restarted service accepts writes again (read-only does not
    // survive into a fresh incarnation).
    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![201.0]], true))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(result_u64(&reply, "seq"), Some(2), "seq 2 is reused");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Blocking-sync VFS: makes the group-commit schedule deterministic.
// ---------------------------------------------------------------------

/// Shared gate: while closed, file fsyncs block; the test observes how
/// many appends have landed and how many fsyncs ran.
#[derive(Debug, Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
    writes: AtomicU64,
    syncs: AtomicU64,
}

impl Gate {
    fn wait_open(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// A [`Vfs`] over the real filesystem whose file fsyncs block while the
/// gate is closed (directory fsyncs pass through — only the group-commit
/// window is being shaped).
#[derive(Debug)]
struct BlockingVfs {
    inner: RealVfs,
    gate: Arc<Gate>,
}

#[derive(Debug)]
struct BlockingFile {
    inner: Box<dyn VfsFile>,
    gate: Arc<Gate>,
}

#[derive(Debug)]
struct BlockingSync {
    inner: Box<dyn VfsSyncHandle>,
    gate: Arc<Gate>,
}

impl VfsSyncHandle for BlockingSync {
    fn sync_data(&self) -> io::Result<()> {
        self.gate.wait_open();
        self.gate.syncs.fetch_add(1, Ordering::SeqCst);
        self.inner.sync_data()
    }
}

impl VfsFile for BlockingFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)?;
        self.gate.writes.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.gate.wait_open();
        self.gate.syncs.fetch_add(1, Ordering::SeqCst);
        self.inner.sync_data()
    }

    fn sync_handle(&self) -> io::Result<Box<dyn VfsSyncHandle>> {
        Ok(Box::new(BlockingSync {
            inner: self.inner.sync_handle()?,
            gate: Arc::clone(&self.gate),
        }))
    }
}

impl Vfs for BlockingVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        self.inner.list_dir(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn open_append(&self, path: &Path, create_new: bool) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(BlockingFile {
            inner: self.inner.open_append(path, create_new)?,
            gate: Arc::clone(&self.gate),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(BlockingFile {
            inner: self.inner.create(path)?,
            gate: Arc::clone(&self.gate),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

/// Three concurrent batches, one blocked fsync: the first batch leads
/// fsync #1 and blocks; batches 2 and 3 append meanwhile and wait. When
/// the gate opens, fsync #1 covers batch 1, and a single fsync #2 covers
/// batches 2 AND 3 — one of them is a group-commit follower. Every batch
/// is acknowledged exactly once, with three file fsyncs never happening.
#[test]
fn concurrent_batches_share_one_fsync() {
    let dir = scratch("group");
    let gate = Arc::new(Gate::default());
    let config = ServeConfig {
        ingest_dir: Some(dir.clone()),
        storage_vfs: Arc::new(BlockingVfs {
            inner: RealVfs,
            gate: Arc::clone(&gate),
        }),
        ..ServeConfig::default()
    };
    let svc = Arc::new(service(config));
    svc.open_ingest().expect("open log");

    let spawn_batch = |row: f32| {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            Reply::parse(&svc.handle(&ingest_req(vec![vec![row]], true))).unwrap()
        })
    };

    // Batch 1 appends (write #1) and leads fsync #1, blocking on the gate.
    let b1 = spawn_batch(200.0);
    while gate.writes.load(Ordering::SeqCst) < 1 {
        std::thread::yield_now();
    }
    // Batches 2 and 3 append behind the in-flight fsync and wait for a
    // covering sync. Their appends are serialized by the ingest lock, so
    // once both writes are visible, both are in the group-commit window.
    let b2 = spawn_batch(201.0);
    let b3 = spawn_batch(202.0);
    while gate.writes.load(Ordering::SeqCst) < 3 {
        std::thread::yield_now();
    }

    gate.open();
    let replies = [b1, b2, b3].map(|h| h.join().expect("batch thread"));
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply.ok, "batch {i}: {:?}", reply.error_message);
    }
    let mut seqs: Vec<u64> = replies
        .iter()
        .map(|r| result_u64(r, "seq").expect("seq"))
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![1, 2, 3], "each batch acked exactly once");
    assert!(
        gate.syncs.load(Ordering::SeqCst) <= 2,
        "3 batches needed at most 2 fsyncs, got {}",
        gate.syncs.load(Ordering::SeqCst)
    );

    // The shared fsync is visible in the metrics: at least one batch was
    // acknowledged by a sync it did not lead.
    let line = svc.handle(&Request::new(Op::Metrics));
    let reply = Reply::parse(&line).unwrap();
    assert!(
        result_u64(&reply, "group_commit_batches").unwrap_or(0) >= 1,
        "metrics: {line}"
    );

    // All three batches are durable: a restart replays them.
    drop(svc);
    let svc = service(ServeConfig {
        ingest_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let replay = svc.open_ingest().expect("reopen");
    assert_eq!(replay.frames, 3);
    assert_eq!(svc.index().n_records(), N_RECORDS + 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte-identity pin: with an empty fault script (and on the real
/// filesystem), the ingest/health/metrics wire bytes are identical — no
/// storage section, no fault fields, no behavioral difference.
/// Masks wall-clock readings (labeler wall time, latency percentiles) so
/// two otherwise byte-identical runs compare equal; everything else stays
/// byte-for-byte.
fn scrub_timing(line: &str) -> String {
    const VOLATILE: [&str; 7] = [
        "\"wall_seconds\":",
        "\"min\":",
        "\"max\":",
        "\"mean\":",
        "\"p50\":",
        "\"p90\":",
        "\"p99\":",
    ];
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        out.push(bytes[i] as char);
        i += 1;
        if VOLATILE.iter().any(|k| out.ends_with(k)) {
            while i < bytes.len()
                && matches!(bytes[i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
            {
                i += 1;
            }
            out.push('0');
        }
    }
    out
}

#[test]
fn fault_free_wire_output_is_byte_identical_to_real_vfs() {
    let run = |tag: &str, vfs: Arc<dyn Vfs>| -> Vec<String> {
        let dir = scratch(tag);
        let svc = service(ServeConfig {
            ingest_dir: Some(dir.clone()),
            storage_vfs: vfs,
            ..ServeConfig::default()
        });
        svc.open_ingest().expect("open log");
        let out = vec![
            svc.handle(&ingest_req(vec![vec![300.0], vec![301.0]], true)),
            svc.handle(&limit_req()),
            svc.handle(&Request::new(Op::Health)),
            svc.handle(&Request::new(Op::Metrics)),
        ];
        let _ = std::fs::remove_dir_all(&dir);
        out
    };

    let real: Vec<String> = run("ident-real", Arc::new(RealVfs))
        .iter()
        .map(|l| scrub_timing(l))
        .collect();
    let empty_script: Vec<String> = run(
        "ident-fault",
        Arc::new(FaultVfs::scripted(FaultScript::default())),
    )
    .iter()
    .map(|l| scrub_timing(l))
    .collect();
    assert_eq!(real, empty_script, "empty fault script must be invisible");
    for line in &real {
        assert!(!line.contains("\"storage\""), "no storage section: {line}");
        assert!(!line.contains("fault_class"), "no fault class: {line}");
        assert!(!line.contains("read_only"), "no read-only flag: {line}");
    }
}

/// ENOSPC on the append write itself (not the fsync) is the same typed
/// degradation: rejected un-acked, read-only, queries alive.
#[test]
fn write_failure_is_typed_and_un_acked() {
    let dir = scratch("enospc");
    let svc = service(ServeConfig {
        ingest_dir: Some(dir.clone()),
        storage_vfs: Arc::new(FaultVfs::scripted(
            FaultScript::parse("write:2=enospc").expect("script"),
        )),
        ..ServeConfig::default()
    });
    svc.open_ingest().expect("open log");

    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![210.0]], true))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);

    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![211.0]], true))).unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("ingest_rejected"));
    assert_eq!(reply.fault_class.as_deref(), Some("storage"));
    assert!(reply.read_only);

    let reply = Reply::parse(&svc.handle(&limit_req())).unwrap();
    assert!(reply.ok, "queries must survive: {:?}", reply.error_message);

    // Only batch 1 replays.
    drop(svc);
    let svc = service(ServeConfig {
        ingest_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let replay = svc.open_ingest().expect("reopen");
    assert_eq!(replay.frames, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failing snapshot write returns a typed storage-classed error, backs
/// off subsequent attempts (visible `retry_after_micros`), and recovers
/// once the disk heals.
#[test]
fn snapshot_failure_backs_off_and_recovers() {
    let dir = scratch("snapback");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("snap.json");
    // Snapshot save path: create (open #? — `create` op) then sync.
    // Script the first snapshot *file* sync to fail; the second snapshot
    // attempt (after backoff expires) succeeds.
    let svc = service(ServeConfig {
        snapshot_path: Some(snap.clone()),
        storage_vfs: Arc::new(FaultVfs::scripted(
            FaultScript::parse("sync:1=eio").expect("script"),
        )),
        ..ServeConfig::default()
    });

    let reply = Reply::parse(&svc.handle(&Request::new(Op::Snapshot))).unwrap();
    assert!(!reply.ok, "first snapshot must fail");
    assert_eq!(reply.error_kind.as_deref(), Some("internal"));
    assert_eq!(reply.fault_class.as_deref(), Some("storage"));
    assert!(!snap.exists(), "failed save must not install the snapshot");

    // Immediately retrying hits the backoff window, also typed.
    let reply = Reply::parse(&svc.handle(&Request::new(Op::Snapshot))).unwrap();
    assert!(!reply.ok);
    assert!(
        reply.retry_after_micros.is_some(),
        "backoff must tell the client when to retry"
    );

    // After the (50ms base) window the fault is spent and the save lands.
    std::thread::sleep(std::time::Duration::from_millis(80));
    let reply = Reply::parse(&svc.handle(&Request::new(Op::Snapshot))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    assert!(snap.exists());
    let _ = std::fs::remove_dir_all(&dir);
}
