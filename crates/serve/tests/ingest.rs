//! Streaming-ingest integration: typed rejections, durable ack + replay
//! after an unclean restart, snapshot-watermark idempotence, queryability
//! of ingested records over the wire on both serving cores, and the
//! byte-compat promise that ingest-free serving emits no ingest fields.

use std::path::PathBuf;
use std::sync::Arc;

use tasti_cluster::{Metric, MinKTable};
use tasti_core::index::TastiIndex;
use tasti_core::persist;
use tasti_labeler::{
    BatchTargetLabeler, Detection, LabelCost, LabelerOutput, MeteredLabeler, ObjectClass, RecordId,
    Schema, TargetLabeler,
};
use tasti_nn::Matrix;
use tasti_obs::json::JsonValue;
use tasti_serve::{
    Client, Op, Reply, Request, ScoreSpec, ServeConfig, ServeCore, Server, TastiService,
};

const N_RECORDS: usize = 120;

fn frame(n_cars: usize) -> LabelerOutput {
    LabelerOutput::Detections(
        (0..n_cars)
            .map(|i| Detection {
                class: ObjectClass::Car,
                x: 0.1 * (i + 1) as f32,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            })
            .collect(),
    )
}

struct LineLabeler;

impl TargetLabeler for LineLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        frame(usize::from(record >= N_RECORDS / 2))
    }

    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 0.0,
            dollars: 0.0,
        }
    }

    fn schema(&self) -> Schema {
        Schema::object_detection()
    }

    fn name(&self) -> &str {
        "line"
    }
}

impl BatchTargetLabeler for LineLabeler {}

/// A synthetic model-less index over 1-D embeddings on a line, reps every
/// 20 records: embedded ingest works, raw-feature ingest needs a model.
fn tiny_index() -> TastiIndex {
    let embeddings = Matrix::from_fn(N_RECORDS, 1, |r, _| r as f32);
    let reps: Vec<RecordId> = (0..N_RECORDS).step_by(20).collect();
    let rep_outputs: Vec<LabelerOutput> = reps
        .iter()
        .map(|&r| frame(usize::from(r >= N_RECORDS / 2)))
        .collect();
    let rep_emb: Vec<f32> = reps.iter().map(|&r| r as f32).collect();
    let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
    TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
}

fn service(config: ServeConfig) -> TastiService<LineLabeler> {
    TastiService::new(tiny_index(), MeteredLabeler::new(LineLabeler), config)
}

/// A fresh scratch directory for one test's ingest log.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tasti-ingest-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ingest_req(rows: Vec<Vec<f32>>, embedded: bool) -> Request {
    let mut req = Request::new(Op::Ingest);
    req.rows = Some(rows);
    req.embedded = Some(embedded);
    req
}

fn result_u64(reply: &Reply, key: &str) -> Option<u64> {
    reply.result.get(key).and_then(JsonValue::as_u64)
}

#[test]
fn ingest_without_a_log_is_typed_ingest_rejected() {
    let svc = service(ServeConfig::default());
    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![200.0]], true))).unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("ingest_rejected"));
    assert!(reply
        .error_message
        .expect("message")
        .contains("--ingest-dir"));
    assert_eq!(svc.index().n_records(), N_RECORDS, "index untouched");
}

#[test]
fn malformed_batches_are_bad_request_and_never_acknowledged() {
    let dir = scratch("validate");
    let config = ServeConfig {
        ingest_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let svc = service(config.clone());
    svc.open_ingest().expect("open log");

    // Missing/empty rows.
    let mut empty = Request::new(Op::Ingest);
    empty.embedded = Some(true);
    let reply = Reply::parse(&svc.handle(&empty)).unwrap();
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));

    // Dimension mismatch against the 1-D index.
    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![1.0, 2.0]], true))).unwrap();
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));

    // Raw features need an embedding model; this index has none. The old
    // append path panicked here — now it is a typed rejection.
    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![1.0]], false))).unwrap();
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));
    assert!(reply
        .error_message
        .expect("message")
        .contains("embedding model"));
    assert_eq!(svc.index().n_records(), N_RECORDS);
    drop(svc);

    // None of it was acknowledged, so a restart replays nothing.
    let svc = service(config);
    let replay = svc.open_ingest().expect("reopen log");
    assert_eq!(replay.frames, 0);
    assert_eq!(svc.index().n_records(), N_RECORDS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acknowledged_batches_survive_an_unclean_restart() {
    let dir = scratch("replay");
    let config = ServeConfig {
        ingest_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let svc = service(config.clone());
    svc.open_ingest().expect("open log");

    let reply =
        Reply::parse(&svc.handle(&ingest_req(vec![vec![200.0], vec![201.0]], true))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(result_u64(&reply, "ingested"), Some(2));
    assert_eq!(result_u64(&reply, "start"), Some(N_RECORDS as u64));
    assert_eq!(result_u64(&reply, "records"), Some(N_RECORDS as u64 + 2));
    assert_eq!(result_u64(&reply, "seq"), Some(1));
    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![202.0]], true))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(result_u64(&reply, "seq"), Some(2));
    assert_eq!(svc.index().n_records(), N_RECORDS + 3);

    // "kill -9": drop with no snapshot and no graceful shutdown. The acks
    // above promised durability, so a fresh service over the same
    // directory must recover all three records.
    drop(svc);
    let svc = service(config);
    let replay = svc.open_ingest().expect("reopen log");
    assert_eq!(replay.frames, 2);
    assert_eq!(replay.applied, 2);
    assert_eq!(replay.records, 3);
    assert_eq!(replay.already_applied, 0);
    assert_eq!(svc.index().n_records(), N_RECORDS + 3);
    assert_eq!(svc.index().ingest_watermark(), 2);

    // The replayed records are queryable.
    let mut q = Request::new(Op::LimitQuery);
    q.score = Some(ScoreSpec::HasClass(ObjectClass::Car));
    q.k_matches = Some(2);
    let reply = Reply::parse(&svc.handle(&q)).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_watermark_makes_replay_idempotent() {
    let dir = scratch("watermark");
    let snap = dir.join("snap.tasti.json");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let config = ServeConfig {
        ingest_dir: Some(dir.join("log")),
        snapshot_path: Some(snap.clone()),
        ..ServeConfig::default()
    };
    let svc = service(config.clone());
    svc.open_ingest().expect("open log");
    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![300.0]], true))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    let reply = Reply::parse(&svc.handle(&Request::new(Op::Snapshot))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    drop(svc);

    // Restart *from the snapshot*: it carries the ingested record and the
    // watermark, so replay recognizes the logged frame as already applied.
    let index = persist::load(&snap).expect("load snapshot");
    assert_eq!(index.n_records(), N_RECORDS + 1);
    assert_eq!(index.ingest_watermark(), 1);
    let svc = TastiService::new(index, MeteredLabeler::new(LineLabeler), config);
    let replay = svc.open_ingest().expect("reopen log");
    assert_eq!(replay.frames, 1);
    assert_eq!(replay.already_applied, 1);
    assert_eq!(replay.applied, 0);
    assert_eq!(svc.index().n_records(), N_RECORDS + 1, "no double apply");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_works_over_the_wire_on_both_cores() {
    for core in [ServeCore::Evented, ServeCore::Threaded] {
        let dir = scratch(&format!("wire-{}", core.name()));
        let svc = service(ServeConfig {
            core,
            workers: 2,
            ingest_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        svc.open_ingest().expect("open log");
        let server = Server::start(Arc::new(svc)).expect("bind loopback");
        let mut client = Client::connect(server.local_addr()).expect("connect");

        let reply = client
            .call(ingest_req(vec![vec![500.0], vec![501.0]], true))
            .expect("ingest call");
        assert!(reply.ok, "{core:?}: {:?}", reply.error_message);
        assert_eq!(result_u64(&reply, "ingested"), Some(2));

        // The ingested records answer queries on the same connection.
        let mut q = Request::new(Op::LimitQuery);
        q.score = Some(ScoreSpec::HasClass(ObjectClass::Car));
        q.k_matches = Some(2);
        let reply = client.call(q).expect("limit call");
        assert!(reply.ok, "{core:?}: {:?}", reply.error_message);

        // And the ingest counters show up in the metrics dump.
        let reply = client.call(Request::new(Op::Metrics)).expect("metrics");
        assert!(reply.ok);
        assert_eq!(result_u64(&reply, "records_ingested"), Some(2));
        assert_eq!(result_u64(&reply, "ingest_batches"), Some(1));

        server.shutdown_and_join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn ingest_free_serving_emits_no_ingest_fields() {
    let svc = service(ServeConfig::default());
    let aggregate = svc.handle(&Request::new(Op::Metrics));
    assert!(
        !aggregate.contains("ingest"),
        "aggregate metrics leaked ingest fields: {aggregate}"
    );
    let mut routed = Request::new(Op::Metrics);
    routed.index = Some("default".to_string());
    let per_entry = svc.handle(&routed);
    assert!(
        !per_entry.contains("ingest"),
        "per-entry metrics leaked ingest fields: {per_entry}"
    );
}

/// Drift escalation runs off the request path: the triggering reply
/// reports `escalated: "scheduled"` without paying for the assignment
/// refresh inline, and once the background workers are joined the
/// completed refresh is visible in `ingest_background_refreshes`.
#[test]
fn drift_escalation_schedules_a_background_refresh() {
    let dir = scratch("escalate");
    let svc = service(ServeConfig {
        ingest_dir: Some(dir.clone()),
        drift_threshold: 0.05,
        ..ServeConfig::default()
    });
    svc.open_ingest().expect("open log");

    // A far-off-manifold row pushes the drift gauge over the threshold.
    let reply = Reply::parse(&svc.handle(&ingest_req(vec![vec![5000.0]], true))).unwrap();
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(
        reply.result.get("escalated").and_then(JsonValue::as_str),
        Some("scheduled"),
        "escalation must be scheduled, not run inline"
    );

    svc.join_background_refreshes();

    let metrics = Reply::parse(&svc.handle(&Request::new(Op::Metrics))).unwrap();
    assert!(metrics.ok);
    assert_eq!(
        result_u64(&metrics, "ingest_background_refreshes"),
        Some(1),
        "the completed refresh must be counted"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
