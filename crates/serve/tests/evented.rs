//! Evented-core tests: the idle keep-alive storm the reactor exists for,
//! request-level backpressure, cross-core wire parity, and regressions for
//! the two blocking-I/O data-loss bugs (a request line straddling the
//! idle-poll timeout was truncated; a final unterminated line at EOF was
//! discarded unanswered).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tasti_cluster::{Metric, MinKTable};
use tasti_core::index::TastiIndex;
use tasti_labeler::{
    BatchTargetLabeler, Detection, LabelCost, LabelerOutput, MeteredLabeler, ObjectClass, RecordId,
    Schema, TargetLabeler,
};
use tasti_nn::Matrix;
use tasti_serve::{
    Client, Op, Reply, Request, ScoreSpec, ServeConfig, ServeCore, Server, TastiService,
};

const N_RECORDS: usize = 120;

fn truth(record: RecordId) -> usize {
    usize::from(record >= N_RECORDS / 2)
}

fn frame(n_cars: usize) -> LabelerOutput {
    LabelerOutput::Detections(
        (0..n_cars)
            .map(|i| Detection {
                class: ObjectClass::Car,
                x: 0.1 * (i + 1) as f32,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            })
            .collect(),
    )
}

#[derive(Default)]
struct CountingLabeler {
    per_record: Mutex<HashMap<RecordId, u64>>,
    total: AtomicU64,
}

impl TargetLabeler for CountingLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        *self.per_record.lock().unwrap().entry(record).or_insert(0) += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        frame(truth(record))
    }

    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 0.0,
            dollars: 0.0,
        }
    }

    fn schema(&self) -> Schema {
        Schema::object_detection()
    }

    fn name(&self) -> &str {
        "counting"
    }
}

impl BatchTargetLabeler for CountingLabeler {}

fn tiny_index() -> TastiIndex {
    let embeddings = Matrix::from_fn(N_RECORDS, 1, |r, _| r as f32);
    let reps: Vec<RecordId> = (0..N_RECORDS).step_by(20).collect();
    let rep_outputs: Vec<LabelerOutput> = reps.iter().map(|&r| frame(truth(r))).collect();
    let rep_emb: Vec<f32> = reps.iter().map(|&r| r as f32).collect();
    let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
    TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
}

fn start_server(config: ServeConfig) -> Server<CountingLabeler> {
    let labeler = MeteredLabeler::new(CountingLabeler::default());
    let service = Arc::new(TastiService::new(tiny_index(), labeler, config));
    Server::start(service).expect("bind loopback")
}

/// The reactor's reason to exist: far more concurrent idle keep-alive
/// connections than compute threads (64 vs 4 — a 16× ratio the threaded
/// core cannot reach, where 4 workers cap at 4 concurrent connections),
/// prompt service on a fresh connection while they all sit parked, and a
/// clean drain that farewells every one of them.
#[test]
fn idle_keepalive_storm_outnumbers_compute_threads_16x() {
    const IDLE_CONNS: usize = 64;
    const WORKERS: usize = 4;
    let server = start_server(ServeConfig {
        core: ServeCore::Evented,
        workers: WORKERS,
        queue_depth: 16,
        max_connections: 256,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // 64 keep-alive connections, each proven live with one round-trip,
    // then left open and idle.
    let mut idle: Vec<Client> = Vec::with_capacity(IDLE_CONNS);
    for _ in 0..IDLE_CONNS {
        let mut c = Client::connect(addr).expect("connect idle");
        assert!(c.index_stats().expect("idle round-trip").ok);
        idle.push(c);
    }
    let service = Arc::clone(server.service());
    assert_eq!(
        service.metrics().connections_accepted.get(),
        IDLE_CONNS as u64,
        "all idle connections admitted concurrently"
    );
    assert_eq!(service.metrics().connections_rejected_overloaded.get(), 0);

    // With every idle connection still parked, fresh work is served
    // promptly: queries answer well inside a client-side deadline.
    let mut active = Client::connect_with_timeouts(
        addr,
        Some(Duration::from_secs(5)),
        Some(Duration::from_secs(10)),
    )
    .expect("connect active");
    for seed in 0..4u64 {
        let mut req = Request::new(Op::LimitQuery);
        req.score = Some(ScoreSpec::HasClass(ObjectClass::Car));
        req.k_matches = Some(3);
        req.seed = Some(seed);
        let reply = active.call(req).expect("prompt query under the storm");
        assert!(reply.ok, "{:?}", reply.error_message);
    }
    drop(active);

    // Clean drain with all 64 still connected: shutdown acks, join
    // returns, and parked clients get the typed farewell (or a prompt
    // close) instead of hanging.
    let mut admin = Client::connect(addr).expect("connect admin");
    assert!(admin.shutdown().expect("shutdown").ok);
    let start = Instant::now();
    server.join();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drain with 64 idle connections took {:?}",
        start.elapsed()
    );
    for c in idle.iter_mut().take(4) {
        match c.index_stats() {
            Ok(reply) => {
                assert!(!reply.ok);
                assert_eq!(reply.error_kind.as_deref(), Some("shutting_down"));
            }
            Err(_) => {} // already closed — also a clean farewell
        }
    }
}

/// Writes `line` (plus the newline) in small chunks with pauses longer
/// than the threaded core's 200 ms idle poll, then reads one reply line.
fn drip_feed(addr: std::net::SocketAddr, line: &str, chunks: usize) -> Reply {
    let mut conn = TcpStream::connect(addr).expect("connect");
    let bytes = format!("{line}\n").into_bytes();
    let step = bytes.len().div_ceil(chunks);
    for chunk in bytes.chunks(step.max(1)) {
        conn.write_all(chunk).expect("write chunk");
        conn.flush().expect("flush");
        // Straddle the idle poll: the old read_line loop dropped the
        // partial line on every timeout tick.
        std::thread::sleep(Duration::from_millis(250));
    }
    let mut response = String::new();
    BufReader::new(conn)
        .read_line(&mut response)
        .expect("read reply");
    Reply::parse(response.trim_end()).expect("parse reply")
}

#[test]
fn slow_writer_request_survives_idle_poll_evented() {
    slow_writer_request_survives_idle_poll(ServeCore::Evented);
}

#[test]
fn slow_writer_request_survives_idle_poll_threaded() {
    slow_writer_request_survives_idle_poll(ServeCore::Threaded);
}

/// Regression for the data-loss bug: a request line dripped onto the
/// socket across idle-poll timeouts must be reassembled byte-for-byte.
/// Against the pre-reactor loop this fails — `BufReader::read_line`
/// truncated the partial line away on every `WouldBlock`, so the eventual
/// parse saw a mangled tail and answered `bad_request` (or nothing).
fn slow_writer_request_survives_idle_poll(core: ServeCore) {
    let server = start_server(ServeConfig {
        core,
        ..ServeConfig::default()
    });
    let reply = drip_feed(server.local_addr(), r#"{"id":11,"op":"index_stats"}"#, 3);
    assert!(
        reply.ok,
        "dripped request was mangled: {:?} {:?}",
        reply.error_kind, reply.error_message
    );
    assert_eq!(reply.id, Some(11));
    assert_eq!(server.service().metrics().bad_requests.get(), 0);
    server.shutdown_and_join();
}

#[test]
fn unterminated_final_request_is_answered_at_eof_evented() {
    unterminated_final_request_is_answered_at_eof(ServeCore::Evented);
}

#[test]
fn unterminated_final_request_is_answered_at_eof_threaded() {
    unterminated_final_request_is_answered_at_eof(ServeCore::Threaded);
}

/// Regression for the EOF data-loss bug: a one-shot client that writes its
/// request without a trailing newline and half-closes used to have the
/// request silently discarded (`Ok(0) => return`). Both cores must answer
/// it.
fn unterminated_final_request_is_answered_at_eof(core: ServeCore) {
    let server = start_server(ServeConfig {
        core,
        ..ServeConfig::default()
    });
    let conn = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = conn.try_clone().expect("clone");
    writer
        .write_all(br#"{"id":21,"op":"index_stats"}"#) // no newline
        .expect("write");
    writer.flush().expect("flush");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut response = String::new();
    BufReader::new(conn)
        .read_line(&mut response)
        .expect("read reply");
    assert!(
        !response.is_empty(),
        "unterminated final request was discarded at EOF"
    );
    let reply = Reply::parse(response.trim_end()).expect("parse reply");
    assert!(reply.ok, "{:?}", reply.error_message);
    assert_eq!(reply.id, Some(21));
    server.shutdown_and_join();
}

/// A labeler whose `label` blocks until the test opens a gate — pins a
/// compute worker deterministically.
#[derive(Default)]
struct GateLabeler {
    open: Mutex<bool>,
    cv: Condvar,
    entered: AtomicBool,
}

impl GateLabeler {
    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl TargetLabeler for GateLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        self.entered.store(true, Ordering::SeqCst);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        frame(truth(record))
    }

    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 0.0,
            dollars: 0.0,
        }
    }

    fn schema(&self) -> Schema {
        Schema::object_detection()
    }

    fn name(&self) -> &str {
        "gate"
    }
}

impl BatchTargetLabeler for GateLabeler {}

/// Request-level backpressure: with the one compute worker pinned and the
/// bounded channel full, the next request gets an immediate typed
/// `overloaded` error — and its connection *stays open* and is served
/// normally once the pressure clears.
#[test]
fn full_compute_channel_yields_typed_overloaded_and_connection_survives() {
    let labeler = MeteredLabeler::new(GateLabeler::default());
    let service = Arc::new(TastiService::new(
        tiny_index(),
        labeler,
        ServeConfig {
            core: ServeCore::Evented,
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    ));
    let server = Server::start(Arc::clone(&service)).expect("bind loopback");
    let addr = server.local_addr();

    // Connection A: a query that blocks on the gate, pinning the worker.
    let mut a = TcpStream::connect(addr).expect("connect a");
    writeln!(
        a,
        r#"{{"id":1,"op":"limit_query","score":{{"fn":"has_class","class":"car"}},"k_matches":2,"seed":1}}"#
    )
    .expect("write a");
    let gate = Arc::clone(server.service());
    for _ in 0..400 {
        if gate.labeler().inner().entered.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        gate.labeler().inner().entered.load(Ordering::SeqCst),
        "worker never reached the gate"
    );

    // Connection B: its request occupies the single channel slot.
    let mut b = TcpStream::connect(addr).expect("connect b");
    writeln!(b, r#"{{"id":2,"op":"index_stats"}}"#).expect("write b");
    b.flush().expect("flush b");
    // Give the reactor a moment to dispatch B into the channel.
    std::thread::sleep(Duration::from_millis(100));

    // Connection C: channel full — immediate typed overloaded, id-less
    // (connection-level error), connection kept open.
    let mut c = Client::connect_with_timeouts(
        addr,
        Some(Duration::from_secs(5)),
        Some(Duration::from_secs(5)),
    )
    .expect("connect c");
    let reply = c.index_stats().expect("typed overloaded reply");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("overloaded"));
    assert_eq!(reply.id, None);
    assert!(service.metrics().requests_rejected_overloaded.get() >= 1);

    // Open the gate: A and B complete, and C's connection — never closed —
    // now gets real service.
    service.labeler().inner().release();
    let mut read_a = BufReader::new(a.try_clone().expect("clone a"));
    let mut line = String::new();
    read_a.read_line(&mut line).expect("read a");
    assert!(Reply::parse(line.trim_end()).expect("parse a").ok);
    let mut read_b = BufReader::new(b.try_clone().expect("clone b"));
    line.clear();
    read_b.read_line(&mut line).expect("read b");
    assert!(Reply::parse(line.trim_end()).expect("parse b").ok);
    let reply = c.index_stats().expect("post-pressure call");
    assert!(reply.ok, "rejected connection must remain usable");

    drop((a, b));
    server.shutdown_and_join();
}

/// Blanks the value of every `"wall_seconds":<num>` occurrence — the one
/// legitimately nondeterministic field in query telemetry.
fn normalize_wall_seconds(line: &str) -> String {
    let needle = "\"wall_seconds\":";
    let mut out = String::new();
    let mut rest = line;
    while let Some(pos) = rest.find(needle) {
        let value_start = pos + needle.len();
        out.push_str(&rest[..value_start]);
        out.push('X');
        let tail = &rest[value_start..];
        let end = tail.find(|c| c == ',' || c == '}').unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// The back-compat contract: both cores produce byte-identical response
/// lines for the same request sequence (modulo wall-clock telemetry),
/// including the bad-request path.
#[test]
fn wire_replies_are_byte_identical_across_cores() {
    let script: &[&str] = &[
        r#"{"id":1,"op":"index_stats"}"#,
        r#"{"id":2,"op":"limit_query","score":{"fn":"has_class","class":"car"},"k_matches":3,"seed":7}"#,
        "this is not json",
        r#"{"id":4,"op":"health"}"#,
        r#"{"id":5,"op":"ebs_aggregate","score":{"fn":"count_class","class":"car"},"error_target":0.2,"seed":9}"#,
    ];
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for core in [ServeCore::Evented, ServeCore::Threaded] {
        let server = start_server(ServeConfig {
            core,
            ..ServeConfig::default()
        });
        let conn = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(conn);
        let mut lines = Vec::new();
        for raw in script {
            writeln!(writer, "{raw}").expect("write");
            writer.flush().expect("flush");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            lines.push(normalize_wall_seconds(line.trim_end()));
        }
        drop(writer);
        transcripts.push(lines);
        server.shutdown_and_join();
    }
    for (i, (evented, threaded)) in transcripts[0].iter().zip(&transcripts[1]).enumerate() {
        assert_eq!(
            evented, threaded,
            "response {i} diverged between cores for request {:?}",
            script[i]
        );
    }
}
