//! End-to-end loopback tests: a real server on an ephemeral port, real TCP
//! clients, concurrent mixed-type queries over overlapping records.
//!
//! The load-bearing assertion is exactly-once oracle accounting: however
//! many client threads race over the same records, the counting labeler
//! must see each record **at most once**, and the meter's invocation count
//! must equal the number of distinct records labeled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tasti_cluster::{Metric, MinKTable};
use tasti_core::index::TastiIndex;
use tasti_core::persist;
use tasti_labeler::{
    BatchTargetLabeler, Detection, LabelCost, LabelerOutput, MeteredLabeler, ObjectClass, RecordId,
    Schema, TargetLabeler,
};
use tasti_nn::Matrix;
use tasti_serve::{
    Client, ClientError, Op, Request, ScoreSpec, ServeConfig, ServeCore, Server, TastiService,
};

const N_RECORDS: usize = 120;

/// Ground truth: the upper half of the embedding line has one car.
fn truth(record: RecordId) -> usize {
    usize::from(record >= N_RECORDS / 2)
}

fn frame(n_cars: usize) -> LabelerOutput {
    LabelerOutput::Detections(
        (0..n_cars)
            .map(|i| Detection {
                class: ObjectClass::Car,
                x: 0.1 * (i + 1) as f32,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            })
            .collect(),
    )
}

/// A labeler that counts how many times each record was labeled — the
/// exactly-once probe.
#[derive(Default)]
struct CountingLabeler {
    per_record: Mutex<HashMap<RecordId, u64>>,
    total: AtomicU64,
}

impl CountingLabeler {
    fn max_labels_per_record(&self) -> u64 {
        self.per_record
            .lock()
            .unwrap()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn distinct_records(&self) -> u64 {
        self.per_record.lock().unwrap().len() as u64
    }
}

impl TargetLabeler for CountingLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        *self.per_record.lock().unwrap().entry(record).or_insert(0) += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        frame(truth(record))
    }

    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 0.0,
            dollars: 0.0,
        }
    }

    fn schema(&self) -> Schema {
        Schema::object_detection()
    }

    fn name(&self) -> &str {
        "counting"
    }
}

impl BatchTargetLabeler for CountingLabeler {}

/// A synthetic index over `N_RECORDS` 1-D embeddings on a line, reps every
/// 20 records (correct truth at each rep — an informative proxy).
fn tiny_index() -> TastiIndex {
    let embeddings = Matrix::from_fn(N_RECORDS, 1, |r, _| r as f32);
    let reps: Vec<RecordId> = (0..N_RECORDS).step_by(20).collect();
    let rep_outputs: Vec<LabelerOutput> = reps.iter().map(|&r| frame(truth(r))).collect();
    let rep_emb: Vec<f32> = reps.iter().map(|&r| r as f32).collect();
    let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
    TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
}

fn start_server(config: ServeConfig) -> Server<CountingLabeler> {
    let labeler = MeteredLabeler::new(CountingLabeler::default());
    let service = Arc::new(TastiService::new(tiny_index(), labeler, config));
    Server::start(service).expect("bind loopback")
}

fn has_car() -> ScoreSpec {
    ScoreSpec::HasClass(ObjectClass::Car)
}

#[test]
fn concurrent_mixed_queries_are_exactly_once_evented() {
    concurrent_mixed_queries_are_exactly_once(ServeCore::Evented);
}

#[test]
fn concurrent_mixed_queries_are_exactly_once_threaded() {
    concurrent_mixed_queries_are_exactly_once(ServeCore::Threaded);
}

fn concurrent_mixed_queries_are_exactly_once(core: ServeCore) {
    let server = start_server(ServeConfig {
        core,
        workers: 8,
        queue_depth: 32,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let initial_reps = server.service().index().reps().len();

    // 8 client threads × 4 requests each, all five query types, heavily
    // overlapping records (every thread queries the same dataset).
    std::thread::scope(|s| {
        for t in 0..8u64 {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..4u64 {
                    let mut req = match (t + round) % 5 {
                        0 => {
                            let mut r = Request::new(Op::EbsAggregate);
                            r.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
                            r.error_target = Some(0.2);
                            r
                        }
                        1 => {
                            let mut r = Request::new(Op::SupgRecallTarget);
                            r.score = Some(has_car());
                            r.recall_target = Some(0.8);
                            r.budget = Some(40);
                            r
                        }
                        2 => {
                            let mut r = Request::new(Op::SupgPrecisionTarget);
                            r.score = Some(has_car());
                            r.precision_target = Some(0.8);
                            r.budget = Some(40);
                            r
                        }
                        3 => {
                            let mut r = Request::new(Op::LimitQuery);
                            r.score = Some(has_car());
                            r.k_matches = Some(5);
                            r
                        }
                        _ => {
                            let mut r = Request::new(Op::PredicateAggregate);
                            r.predicate = Some(has_car());
                            r.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
                            r.budget = Some(40);
                            r
                        }
                    };
                    req.seed = Some(t * 100 + round);
                    let reply = client.call(req).expect("call");
                    assert!(
                        reply.ok,
                        "query failed: {:?} {:?}",
                        reply.error_kind, reply.error_message
                    );
                    let telemetry = reply.telemetry.expect("query ops echo telemetry");
                    assert!(telemetry.get("invocations").unwrap().as_u64().is_some());
                }
            });
        }
    });

    let service = Arc::clone(server.service());
    let metrics = service.metrics();
    assert_eq!(metrics.requests_total.get(), 32);
    assert_eq!(metrics.responses_ok.get(), 32);
    assert_eq!(metrics.responses_error.get(), 0);
    assert_eq!(metrics.connections_accepted.get(), 8);
    assert_eq!(metrics.connections_rejected_overloaded.get(), 0);

    // Exactly-once: no record was ever labeled twice, and the meter agrees
    // with the counting labeler on both axes.
    let labeler = service.labeler();
    let inner = labeler.inner();
    assert!(inner.distinct_records() > 0, "queries did label something");
    assert_eq!(
        inner.max_labels_per_record(),
        1,
        "a record was labeled more than once despite 8 concurrent clients"
    );
    assert_eq!(labeler.invocations(), inner.total.load(Ordering::Relaxed));
    assert_eq!(labeler.invocations(), inner.distinct_records());

    // Cracking folded query-paid labels back in without blocking anything.
    let reps_now = service.index().reps().len();
    assert!(
        reps_now > initial_reps,
        "crack maintenance never folded labels in ({initial_reps} -> {reps_now})"
    );
    assert_eq!(metrics.cracked_reps.get(), (reps_now - initial_reps) as u64);

    // Clean drain: shutdown via the protocol, join returns.
    let mut admin = Client::connect(addr).expect("connect admin");
    let reply = admin.shutdown().expect("shutdown ack");
    assert!(reply.ok);
    server.join();
}

#[test]
fn overloaded_connections_get_a_typed_error() {
    // Pinned to the threaded core: this test's admission mechanics (one
    // worker owns one connection until EOF, extras queue then overflow)
    // are specific to the worker-pool architecture. The evented core's
    // request-level backpressure is covered in tests/evented.rs.
    let server = start_server(ServeConfig {
        core: ServeCore::Threaded,
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // Occupy the only worker: a round-trip guarantees the worker owns this
    // connection (it holds it until EOF).
    let mut held = Client::connect(addr).expect("connect");
    assert!(held.index_stats().expect("stats").ok);

    // Fill the queue. This connection is accepted but never served.
    let _queued = Client::connect(addr).expect("connect queued");
    // The acceptor runs asynchronously; wait for it to have queued the
    // connection before probing admission control.
    let service = Arc::clone(server.service());
    for _ in 0..200 {
        if service.metrics().connections_accepted.get() >= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(service.metrics().connections_accepted.get(), 2);

    // One more must be rejected immediately with the typed error.
    let mut rejected = Client::connect(addr).expect("connect rejected");
    match rejected.index_stats() {
        Ok(reply) => {
            assert!(!reply.ok);
            assert_eq!(reply.id, None, "connection-level error carries no id");
            assert_eq!(reply.error_kind.as_deref(), Some("overloaded"));
        }
        Err(e) => panic!("expected an overloaded reply, got {e}"),
    }
    assert_eq!(service.metrics().connections_rejected_overloaded.get(), 1);

    server.shutdown_and_join();
}

#[test]
fn service_label_budget_yields_typed_budget_exhausted() {
    let server = start_server(ServeConfig {
        workers: 2,
        label_budget: Some(5),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut req = Request::new(Op::EbsAggregate);
    req.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
    req.error_target = Some(0.01); // needs far more than 5 labels
    let reply = client.call(req).expect("call");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("budget_exhausted"));
    // The affordable prefix was still labeled and billed exactly once.
    let service = server.service();
    assert_eq!(service.labeler().invocations(), 5);
    server.shutdown_and_join();
}

#[test]
fn malformed_and_invalid_requests_get_bad_request_evented() {
    malformed_and_invalid_requests_get_bad_request(ServeCore::Evented);
}

#[test]
fn malformed_and_invalid_requests_get_bad_request_threaded() {
    malformed_and_invalid_requests_get_bad_request(ServeCore::Threaded);
}

fn malformed_and_invalid_requests_get_bad_request(core: ServeCore) {
    let server = start_server(ServeConfig {
        core,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // Raw garbage on the socket.
    use std::io::{BufRead, BufReader, Write};
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.write_all(b"this is not json\n").expect("write");
    let mut line = String::new();
    BufReader::new(raw.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("read");
    let reply = tasti_serve::Reply::parse(line.trim_end()).expect("parse");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));
    drop(raw);

    // Well-formed JSON, missing score spec.
    let mut client = Client::connect(addr).expect("connect");
    let reply = client.call(Request::new(Op::EbsAggregate)).expect("call");
    assert!(!reply.ok);
    assert_eq!(reply.error_kind.as_deref(), Some("bad_request"));
    assert!(reply.error_message.unwrap().contains("score"));

    let service = Arc::clone(server.service());
    assert_eq!(service.metrics().bad_requests.get(), 1);
    assert_eq!(service.metrics().responses_error.get(), 1);
    server.shutdown_and_join();
}

#[test]
fn snapshot_persists_a_loadable_cracked_index() {
    let dir = std::env::temp_dir().join(format!("tasti-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("snapshot.tasti.json");

    let server = start_server(ServeConfig {
        snapshot_path: Some(path.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Pay for some labels so cracking grows the index first.
    let mut req = Request::new(Op::LimitQuery);
    req.score = Some(has_car());
    req.k_matches = Some(3);
    assert!(client.call(req).expect("limit").ok);

    let reply = client.snapshot().expect("snapshot");
    assert!(reply.ok, "{:?}", reply.error_message);
    let saved_reps = reply.result.get("reps").unwrap().as_u64().unwrap();

    let loaded = persist::load(&path).expect("snapshot loads");
    assert_eq!(loaded.n_records(), N_RECORDS);
    assert_eq!(loaded.reps().len() as u64, saved_reps);
    assert!(
        loaded.reps().len() > 6,
        "snapshot should contain cracked reps, got {}",
        loaded.reps().len()
    );

    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_read_deadline_yields_typed_timeout() {
    // Pinned to the threaded core: the silence this test relies on (a
    // queued connection that never gets a worker) only exists in the
    // worker-pool architecture — the reactor answers every connection
    // promptly.
    let server = start_server(ServeConfig {
        core: ServeCore::Threaded,
        workers: 1,
        queue_depth: 4,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    // Occupy the only worker (a round-trip guarantees ownership), then a
    // second connection sits in the queue where no response can arrive.
    let mut held = Client::connect(addr).expect("connect");
    assert!(held.index_stats().expect("stats").ok);

    let mut waiting = Client::connect_with_timeouts(
        addr,
        Some(std::time::Duration::from_secs(5)),
        Some(std::time::Duration::from_millis(50)),
    )
    .expect("connect with deadlines");
    match waiting.index_stats() {
        Err(ClientError::Timeout(msg)) => assert!(msg.contains("50"), "got: {msg}"),
        other => panic!("expected a typed timeout, got {other:?}"),
    }

    drop(held);
    server.shutdown_and_join();
}

#[test]
fn health_reports_meter_state_and_null_oracle_for_plain_labelers() {
    let server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Pay for some labels first so the meter state is non-trivial.
    let mut req = Request::new(Op::LimitQuery);
    req.score = Some(has_car());
    req.k_matches = Some(3);
    assert!(client.call(req).expect("limit").ok);

    let reply = client.health().expect("health");
    assert!(reply.ok);
    let paid = reply.result.get("invocations").unwrap().as_u64().unwrap();
    assert!(paid > 0);
    assert_eq!(reply.result.get("reserved").unwrap().as_u64(), Some(0));
    // CountingLabeler has no resilience middleware: no oracle health.
    assert!(matches!(
        reply.result.get("oracle"),
        Some(tasti_obs::JsonValue::Null)
    ));
    server.shutdown_and_join();
}

#[test]
fn shutdown_drains_and_refuses_new_work_evented() {
    shutdown_drains_and_refuses_new_work(ServeCore::Evented);
}

#[test]
fn shutdown_drains_and_refuses_new_work_threaded() {
    shutdown_drains_and_refuses_new_work(ServeCore::Threaded);
}

fn shutdown_drains_and_refuses_new_work(core: ServeCore) {
    let server = start_server(ServeConfig {
        core,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    assert!(client.index_stats().expect("stats").ok);
    let reply = client.shutdown().expect("shutdown");
    assert!(reply.ok);
    assert_eq!(reply.result.get("draining").unwrap().as_bool(), Some(true));

    server.join();

    // The listener is gone: new connections are refused outright.
    match Client::connect(addr) {
        Err(ClientError::Io(_)) => {}
        Ok(mut c) => {
            // A connection that sneaks in during teardown must still get a
            // shutting_down error, never service.
            match c.index_stats() {
                Ok(reply) => {
                    assert!(!reply.ok);
                    assert_eq!(reply.error_kind.as_deref(), Some("shutting_down"));
                }
                Err(_) => {} // connection dropped — also fine
            }
        }
        Err(e) => panic!("unexpected client error: {e}"),
    }
}
