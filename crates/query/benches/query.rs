//! Criterion microbenchmarks for query-processing hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tasti_query::{ebs_aggregate, supg_recall_target, AggregationConfig, SupgConfig};

fn population(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut truth = Vec::with_capacity(n);
    let mut proxy = Vec::with_capacity(n);
    let mut matches = Vec::with_capacity(n);
    for _ in 0..n {
        let shared: f64 = rng.gen_range(0.0..4.0);
        truth.push(shared + rng.gen_range(-0.5..0.5));
        proxy.push(0.9 * shared + 0.1 * rng.gen_range(0.0..4.0));
        matches.push(shared > 3.0);
    }
    (truth, proxy, matches)
}

fn bench_ebs(c: &mut Criterion) {
    let (truth, proxy, _) = population(20_000, 1);
    c.bench_function("ebs_aggregate_20k", |b| {
        b.iter(|| {
            let cfg = AggregationConfig {
                error_target: 0.05,
                ..Default::default()
            };
            ebs_aggregate(black_box(&proxy), &mut |r| truth[r], &cfg)
        })
    });
}

fn bench_supg(c: &mut Criterion) {
    let (_, proxy, matches) = population(20_000, 2);
    c.bench_function("supg_20k_budget500", |b| {
        b.iter(|| {
            let cfg = SupgConfig {
                budget: 500,
                ..Default::default()
            };
            supg_recall_target(black_box(&proxy), &mut |r| matches[r], &cfg)
        })
    });
}

criterion_group!(benches, bench_ebs, bench_supg);
criterion_main!(benches);
