//! Limit queries (BlazeIt's ranking algorithm, §4.1/§6.3).
//!
//! "Select 10 frames containing at least 5 cars" — the system examines data
//! records in descending proxy-score order, invoking the target labeler on
//! each, and terminates once the requested number of matching records is
//! found. The cost metric is the number of target-labeler invocations
//! (Figure 6); proxy scores with high recall at the top ranks win.

use serde::Serialize;
use tasti_obs::{QueryTelemetry, Stopwatch};

/// Result of a limit query.
#[derive(Debug, Clone, Serialize)]
pub struct LimitResult {
    /// Records found matching the predicate, in scan order.
    pub found: Vec<usize>,
    /// Target-labeler invocations consumed. Mirrors
    /// `telemetry.invocations` (kept for backward compatibility).
    pub invocations: u64,
    /// Whether the requested number of matches was reached before the scan
    /// budget (or the ranking) was exhausted.
    pub satisfied: bool,
    /// Uniform execution record. `certified` equals `satisfied`: an
    /// unsatisfied limit query returned fewer matches than requested.
    pub telemetry: QueryTelemetry,
}

/// Scans `ranking` (record indices, best first), invoking
/// `oracle_match(record)` until `k_matches` matches are found or `max_scan`
/// records have been examined.
///
/// ```
/// use tasti_query::limit_query;
/// let ranking = vec![4, 2, 0, 1, 3]; // proxy thinks 4 and 2 look best
/// let matches = [false, false, true, false, true];
/// let res = limit_query(&ranking, &mut |r| matches[r], 2, 5);
/// assert_eq!(res.found, vec![4, 2]);
/// assert_eq!(res.invocations, 2); // perfect ranking: no wasted calls
/// ```
pub fn limit_query(
    ranking: &[usize],
    oracle_match: &mut dyn FnMut(usize) -> bool,
    k_matches: usize,
    max_scan: usize,
) -> LimitResult {
    let sw = Stopwatch::start();
    let mut found = Vec::with_capacity(k_matches);
    let mut invocations = 0u64;
    for &rec in ranking.iter().take(max_scan) {
        if found.len() >= k_matches {
            break;
        }
        invocations += 1;
        if oracle_match(rec) {
            found.push(rec);
        }
    }
    let satisfied = found.len() >= k_matches;
    let mut telemetry = QueryTelemetry::new("limit_query");
    telemetry.invocations = invocations;
    telemetry.certified = satisfied;
    telemetry.wall_seconds = sw.elapsed_seconds();
    LimitResult {
        found,
        invocations,
        satisfied,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_exactly_at_k_matches() {
        // Matches at positions 0, 2, 4, …
        let ranking: Vec<usize> = (0..100).collect();
        let mut res = limit_query(&ranking, &mut |r| r % 2 == 0, 3, 100);
        assert_eq!(res.found, vec![0, 2, 4]);
        assert_eq!(res.invocations, 5); // scanned 0,1,2,3,4
        assert!(res.satisfied);
        // k = 1 stops immediately.
        res = limit_query(&ranking, &mut |r| r % 2 == 0, 1, 100);
        assert_eq!(res.invocations, 1);
    }

    #[test]
    fn good_ranking_beats_bad_ranking() {
        // 5 rare matches hidden at indices 900..905.
        let is_match = |r: usize| (900..905).contains(&r);
        let good: Vec<usize> = (900..1000).chain(0..900).collect();
        let bad: Vec<usize> = (0..1000).collect();
        let res_good = limit_query(&good, &mut |r| is_match(r), 5, 1000);
        let res_bad = limit_query(&bad, &mut |r| is_match(r), 5, 1000);
        assert!(res_good.satisfied && res_bad.satisfied);
        assert!(
            res_good.invocations * 10 < res_bad.invocations,
            "good {} vs bad {}",
            res_good.invocations,
            res_bad.invocations
        );
    }

    #[test]
    fn unsatisfiable_query_reports_failure() {
        let ranking: Vec<usize> = (0..50).collect();
        let res = limit_query(&ranking, &mut |_| false, 1, 50);
        assert!(!res.satisfied);
        assert!(res.found.is_empty());
        assert_eq!(res.invocations, 50);
        assert!(!res.telemetry.certified);
        assert_eq!(res.telemetry.invocations, 50);
    }

    #[test]
    fn max_scan_caps_invocations() {
        let ranking: Vec<usize> = (0..1000).collect();
        let res = limit_query(&ranking, &mut |_| false, 1, 10);
        assert_eq!(res.invocations, 10);
        assert!(!res.satisfied);
    }

    #[test]
    fn zero_matches_requested_is_trivially_satisfied() {
        let ranking: Vec<usize> = (0..10).collect();
        let res = limit_query(&ranking, &mut |_| true, 0, 10);
        assert!(res.satisfied);
        assert_eq!(res.invocations, 0);
    }
}
