//! Limit queries (BlazeIt's ranking algorithm, §4.1/§6.3).
//!
//! "Select 10 frames containing at least 5 cars" — the system examines data
//! records in descending proxy-score order, invoking the target labeler on
//! each, and terminates once the requested number of matching records is
//! found. The cost metric is the number of target-labeler invocations
//! (Figure 6); proxy scores with high recall at the top ranks win.

use serde::Serialize;
use tasti_obs::{QueryTelemetry, Stopwatch};

/// Result of a limit query.
#[derive(Debug, Clone, Serialize)]
pub struct LimitResult {
    /// Records found matching the predicate, in scan order.
    pub found: Vec<usize>,
    /// Target-labeler invocations consumed. Mirrors
    /// `telemetry.invocations` (kept for backward compatibility).
    pub invocations: u64,
    /// Whether the requested number of matches was reached before the scan
    /// budget (or the ranking) was exhausted.
    pub satisfied: bool,
    /// Uniform execution record. `certified` equals `satisfied`: an
    /// unsatisfied limit query returned fewer matches than requested.
    pub telemetry: QueryTelemetry,
}

/// Scans `ranking` (record indices, best first), invoking
/// `oracle_match(record)` until `k_matches` matches are found or `max_scan`
/// records have been examined.
///
/// ```
/// use tasti_query::limit_query;
/// let ranking = vec![4, 2, 0, 1, 3]; // proxy thinks 4 and 2 look best
/// let matches = [false, false, true, false, true];
/// let res = limit_query(&ranking, &mut |r| matches[r], 2, 5);
/// assert_eq!(res.found, vec![4, 2]);
/// assert_eq!(res.invocations, 2); // perfect ranking: no wasted calls
/// ```
pub fn limit_query(
    ranking: &[usize],
    oracle_match: &mut dyn FnMut(usize) -> bool,
    k_matches: usize,
    max_scan: usize,
) -> LimitResult {
    limit_query_batch(
        ranking,
        &mut |recs| recs.iter().map(|&r| oracle_match(r)).collect(),
        k_matches,
        max_scan,
        1,
    )
}

/// Batched limit query: probes the ranking in chunks of `probe_batch`
/// records per `batch_oracle` call, stopping at the first chunk that
/// completes the requested `k_matches`.
///
/// The limit query's stopping rule is *label-dependent* (it cannot know
/// where the k-th match lies without labeling), so batching trades a
/// bounded overshoot for batch throughput: at most `probe_batch − 1`
/// invocations past the point where the sequential scan would have stopped.
/// With `probe_batch == 1` the scan is bit-identical to [`limit_query`] —
/// the identity the telemetry audit asserts; larger probe batches match how
/// a deployed system drives a batch DNN (BlazeIt's `max_scan`-windowed
/// scans do the same).
///
/// `batch_oracle(records)` must return one match flag per requested record,
/// in order. Found records past `k_matches` within the final chunk are
/// discarded, so the result set is identical for every `probe_batch`
/// whenever the ranking prefix is.
///
/// # Panics
/// Panics if `probe_batch == 0`.
pub fn limit_query_batch(
    ranking: &[usize],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Vec<bool>,
    k_matches: usize,
    max_scan: usize,
    probe_batch: usize,
) -> LimitResult {
    assert!(probe_batch > 0, "probe_batch must be at least 1");
    let sw = Stopwatch::start();
    let mut found = Vec::with_capacity(k_matches);
    let mut invocations = 0u64;
    let scan = &ranking[..ranking.len().min(max_scan)];
    for chunk in scan.chunks(probe_batch) {
        if found.len() >= k_matches {
            break;
        }
        let flags = batch_oracle(chunk);
        assert_eq!(
            flags.len(),
            chunk.len(),
            "batch oracle must return one flag per record"
        );
        invocations += chunk.len() as u64;
        for (&rec, is_match) in chunk.iter().zip(flags) {
            if is_match && found.len() < k_matches {
                found.push(rec);
            }
        }
    }
    let satisfied = found.len() >= k_matches;
    let mut telemetry = QueryTelemetry::new("limit_query");
    telemetry.invocations = invocations;
    telemetry.certified = satisfied;
    telemetry.wall_seconds = sw.elapsed_seconds();
    LimitResult {
        found,
        invocations,
        satisfied,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_exactly_at_k_matches() {
        // Matches at positions 0, 2, 4, …
        let ranking: Vec<usize> = (0..100).collect();
        let mut res = limit_query(&ranking, &mut |r| r % 2 == 0, 3, 100);
        assert_eq!(res.found, vec![0, 2, 4]);
        assert_eq!(res.invocations, 5); // scanned 0,1,2,3,4
        assert!(res.satisfied);
        // k = 1 stops immediately.
        res = limit_query(&ranking, &mut |r| r % 2 == 0, 1, 100);
        assert_eq!(res.invocations, 1);
    }

    #[test]
    fn good_ranking_beats_bad_ranking() {
        // 5 rare matches hidden at indices 900..905.
        let is_match = |r: usize| (900..905).contains(&r);
        let good: Vec<usize> = (900..1000).chain(0..900).collect();
        let bad: Vec<usize> = (0..1000).collect();
        let res_good = limit_query(&good, &mut |r| is_match(r), 5, 1000);
        let res_bad = limit_query(&bad, &mut |r| is_match(r), 5, 1000);
        assert!(res_good.satisfied && res_bad.satisfied);
        assert!(
            res_good.invocations * 10 < res_bad.invocations,
            "good {} vs bad {}",
            res_good.invocations,
            res_bad.invocations
        );
    }

    #[test]
    fn unsatisfiable_query_reports_failure() {
        let ranking: Vec<usize> = (0..50).collect();
        let res = limit_query(&ranking, &mut |_| false, 1, 50);
        assert!(!res.satisfied);
        assert!(res.found.is_empty());
        assert_eq!(res.invocations, 50);
        assert!(!res.telemetry.certified);
        assert_eq!(res.telemetry.invocations, 50);
    }

    #[test]
    fn max_scan_caps_invocations() {
        let ranking: Vec<usize> = (0..1000).collect();
        let res = limit_query(&ranking, &mut |_| false, 1, 10);
        assert_eq!(res.invocations, 10);
        assert!(!res.satisfied);
    }

    #[test]
    fn zero_matches_requested_is_trivially_satisfied() {
        let ranking: Vec<usize> = (0..10).collect();
        let res = limit_query(&ranking, &mut |_| true, 0, 10);
        assert!(res.satisfied);
        assert_eq!(res.invocations, 0);
    }

    #[test]
    fn probe_batch_one_is_bit_identical_to_sequential() {
        let ranking: Vec<usize> = (0..200).rev().collect();
        let is_match = |r: usize| r % 7 == 0;
        let seq = limit_query(&ranking, &mut |r| is_match(r), 8, 150);
        let bat = limit_query_batch(
            &ranking,
            &mut |recs| recs.iter().map(|&r| is_match(r)).collect(),
            8,
            150,
            1,
        );
        assert_eq!(bat.found, seq.found);
        assert_eq!(bat.invocations, seq.invocations);
        assert_eq!(bat.satisfied, seq.satisfied);
    }

    #[test]
    fn probe_batch_overshoot_is_bounded_and_result_identical() {
        let ranking: Vec<usize> = (0..500).collect();
        let is_match = |r: usize| r % 3 == 0;
        let seq = limit_query(&ranking, &mut |r| is_match(r), 10, 500);
        for probe_batch in [4usize, 16, 64] {
            let bat = limit_query_batch(
                &ranking,
                &mut |recs| recs.iter().map(|&r| is_match(r)).collect(),
                10,
                500,
                probe_batch,
            );
            assert_eq!(bat.found, seq.found, "probe_batch {probe_batch}");
            assert!(bat.satisfied);
            assert!(
                bat.invocations >= seq.invocations
                    && bat.invocations < seq.invocations + probe_batch as u64,
                "probe_batch {probe_batch}: {} vs sequential {}",
                bat.invocations,
                seq.invocations
            );
        }
    }

    #[test]
    fn batched_scan_counts_every_probed_record() {
        // Each batch oracle call probes its whole chunk; the meter must
        // reflect that even when the k-th match lands mid-chunk.
        let ranking: Vec<usize> = (0..100).collect();
        let mut calls = 0u64;
        let res = limit_query_batch(
            &ranking,
            &mut |recs| {
                calls += recs.len() as u64;
                recs.iter().map(|&r| r == 2).collect()
            },
            1,
            100,
            10,
        );
        assert_eq!(res.found, vec![2]);
        assert_eq!(res.invocations, 10); // one full chunk
        assert_eq!(res.invocations, calls);
    }

    #[test]
    #[should_panic(expected = "probe_batch")]
    fn zero_probe_batch_panics() {
        let ranking: Vec<usize> = (0..10).collect();
        let _ = limit_query_batch(&ranking, &mut |recs| vec![false; recs.len()], 1, 10, 0);
    }
}
