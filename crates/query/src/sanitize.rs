//! Proxy-score sanitization — the crate-wide degenerate-input policy.
//!
//! Proxy scores arrive from outside the statistical machinery (index
//! propagation, per-query models, user code) and can contain NaN or ±∞:
//! a single NaN used to panic both SUPG variants (`partial_cmp().unwrap()`
//! on threshold lists), hang `tune_threshold` (NaN never equals itself, so
//! its tie-advancing scan stopped making progress), and silently poison the
//! EBS control variate (NaN half-widths never certify, so the sampler
//! labels the whole dataset).
//!
//! **The policy**, applied at the entry of every query algorithm:
//!
//! * finite scores pass through untouched (zero-copy on the common path);
//! * `NaN` carries no ranking information and is mapped to the *minimum
//!   finite score* — a NaN-scored record is treated as least promising,
//!   never dropped (statistical guarantees quantify over all records);
//! * `−∞` maps to the minimum finite score, `+∞` to the maximum (the
//!   nearest representable "extremely small/large" value);
//! * a vector with **no finite score at all** becomes all-zero, degrading
//!   to the uniform no-proxy baseline.
//!
//! The number of replaced entries is reported in every result's
//! [`QueryTelemetry::sanitized_inputs`](tasti_obs::QueryTelemetry) so a
//! polluted proxy model is visible in accounting rather than silent.

use std::borrow::Cow;
use std::cmp::Ordering;

/// Proxy scores with every non-finite entry replaced per the module policy.
#[derive(Debug)]
pub struct Sanitized<'a> {
    /// The sanitized scores (borrowed when the input was already clean).
    pub scores: Cow<'a, [f64]>,
    /// How many entries were replaced.
    pub replaced: u64,
}

/// Applies the module's sanitization policy to a proxy-score slice.
///
/// ```
/// use tasti_query::sanitize_proxies;
/// let s = sanitize_proxies(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
/// assert_eq!(&*s.scores, &[1.0, 1.0, 3.0, 3.0]);
/// assert_eq!(s.replaced, 2);
/// // Clean inputs are borrowed, not copied.
/// assert_eq!(sanitize_proxies(&[0.5, 0.25]).replaced, 0);
/// ```
pub fn sanitize_proxies(proxy: &[f64]) -> Sanitized<'_> {
    let replaced = proxy.iter().filter(|p| !p.is_finite()).count() as u64;
    if replaced == 0 {
        return Sanitized {
            scores: Cow::Borrowed(proxy),
            replaced: 0,
        };
    }
    let (lo, hi) = proxy
        .iter()
        .filter(|p| p.is_finite())
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
            (lo.min(p), hi.max(p))
        });
    if lo > hi {
        // No finite score anywhere: uniform no-proxy fallback.
        return Sanitized {
            scores: Cow::Owned(vec![0.0; proxy.len()]),
            replaced,
        };
    }
    let scores = proxy
        .iter()
        .map(|&p| {
            if p.is_finite() {
                p
            } else if p == f64::INFINITY {
                hi
            } else {
                lo // NaN and −∞: least promising
            }
        })
        .collect();
    Sanitized {
        scores: Cow::Owned(scores),
        replaced,
    }
}

/// Normalizes sanitized scores to `[0, 1]`, overflow-safe.
///
/// `(p − lo) / (hi − lo)` can overflow to ∞ (and then produce `∞/∞ = NaN`)
/// when `hi − lo` exceeds `f64::MAX`, e.g. scores spanning ±`f64::MAX`.
/// Pre-scaling everything by 0.5 — exact in binary floating point — keeps
/// every intermediate finite and leaves the result bit-identical to the
/// direct formula whenever that formula doesn't overflow.
#[derive(Debug, Clone)]
pub struct UnitScale {
    /// The normalized scores, all in `[0, 1]` and finite.
    pub norm: Vec<f64>,
    lo: f64,
    hi: f64,
}

impl UnitScale {
    /// Normalizes `scores` (which must already be finite — run
    /// [`sanitize_proxies`] first; debug-asserted).
    pub fn new(scores: &[f64]) -> Self {
        debug_assert!(scores.iter().all(|p| p.is_finite()));
        let (lo, hi) = scores
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
                (lo.min(p), hi.max(p))
            });
        let (lo, hi) = if lo > hi { (0.0, 0.0) } else { (lo, hi) };
        // Halving is exact, so span2 is finite even for hi − lo > f64::MAX.
        let span2 = (hi * 0.5 - lo * 0.5).max(0.5e-12);
        let norm = scores
            .iter()
            .map(|&p| (p * 0.5 - lo * 0.5) / span2)
            .collect();
        Self { norm, lo, hi }
    }

    /// Maps a normalized threshold back to the original score scale as the
    /// convex combination `lo·(1−τ) + hi·τ` (finite for τ ∈ [0, 1] even
    /// when `hi − lo` overflows).
    pub fn denormalize(&self, tau: f64) -> f64 {
        self.lo * (1.0 - tau) + self.hi * tau
    }
}

/// Descending order with NaN sorted last — the total-order comparator for
/// "best proxy first" rankings. NaN never panics `sort_by` (the closure is
/// a total order) and never wins a top rank.
pub fn desc_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_input_is_borrowed() {
        let p = [0.1, 0.2, 0.3];
        let s = sanitize_proxies(&p);
        assert!(matches!(s.scores, Cow::Borrowed(_)));
        assert_eq!(s.replaced, 0);
    }

    #[test]
    fn nan_and_neg_inf_map_to_min_pos_inf_to_max() {
        let p = [2.0, f64::NAN, -1.0, f64::NEG_INFINITY, f64::INFINITY];
        let s = sanitize_proxies(&p);
        assert_eq!(&*s.scores, &[2.0, -1.0, -1.0, -1.0, 2.0]);
        assert_eq!(s.replaced, 3);
    }

    #[test]
    fn all_non_finite_degrades_to_uniform() {
        let p = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let s = sanitize_proxies(&p);
        assert_eq!(&*s.scores, &[0.0, 0.0, 0.0]);
        assert_eq!(s.replaced, 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let s = sanitize_proxies(&[]);
        assert!(s.scores.is_empty());
        assert_eq!(s.replaced, 0);
    }

    #[test]
    fn unit_scale_matches_direct_formula_on_normal_ranges() {
        let scores = [3.0, 5.0, 4.0, 3.0];
        let u = UnitScale::new(&scores);
        for (n, &p) in u.norm.iter().zip(&scores) {
            let direct = (p - 3.0) / 2.0f64;
            assert_eq!(*n, direct, "bit-identical on non-overflowing spans");
        }
        assert_eq!(u.denormalize(0.0), 3.0);
        assert_eq!(u.denormalize(1.0), 5.0);
    }

    #[test]
    fn unit_scale_survives_overflowing_spans() {
        let scores = [f64::MAX, -f64::MAX, 0.0];
        let u = UnitScale::new(&scores);
        assert!(u.norm.iter().all(|n| n.is_finite()));
        assert_eq!(u.norm[0], 1.0);
        assert_eq!(u.norm[1], 0.0);
        assert!((u.norm[2] - 0.5).abs() < 1e-12);
        assert!(u.denormalize(0.5).is_finite());
    }

    #[test]
    fn constant_scores_normalize_to_zero() {
        let u = UnitScale::new(&[7.0; 5]);
        assert!(u.norm.iter().all(|&n| n == 0.0));
    }

    #[test]
    fn desc_nan_last_is_a_total_order_with_nan_at_the_end() {
        let mut v = vec![1.0, f64::NAN, 3.0, 2.0, f64::NAN];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(&v[..3], &[3.0, 2.0, 1.0]);
        assert!(v[3].is_nan() && v[4].is_nan());
    }
}
