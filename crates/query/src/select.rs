//! Selection without statistical guarantees (§6.5, Table 2).
//!
//! NoScope, Tahoma, and probabilistic predicates select records whose proxy
//! score clears a threshold, "either ad-hoc or computed over some validation
//! set". [`tune_threshold`] implements the validation-set variant: it labels
//! a small uniform sample through the oracle and picks the threshold
//! maximizing F1 on it; [`threshold_selection`] then applies a threshold to
//! the whole dataset. Quality is reported as `100 − F1` (Table 2, lower is
//! better).

use crate::sanitize::{desc_nan_last, sanitize_proxies};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use tasti_obs::{QueryTelemetry, Stopwatch};

/// Result of a threshold selection.
#[derive(Debug, Clone, Serialize)]
pub struct SelectionResult {
    /// Indices of the selected records.
    pub selected: Vec<usize>,
    /// Threshold applied to the proxy scores.
    pub threshold: f64,
    /// Oracle invocations spent tuning (0 for ad-hoc thresholds). Mirrors
    /// `telemetry.invocations` (kept for backward compatibility).
    pub oracle_calls: u64,
    /// Uniform execution record. `certified` is always `false`: validation-
    /// set threshold tuning carries no statistical guarantee (§6.5).
    pub telemetry: QueryTelemetry,
}

/// Selects every record whose proxy score is ≥ `threshold`.
pub fn threshold_selection(proxy: &[f64], threshold: f64) -> Vec<usize> {
    (0..proxy.len())
        .filter(|&i| proxy[i] >= threshold)
        .collect()
}

/// Labels `validation_size` uniformly sampled records through the oracle and
/// returns the proxy threshold maximizing F1 on that sample, applied to the
/// full dataset.
///
/// Thin adapter over [`tune_threshold_batch`]; both entry points label the
/// same validation sample and consume identical invocation counts.
pub fn tune_threshold(
    proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> bool,
    validation_size: usize,
    seed: u64,
) -> SelectionResult {
    tune_threshold_batch(
        proxy,
        &mut |recs| recs.iter().map(|&r| oracle(r)).collect(),
        validation_size,
        seed,
    )
}

/// Batched threshold tuning: the uniformly drawn validation sample is
/// label-independent, so the whole sample is labeled in **one**
/// `batch_oracle` call — a batched target labeler answers it with a single
/// inner invocation. Records are distinct (sampling is without
/// replacement), keeping the invocation meter identical to the sequential
/// [`tune_threshold`] loop on a cold cache.
pub fn tune_threshold_batch(
    proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Vec<bool>,
    validation_size: usize,
    seed: u64,
) -> SelectionResult {
    let sw = Stopwatch::start();
    let mut telemetry = QueryTelemetry::new("tune_threshold");
    telemetry.certified = false; // no statistical guarantee by design
    let n = proxy.len();
    assert!(n > 0, "cannot select over an empty dataset");
    // Sanitize non-finite proxies per the crate-wide policy. Regression:
    // a NaN score in the validation sample made the tie-advancing sweep
    // below loop forever (NaN != NaN, so `i` never advanced).
    let sanitized = sanitize_proxies(proxy);
    telemetry.sanitized_inputs = sanitized.replaced;
    let proxy: &[f64] = &sanitized.scores;
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order.truncate(validation_size.min(n));

    let answers = batch_oracle(&order);
    assert_eq!(
        answers.len(),
        order.len(),
        "batch oracle must return one answer per record"
    );
    let sample: Vec<(f64, bool)> = order
        .iter()
        .zip(answers)
        .map(|(&r, pos)| (proxy[r], pos))
        .collect();
    let oracle_calls = sample.len() as u64;
    let total_pos = sample.iter().filter(|s| s.1).count();

    // Candidate thresholds: the distinct proxy values in the sample,
    // descending, plus −∞ (select all). Evaluate F1 at each by sweeping.
    let mut by_score = sample.clone();
    by_score.sort_by(|a, b| desc_nan_last(a.0, b.0));
    let mut best_threshold = f64::NEG_INFINITY;
    let mut best_f1 = f1(total_pos, sample.len() - total_pos, 0); // select-all F1
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut i = 0;
    while i < by_score.len() {
        // Advance over ties so the threshold sits at a realizable cut.
        let tau = by_score[i].0;
        while i < by_score.len() && by_score[i].0 == tau {
            if by_score[i].1 {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let fn_ = total_pos - tp;
        let score = f1(tp, fp, fn_);
        if score > best_f1 {
            best_f1 = score;
            best_threshold = tau;
        }
    }

    let selected = threshold_selection(proxy, best_threshold);
    telemetry.invocations = oracle_calls;
    telemetry.wall_seconds = sw.elapsed_seconds();
    SelectionResult {
        selected,
        threshold: best_threshold,
        oracle_calls,
        telemetry,
    }
}

fn f1(tp: usize, fp: usize, fn_: usize) -> f64 {
    if tp == 0 {
        return 0.0;
    }
    let p = tp as f64 / (tp + fp) as f64;
    let r = tp as f64 / (tp + fn_) as f64;
    2.0 * p * r / (p + r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn threshold_selection_filters_by_score() {
        let proxy = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(threshold_selection(&proxy, 0.6), vec![1, 3]);
        assert_eq!(threshold_selection(&proxy, 0.0), vec![0, 1, 2, 3]);
        assert_eq!(threshold_selection(&proxy, 2.0), Vec::<usize>::new());
    }

    #[test]
    fn tuned_threshold_separates_well_ranked_data() {
        // Positives score in [0.6, 1.0], negatives in [0.0, 0.4].
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 2000;
        let truth: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.2).collect();
        let proxy: Vec<f64> = truth
            .iter()
            .map(|&t| {
                if t {
                    rng.gen_range(0.6..1.0)
                } else {
                    rng.gen_range(0.0..0.4)
                }
            })
            .collect();
        let res = tune_threshold(&proxy, &mut |r| truth[r], 300, 2);
        // Selected set should match the positives almost exactly.
        let tp = res.selected.iter().filter(|&&i| truth[i]).count();
        let total_pos = truth.iter().filter(|&&t| t).count();
        let precision = tp as f64 / res.selected.len().max(1) as f64;
        let recall = tp as f64 / total_pos as f64;
        assert!(precision > 0.95, "precision {precision}");
        assert!(recall > 0.95, "recall {recall}");
        assert!(
            res.threshold > 0.4 && res.threshold <= 0.7,
            "threshold {}",
            res.threshold
        );
        assert_eq!(res.oracle_calls, 300);
    }

    #[test]
    fn noisy_scores_still_yield_reasonable_f1() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 3000;
        let truth: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.3).collect();
        let proxy: Vec<f64> = truth
            .iter()
            .map(|&t| 0.6 * (t as u8 as f64) + 0.4 * rng.gen::<f64>())
            .collect();
        let res = tune_threshold(&proxy, &mut |r| truth[r], 400, 4);
        let tp = res.selected.iter().filter(|&&i| truth[i]).count();
        let fp = res.selected.len() - tp;
        let total_pos = truth.iter().filter(|&&t| t).count();
        let f = super::f1(tp, fp, total_pos - tp);
        assert!(f > 0.85, "F1 {f}");
    }

    #[test]
    fn all_negative_validation_selects_nothing_confidently() {
        let proxy: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let res = tune_threshold(&proxy, &mut |_| false, 50, 5);
        // Best F1 is 0 everywhere; the select-all default applies, which is
        // the conservative (recall-preserving) choice.
        assert_eq!(res.threshold, f64::NEG_INFINITY);
        assert_eq!(res.selected.len(), 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let truth: Vec<bool> = (0..500).map(|_| rng.gen::<f64>() < 0.5).collect();
        let proxy: Vec<f64> = truth.iter().map(|&t| t as u8 as f64).collect();
        let a = tune_threshold(&proxy, &mut |r| truth[r], 100, 7);
        let b = tune_threshold(&proxy, &mut |r| truth[r], 100, 7);
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.threshold, b.threshold);
    }

    #[test]
    fn f1_helper_edge_cases() {
        assert_eq!(super::f1(0, 10, 10), 0.0);
        assert!((super::f1(10, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_proxies_terminate_and_are_counted() {
        // Regression: a NaN validation score hung the tie-advancing F1
        // sweep forever. Sanitization must both terminate and be visible.
        let mut proxy: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        proxy[10] = f64::NAN;
        proxy[20] = f64::INFINITY;
        let res = tune_threshold(&proxy, &mut |r| r >= 100, 200, 5);
        assert_eq!(res.telemetry.sanitized_inputs, 2);
        assert!(!res.telemetry.certified);
        assert_eq!(res.telemetry.invocations, res.oracle_calls);
        // The tuned threshold still separates the clean bulk of the data.
        let tp = res.selected.iter().filter(|&&i| i >= 100).count();
        assert!(tp >= 95, "tp {tp}");
    }
}
