//! Statistical machinery shared by the query-processing algorithms.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Observed range `max − min` (0 when fewer than 2 observations).
    pub fn range(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

/// Empirical Bernstein confidence half-width (Audibert, Munos &
/// Szepesvári; as used by BlazeIt's EBS stopping rule):
///
/// `ε = σ̂·√(2·ln(3/δ)/t) + 3·R·ln(3/δ)/t`
///
/// where `σ̂` is the empirical standard deviation, `R` the value range, and
/// `t` the sample count. Valid for i.i.d. samples bounded in an interval of
/// length `R`.
pub fn empirical_bernstein_half_width(std_dev: f64, range: f64, t: u64, delta: f64) -> f64 {
    if t == 0 {
        return f64::INFINITY;
    }
    let t = t as f64;
    let log_term = (3.0 / delta).ln();
    std_dev * (2.0 * log_term / t).sqrt() + 3.0 * range * log_term / t
}

/// Standard normal inverse CDF (Acklam's rational approximation, |ε| < 1.15e-9).
pub fn normal_inverse_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_inverse_cdf requires p in (0, 1), got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.50662827745924e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Sample Pearson covariance of two equal-length slices.
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / (n - 1) as f64
}

/// Sample variance of a slice.
pub fn variance(a: &[f64]) -> f64 {
    covariance(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_closed_form() {
        let mut m = Moments::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((m.range() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_moments_are_safe() {
        let m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.range(), 0.0);
    }

    #[test]
    fn bernstein_width_shrinks_with_samples() {
        let w10 = empirical_bernstein_half_width(1.0, 4.0, 10, 0.05);
        let w1000 = empirical_bernstein_half_width(1.0, 4.0, 1000, 0.05);
        assert!(w1000 < w10 / 5.0);
    }

    #[test]
    fn bernstein_width_grows_with_variance_and_range() {
        let base = empirical_bernstein_half_width(1.0, 2.0, 100, 0.05);
        assert!(empirical_bernstein_half_width(2.0, 2.0, 100, 0.05) > base);
        assert!(empirical_bernstein_half_width(1.0, 4.0, 100, 0.05) > base);
    }

    #[test]
    fn bernstein_zero_samples_is_infinite() {
        assert!(empirical_bernstein_half_width(1.0, 1.0, 0, 0.05).is_infinite());
    }

    #[test]
    fn normal_inverse_known_quantiles() {
        assert!(normal_inverse_cdf(0.5).abs() < 1e-9);
        assert!((normal_inverse_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_inverse_cdf(0.95) - 1.644854).abs() < 1e-4);
        assert!((normal_inverse_cdf(0.05) + 1.644854).abs() < 1e-4);
        // Tail region.
        assert!((normal_inverse_cdf(0.001) + 3.090232).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "requires p in (0, 1)")]
    fn normal_inverse_rejects_out_of_range() {
        let _ = normal_inverse_cdf(0.0);
    }

    #[test]
    fn covariance_of_linear_relation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let cov = covariance(&a, &b);
        let va = variance(&a);
        assert!((cov - 2.0 * va).abs() < 1e-12);
    }
}
