//! Approximate aggregation (BlazeIt-style, §2.1/§4.1/§6.3).
//!
//! The query asks for the mean of the target labeler's score over all
//! records (e.g. average cars per frame) within `±error_target` at a given
//! confidence. The algorithm samples records uniformly **without
//! replacement**, invokes the oracle on each, and uses the proxy scores as a
//! **control variate**: the estimated quantity is
//!
//! `E[y] = E[y − c·(p − μ_p)]`  with  `μ_p` known exactly (proxy scores are
//! cheap to materialize for every record) and `c = Cov(y, p)/Var(p)`
//! estimated on the sample. The variance of the corrected samples shrinks by
//! `(1 − ρ²)`, which is precisely why better proxy scores mean fewer target
//! labeler invocations (§6.3: "As the correlation of the proxy scores with
//! the target labeler increases, the control variates variance decreases").
//!
//! Stopping uses the empirical-Bernstein bound with a union-bound schedule
//! (EBS / EBGStop of Mnih, Szepesvári & Audibert, the rule BlazeIt adopts).
//! If the sampler exhausts the dataset the exact mean is returned.

use crate::sanitize::sanitize_proxies;
use crate::stats::{covariance, empirical_bernstein_half_width, variance};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use tasti_obs::{QueryTelemetry, Stopwatch};

/// Which confidence interval drives the stopping decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoppingRule {
    /// Strict empirical-Bernstein bound with a union-bound check schedule —
    /// a rigorous any-time guarantee, but its `3·R·ln(3/δ)/t` range term
    /// dominates at small sample counts for wide-range scores.
    #[default]
    EmpiricalBernstein,
    /// Normal-approximation (CLT) interval `z·σ̂/√t` — what BlazeIt's
    /// stopping behaves like in practice (its reported sample counts match
    /// the CLT prediction `t ≈ (z·σ/ε)²`, not the Bernstein one); sample
    /// counts become directly proportional to the control-variate residual
    /// variance `σ²(1 − ρ²)`, the mechanism §6.3 describes.
    Clt,
}

/// Configuration for approximate aggregation with guarantees.
#[derive(Debug, Clone)]
pub struct AggregationConfig {
    /// Absolute error target `ε`.
    pub error_target: f64,
    /// Confidence level `1 − δ` (e.g. 0.95).
    pub confidence: f64,
    /// Samples drawn between stopping checks (checking every sample is
    /// statistically fine under the union bound but needlessly slow).
    pub batch_size: usize,
    /// Minimum samples before the first stopping check (stabilizes the
    /// control-variate coefficient estimate).
    pub min_samples: usize,
    /// Stopping rule.
    pub stopping: StoppingRule,
    /// Apply the finite-population correction `√((N−t)/(N−1))` to the
    /// interval width. Sampling here is *without replacement*, so the
    /// correction is exact for the CLT interval and conservative-compatible
    /// for Bernstein; it matters once samples become a sizable fraction of
    /// the dataset (small-N regimes like per-camera indexes).
    pub finite_population_correction: bool,
    /// RNG seed for the sampling order.
    pub seed: u64,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        Self {
            error_target: 0.05,
            confidence: 0.95,
            batch_size: 50,
            min_samples: 100,
            stopping: StoppingRule::EmpiricalBernstein,
            finite_population_correction: false,
            seed: 1,
        }
    }
}

/// Result of an aggregation query.
#[derive(Debug, Clone, Serialize)]
pub struct AggregationResult {
    /// The estimate of the population mean of the oracle score.
    pub estimate: f64,
    /// Target-labeler invocations consumed.
    pub samples: u64,
    /// Final empirical-Bernstein half-width (≤ `error_target` unless the
    /// dataset was exhausted).
    pub ci_half_width: f64,
    /// Whether every record ended up labeled (estimate is then exact).
    pub exhausted: bool,
    /// Control-variate coefficient `c` in use at termination.
    pub control_coefficient: f64,
    /// Squared correlation between oracle scores and proxy scores on the
    /// sample (the paper's proxy-quality metric ρ²).
    pub rho_squared: f64,
    /// Uniform execution record. `certified` is `true` both when the CI
    /// target was met and when the dataset was exhausted (the answer is
    /// then exact).
    pub telemetry: QueryTelemetry,
}

/// Runs EBS aggregation with the proxy score as a control variate.
///
/// `proxy` holds one score per record; `oracle(record)` invokes the target
/// labeler and returns the query score of that record.
///
/// This is a thin adapter over [`ebs_aggregate_batch`] — both entry points
/// draw the same records in the same order, so their invocation counts are
/// identical.
///
/// ```
/// use tasti_query::{ebs_aggregate, AggregationConfig};
/// // Perfect proxy scores: the control variate removes all variance and
/// // the query stops at the minimum sample count.
/// let truth: Vec<f64> = (0..10_000).map(|i| (i % 5) as f64).collect();
/// let proxy = truth.clone();
/// let res = ebs_aggregate(&proxy, &mut |r| truth[r], &AggregationConfig::default());
/// assert!((res.estimate - 2.0).abs() <= 0.05);
/// assert!(res.samples < 1_000);
/// ```
pub fn ebs_aggregate(
    proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> f64,
    config: &AggregationConfig,
) -> AggregationResult {
    ebs_aggregate_batch(
        proxy,
        &mut |recs| recs.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

/// Batched EBS aggregation: each sampling round requests its whole draw
/// batch from `batch_oracle` in one call, so a batched target labeler (e.g.
/// [`MeteredLabeler::try_label_batch`]) answers it with a single inner
/// invocation instead of `batch_size` serialized ones.
///
/// `batch_oracle(records)` must return one score per requested record, in
/// order. Sampling is without replacement, so every requested record is
/// fresh — on a cold cache the invocation meter advances exactly as the
/// sequential [`ebs_aggregate`] loop would.
///
/// [`MeteredLabeler::try_label_batch`]: tasti_labeler::MeteredLabeler::try_label_batch
pub fn ebs_aggregate_batch(
    proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Vec<f64>,
    config: &AggregationConfig,
) -> AggregationResult {
    let sw = Stopwatch::start();
    let mut telemetry = QueryTelemetry::new("ebs_aggregate");
    let n = proxy.len();
    assert!(n > 0, "cannot aggregate an empty dataset");
    let delta = 1.0 - config.confidence;
    assert!(delta > 0.0 && delta < 1.0, "confidence must be in (0, 1)");
    // Sanitize non-finite proxies per the crate-wide policy: a single NaN
    // proxy score used to make the control-variate coefficient NaN, which
    // made every half-width NaN — the sampler then silently labeled the
    // whole dataset before terminating.
    let sanitized = sanitize_proxies(proxy);
    telemetry.sanitized_inputs = sanitized.replaced;
    let proxy: &[f64] = &sanitized.scores;
    let proxy_mean = proxy.iter().sum::<f64>() / n as f64;

    // Uniform sampling without replacement via a shuffled record order.
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    order.shuffle(&mut rng);

    let mut ys: Vec<f64> = Vec::new();
    let mut ps: Vec<f64> = Vec::new();
    let mut checks = 0u32;

    loop {
        // Draw a batch.
        let target = (ys.len() + config.batch_size)
            .min(n)
            .max(config.min_samples.min(n));
        let batch = &order[ys.len()..target];
        let scores = batch_oracle(batch);
        assert_eq!(
            scores.len(),
            batch.len(),
            "batch oracle must return one score per record"
        );
        for (&rec, score) in batch.iter().zip(scores) {
            ys.push(score);
            ps.push(proxy[rec]);
        }
        let t = ys.len() as u64;

        // Control-variate coefficient on the current sample. A non-finite
        // coefficient (extreme-magnitude scores overflowing the variance)
        // carries no information — fall back to the plain estimator.
        let var_p = variance(&ps);
        let c = if var_p > 1e-12 {
            let c = covariance(&ys, &ps) / var_p;
            if c.is_finite() {
                c
            } else {
                0.0
            }
        } else {
            0.0
        };
        // Corrected samples z_i = y_i − c (p_i − μ_p). With c = 0 use y
        // directly: 0·(p − μ_p) is NaN when μ_p overflowed to ∞.
        let zs: Vec<f64> = ys
            .iter()
            .zip(&ps)
            .map(|(&y, &p)| {
                if c == 0.0 {
                    y
                } else {
                    y - c * (p - proxy_mean)
                }
            })
            .collect();
        let mean_z = zs.iter().sum::<f64>() / zs.len() as f64;
        let std_z = variance(&zs).sqrt();
        let range_z = zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - zs.iter().cloned().fold(f64::INFINITY, f64::min);

        let fpc = if config.finite_population_correction && n > 1 {
            (((n as f64 - t as f64) / (n as f64 - 1.0)).max(0.0)).sqrt()
        } else {
            1.0
        };
        let half_width = fpc
            * match config.stopping {
                StoppingRule::EmpiricalBernstein => {
                    // Union-bound schedule over stopping checks:
                    // δ_k = δ / (k(k+1)), Σ_k δ_k = δ.
                    checks += 1;
                    let delta_k = delta / (checks as f64 * (checks as f64 + 1.0));
                    empirical_bernstein_half_width(std_z, range_z.max(1e-12), t, delta_k)
                }
                StoppingRule::Clt => {
                    let z = crate::stats::normal_inverse_cdf(1.0 - delta / 2.0);
                    z * std_z / (t as f64).sqrt()
                }
            };

        let rho2 = {
            let var_y = variance(&ys);
            if var_y > 1e-12 && var_p > 1e-12 {
                let cov = covariance(&ys, &ps);
                (cov * cov) / (var_y * var_p)
            } else {
                0.0
            }
        };

        if ys.len() >= n {
            // Exhausted: exact mean over all records.
            let exact = ys.iter().sum::<f64>() / n as f64;
            telemetry.invocations = t;
            telemetry.certified = true; // the answer is exact
            telemetry.wall_seconds = sw.elapsed_seconds();
            return AggregationResult {
                estimate: exact,
                samples: t,
                ci_half_width: 0.0,
                exhausted: true,
                control_coefficient: c,
                rho_squared: rho2,
                telemetry,
            };
        }
        if half_width <= config.error_target && ys.len() >= config.min_samples {
            telemetry.invocations = t;
            telemetry.certified = true;
            telemetry.wall_seconds = sw.elapsed_seconds();
            return AggregationResult {
                estimate: mean_z,
                samples: t,
                ci_half_width: half_width,
                exhausted: false,
                control_coefficient: c,
                rho_squared: rho2,
                telemetry,
            };
        }
    }
}

/// Direct (no-guarantee) aggregation: the mean of the proxy scores is
/// returned as the answer with zero target-labeler invocations (§6.5).
pub fn direct_aggregate(proxy: &[f64]) -> f64 {
    assert!(!proxy.is_empty(), "cannot aggregate an empty dataset");
    proxy.iter().sum::<f64>() / proxy.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A population with controllable proxy correlation.
    fn population(n: usize, rho: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut truth = Vec::with_capacity(n);
        let mut proxy = Vec::with_capacity(n);
        for _ in 0..n {
            let shared: f64 = rng.gen_range(0.0..4.0);
            let y = shared + rng.gen_range(-0.5..0.5);
            let noise: f64 = rng.gen_range(0.0..4.0);
            let p = rho * shared + (1.0 - rho) * noise;
            truth.push(y);
            proxy.push(p);
        }
        (truth, proxy)
    }

    fn true_mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn estimate_is_within_error_target() {
        let (truth, proxy) = population(30_000, 0.9, 1);
        let mu = true_mean(&truth);
        let config = AggregationConfig {
            error_target: 0.05,
            seed: 7,
            ..Default::default()
        };
        let mut oracle = |r: usize| truth[r];
        let res = ebs_aggregate(&proxy, &mut oracle, &config);
        assert!(
            (res.estimate - mu).abs() <= config.error_target,
            "estimate {} vs true {mu}",
            res.estimate
        );
        assert!(res.samples < 30_000, "should not exhaust");
    }

    #[test]
    fn better_proxy_needs_fewer_samples() {
        let (truth, good_proxy) = population(30_000, 0.95, 2);
        let (_, bad_proxy) = population(30_000, 0.0, 2);
        let config = AggregationConfig {
            error_target: 0.04,
            seed: 3,
            ..Default::default()
        };
        let good = ebs_aggregate(&good_proxy, &mut |r| truth[r], &config);
        let bad = ebs_aggregate(&bad_proxy, &mut |r| truth[r], &config);
        assert!(
            good.samples * 2 <= bad.samples,
            "good proxy {} vs bad proxy {} samples",
            good.samples,
            bad.samples
        );
        assert!(good.rho_squared > bad.rho_squared);
    }

    #[test]
    fn coverage_over_repeated_runs() {
        // The (ε, δ) guarantee: ≥ 95% of runs land within ε. Check ≥ 80% over
        // 25 runs to keep the test fast but meaningful.
        let (truth, proxy) = population(20_000, 0.7, 5);
        let mu = true_mean(&truth);
        let config = AggregationConfig {
            error_target: 0.06,
            ..Default::default()
        };
        let mut hits = 0;
        for seed in 0..25 {
            let cfg = AggregationConfig {
                seed,
                ..config.clone()
            };
            let res = ebs_aggregate(&proxy, &mut |r| truth[r], &cfg);
            if (res.estimate - mu).abs() <= cfg.error_target {
                hits += 1;
            }
        }
        assert!(hits >= 20, "coverage too low: {hits}/25");
    }

    #[test]
    fn tiny_dataset_exhausts_and_returns_exact_mean() {
        let truth: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let proxy = vec![0.0; 40];
        let config = AggregationConfig {
            error_target: 1e-6,
            ..Default::default()
        };
        let res = ebs_aggregate(&proxy, &mut |r| truth[r], &config);
        assert!(res.exhausted);
        assert_eq!(res.samples, 40);
        assert!((res.estimate - true_mean(&truth)).abs() < 1e-12);
        assert_eq!(res.ci_half_width, 0.0);
    }

    #[test]
    fn constant_oracle_stops_at_min_samples() {
        let truth = vec![2.5f64; 10_000];
        let proxy = vec![0.0f64; 10_000];
        let config = AggregationConfig {
            error_target: 0.01,
            ..Default::default()
        };
        let res = ebs_aggregate(&proxy, &mut |r| truth[r], &config);
        // Zero variance → stops at the first check after min_samples... but
        // the Bernstein range term needs range > 0; with zero range clamp it
        // still shrinks as 1/t, so samples stay modest.
        assert!(
            res.samples <= 1_000,
            "constant data should stop early: {}",
            res.samples
        );
        assert!((res.estimate - 2.5).abs() < 1e-9);
    }

    #[test]
    fn perfect_proxy_drives_variance_to_zero() {
        let truth: Vec<f64> = (0..20_000).map(|i| ((i * 37) % 11) as f64).collect();
        let proxy = truth.clone();
        let config = AggregationConfig {
            error_target: 0.02,
            ..Default::default()
        };
        let res = ebs_aggregate(&proxy, &mut |r| truth[r], &config);
        assert!(res.rho_squared > 0.999);
        assert!((res.control_coefficient - 1.0).abs() < 0.05);
        assert!(
            res.samples <= 1000,
            "perfect proxy should stop almost immediately"
        );
        assert!((res.estimate - true_mean(&truth)).abs() < 0.02);
    }

    #[test]
    fn clt_stopping_scales_with_residual_variance() {
        // Under CLT stopping, sample count ≈ (z·σ_z/ε)² with
        // σ_z² = σ²(1 − ρ²): a proxy with ρ² = 0.9 should need roughly an
        // order of magnitude fewer samples than no proxy.
        let (truth, proxy) = population(50_000, 0.95, 31);
        let cfg = AggregationConfig {
            error_target: 0.03,
            stopping: StoppingRule::Clt,
            seed: 5,
            ..Default::default()
        };
        let with_proxy = ebs_aggregate(&proxy, &mut |r| truth[r], &cfg);
        let none = vec![0.0f64; truth.len()];
        let without = ebs_aggregate(&none, &mut |r| truth[r], &cfg);
        assert!(
            with_proxy.samples * 3 <= without.samples,
            "CLT: proxy {} vs none {}",
            with_proxy.samples,
            without.samples
        );
        // And the estimate is still accurate.
        let mu = true_mean(&truth);
        assert!((with_proxy.estimate - mu).abs() <= 0.05);
        assert!((without.estimate - mu).abs() <= 0.05);
    }

    #[test]
    fn clt_coverage_over_repeated_runs() {
        let (truth, proxy) = population(20_000, 0.7, 33);
        let mu = true_mean(&truth);
        let mut hits = 0;
        for seed in 0..25 {
            let cfg = AggregationConfig {
                error_target: 0.06,
                stopping: StoppingRule::Clt,
                seed,
                ..Default::default()
            };
            let res = ebs_aggregate(&proxy, &mut |r| truth[r], &cfg);
            if (res.estimate - mu).abs() <= 0.06 {
                hits += 1;
            }
        }
        // CLT intervals are approximate; expect near-nominal coverage.
        assert!(hits >= 20, "CLT coverage too low: {hits}/25");
    }

    #[test]
    fn fpc_reduces_samples_on_small_populations() {
        // On a 1,000-record population where the target forces sampling a
        // large fraction, the finite-population correction stops earlier —
        // and the estimate stays accurate.
        let (truth, _) = population(1_000, 0.0, 41);
        let proxy = vec![0.0f64; truth.len()];
        let mu = true_mean(&truth);
        let base = AggregationConfig {
            error_target: 0.12,
            stopping: StoppingRule::Clt,
            seed: 3,
            ..Default::default()
        };
        let without = ebs_aggregate(&proxy, &mut |r| truth[r], &base);
        let with_fpc = ebs_aggregate(
            &proxy,
            &mut |r| truth[r],
            &AggregationConfig {
                finite_population_correction: true,
                ..base
            },
        );
        assert!(
            with_fpc.samples < without.samples,
            "FPC should stop earlier: {} vs {}",
            with_fpc.samples,
            without.samples
        );
        assert!(
            (with_fpc.estimate - mu).abs() <= 0.12,
            "estimate {}",
            with_fpc.estimate
        );
    }

    #[test]
    fn fpc_coverage_is_preserved() {
        let (truth, proxy) = population(2_000, 0.5, 43);
        let mu = true_mean(&truth);
        let mut hits = 0;
        for seed in 0..25 {
            let cfg = AggregationConfig {
                error_target: 0.1,
                stopping: StoppingRule::Clt,
                finite_population_correction: true,
                seed,
                ..Default::default()
            };
            let res = ebs_aggregate(&proxy, &mut |r| truth[r], &cfg);
            if (res.estimate - mu).abs() <= 0.1 {
                hits += 1;
            }
        }
        assert!(hits >= 20, "FPC coverage too low: {hits}/25");
    }

    #[test]
    fn direct_aggregate_is_proxy_mean() {
        assert!((direct_aggregate(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (truth, proxy) = population(10_000, 0.6, 9);
        let config = AggregationConfig {
            error_target: 0.08,
            seed: 11,
            ..Default::default()
        };
        let a = ebs_aggregate(&proxy, &mut |r| truth[r], &config);
        let b = ebs_aggregate(&proxy, &mut |r| truth[r], &config);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn nan_proxies_do_not_force_exhaustion() {
        // Regression: a single NaN proxy made c (and every half-width) NaN,
        // so the sampler silently labeled all N records before stopping.
        let (truth, mut proxy) = population(20_000, 0.9, 51);
        proxy[3] = f64::NAN;
        proxy[100] = f64::INFINITY;
        let config = AggregationConfig {
            error_target: 0.05,
            seed: 13,
            ..Default::default()
        };
        let res = ebs_aggregate(&proxy, &mut |r| truth[r], &config);
        assert_eq!(res.telemetry.sanitized_inputs, 2);
        assert!(!res.exhausted, "NaN proxies must not label everything");
        assert!(res.samples < 20_000);
        assert!((res.estimate - true_mean(&truth)).abs() <= 0.1);
    }

    #[test]
    fn telemetry_mirrors_samples_and_certifies() {
        let (truth, proxy) = population(10_000, 0.8, 53);
        let config = AggregationConfig {
            error_target: 0.06,
            seed: 17,
            ..Default::default()
        };
        let res = ebs_aggregate(&proxy, &mut |r| truth[r], &config);
        assert_eq!(res.telemetry.invocations, res.samples);
        assert_eq!(res.telemetry.algorithm, "ebs_aggregate");
        assert!(res.telemetry.certified);
        assert!(res.telemetry.wall_seconds >= 0.0);
    }
}
