//! SUPG recall-target selection (Kang et al., PVLDB 2020; used in §6.3).
//!
//! Query: "return a set of records containing at least `recall_target` of
//! all records matching the predicate, with probability `confidence`, using
//! at most `budget` target-labeler invocations."
//!
//! The algorithm (the importance-sampling recall-target variant):
//!
//! 1. Normalize proxy scores to `[0, 1]` and draw `budget` samples with
//!    probability ∝ `√proxy` (defensively mixed with uniform), *with*
//!    replacement, recording importance weights `w_i = 1/(m·q_i)`.
//! 2. Invoke the oracle on the sampled records. The importance-weighted
//!    positive mass above a candidate threshold `τ`, divided by the total
//!    weighted positive mass, estimates `recall(τ)`.
//! 3. Pick the largest `τ` whose **lower confidence bound** on recall (a
//!    delta-method normal bound on the ratio estimator) still clears the
//!    target — larger `τ` means a smaller returned set and fewer false
//!    positives.
//! 4. Return `{records with proxy ≥ τ} ∪ {sampled true positives}`.
//!
//! Quality is measured by the false-positive rate of the returned set
//! (Figure 5: lower is better); the recall target itself is met with high
//! probability by construction.

use crate::sanitize::{sanitize_proxies, UnitScale};
use crate::stats::normal_inverse_cdf;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::HashSet;
use tasti_obs::{QueryTelemetry, Stopwatch};

/// Configuration for a SUPG recall-target query.
///
/// # Degenerate-input policy
///
/// Proxy scores are sanitized on entry per the crate-wide policy
/// ([`crate::sanitize`]): `NaN` and `−∞` map to the minimum finite score,
/// `+∞` to the maximum, and an all-non-finite vector degrades to the
/// uniform no-proxy baseline. The number of replaced scores is reported in
/// the result's [`QueryTelemetry::sanitized_inputs`]. The recall guarantee
/// is unaffected — it holds for *any* fixed proxy ordering; a polluted
/// proxy only costs false positives.
#[derive(Debug, Clone)]
pub struct SupgConfig {
    /// Recall target γ (e.g. 0.9).
    pub recall_target: f64,
    /// Success probability (e.g. 0.95).
    pub confidence: f64,
    /// Hard target-labeler budget (distinct sampled records may be fewer
    /// since sampling is with replacement).
    pub budget: usize,
    /// Fraction of uniform mixing in the importance distribution
    /// (defensive, keeps weights bounded).
    pub uniform_mix: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SupgConfig {
    fn default() -> Self {
        Self {
            recall_target: 0.9,
            confidence: 0.95,
            budget: 500,
            uniform_mix: 0.1,
            seed: 1,
        }
    }
}

/// Result of a SUPG query.
#[derive(Debug, Clone, Serialize)]
pub struct SupgResult {
    /// Indices of the returned records.
    pub returned: Vec<usize>,
    /// Proxy-score threshold selected.
    pub threshold: f64,
    /// Distinct target-labeler invocations consumed (≤ budget). Mirrors
    /// `telemetry.invocations` (kept for backward compatibility).
    pub oracle_calls: u64,
    /// Importance-weighted recall estimate at the threshold actually used —
    /// including the conservative τ = 0 fallback. `NaN` when no positive
    /// was sampled (there is nothing to estimate; check
    /// `telemetry.certified`).
    pub estimated_recall: f64,
    /// Uniform execution record. `certified` is `false` when no threshold
    /// cleared the recall lower confidence bound and the conservative
    /// return-everything fallback (τ = 0) was used.
    pub telemetry: QueryTelemetry,
}

/// Runs the SUPG recall-target selection algorithm.
///
/// `oracle(record)` must return whether the record matches the predicate;
/// it is invoked at most `config.budget` times (distinct records).
///
/// Thin adapter over [`supg_recall_target_batch`]: the batch core requests
/// the distinct sampled records in first-occurrence order, so both entry
/// points consume identical invocation counts.
pub fn supg_recall_target(
    proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> bool,
    config: &SupgConfig,
) -> SupgResult {
    supg_recall_target_batch(
        proxy,
        &mut |recs| recs.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

/// Batched SUPG recall-target selection: all `budget` importance draws are
/// made up front (the draw set is label-independent), and the distinct
/// sampled records are labeled through `batch_oracle` in **one** call — a
/// batched target labeler answers the whole stage-2 sample with a single
/// inner invocation.
///
/// `batch_oracle(records)` must return one predicate answer per requested
/// record, in order. Requested records are distinct and listed in
/// first-occurrence draw order, so on a cold cache the invocation meter
/// advances exactly as the sequential [`supg_recall_target`] loop would.
pub fn supg_recall_target_batch(
    proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Vec<bool>,
    config: &SupgConfig,
) -> SupgResult {
    let sw = Stopwatch::start();
    let mut telemetry = QueryTelemetry::new("supg_recall_target");
    let n = proxy.len();
    assert!(n > 0, "cannot select over an empty dataset");
    assert!(
        config.recall_target > 0.0 && config.recall_target < 1.0,
        "recall target must be in (0, 1)"
    );

    // Sanitize non-finite proxies, then normalize to [0, 1] (overflow-safe).
    let sanitized = sanitize_proxies(proxy);
    telemetry.sanitized_inputs = sanitized.replaced;
    let scale = UnitScale::new(&sanitized.scores);
    let norm: &[f64] = &scale.norm;

    // Importance distribution q ∝ (1−u)·√p + u·(1/n)-mass.
    let u = config.uniform_mix.clamp(0.0, 1.0);
    let sqrt_total: f64 = norm.iter().map(|&p| p.sqrt()).sum();
    let q: Vec<f64> = if sqrt_total > 1e-12 {
        norm.iter()
            .map(|&p| (1.0 - u) * p.sqrt() / sqrt_total + u / n as f64)
            .collect()
    } else {
        vec![1.0 / n as f64; n]
    };

    // Cumulative distribution for sampling with replacement.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &qi in &q {
        acc += qi;
        cdf.push(acc);
    }
    let total = acc;

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let m = config.budget.min(n).max(1);
    // The draw set is label-independent: make every importance draw first,
    // then label the distinct records (first-occurrence order) in one batch
    // oracle call. Distinct records are capped at the budget by m ≤ budget.
    let sampled: Vec<usize> = (0..m)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..total);
            cdf.partition_point(|&c| c < x).min(n - 1)
        })
        .collect();
    let mut distinct: Vec<usize> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for &rec in &sampled {
        if seen.insert(rec) {
            distinct.push(rec);
        }
    }
    let answers = batch_oracle(&distinct);
    assert_eq!(
        answers.len(),
        distinct.len(),
        "batch oracle must return one answer per record"
    );
    let truth: std::collections::HashMap<usize, bool> =
        distinct.iter().copied().zip(answers).collect();
    // Sampled draws: (record, weight, is_positive).
    let draws: Vec<(usize, f64, bool)> = sampled
        .iter()
        .map(|&rec| (rec, 1.0 / (m as f64 * q[rec]), truth[&rec]))
        .collect();
    let oracle_calls = distinct.len() as u64;

    // Candidate thresholds: the distinct proxy values of sampled positives
    // (descending). recall(τ) is a step function changing only there.
    // total_cmp is a total order, so the sort cannot panic even if a
    // non-finite score ever slipped past sanitization.
    let mut pos_thresholds: Vec<f64> = draws.iter().filter(|d| d.2).map(|d| norm[d.0]).collect();
    pos_thresholds.sort_by(|a, b| b.total_cmp(a));
    pos_thresholds.dedup();

    let z = normal_inverse_cdf(config.confidence);
    let total_pos_mass: f64 = draws.iter().filter(|d| d.2).map(|d| d.1).sum();

    let mut chosen_tau = 0.0f64;
    let mut certified = false;
    if total_pos_mass > 0.0 {
        for &tau in &pos_thresholds {
            // Ratio estimator R = A/B with per-draw contributions
            // a_i = w_i·1[pos ∧ p ≥ τ], b_i = w_i·1[pos].
            let mut a_sum = 0.0;
            let mut b_sum = 0.0;
            let mut a2 = 0.0;
            let mut b2 = 0.0;
            let mut ab = 0.0;
            for &(rec, w, pos) in &draws {
                let b = if pos { w } else { 0.0 };
                let a = if pos && norm[rec] >= tau { w } else { 0.0 };
                a_sum += a;
                b_sum += b;
                a2 += a * a;
                b2 += b * b;
                ab += a * b;
            }
            let mf = m as f64;
            let r = a_sum / b_sum;
            // Delta-method variance of the ratio of means.
            let mean_a = a_sum / mf;
            let mean_b = b_sum / mf;
            let var_a = (a2 / mf - mean_a * mean_a).max(0.0);
            let var_b = (b2 / mf - mean_b * mean_b).max(0.0);
            let cov_ab = ab / mf - mean_a * mean_b;
            let var_r = (var_a - 2.0 * r * cov_ab + r * r * var_b).max(0.0)
                / (mf * mean_b * mean_b).max(1e-300);
            let lcb = r - z * var_r.sqrt();
            if lcb >= config.recall_target {
                chosen_tau = tau;
                certified = true;
                break; // thresholds descend; the first (largest) winner is tightest
            }
        }
    }

    // Honest recall estimate at the τ actually used — certified or the
    // conservative τ = 0 fallback. NaN when no positive was sampled: there
    // is nothing to estimate, and pretending 1.0 would hide the fallback.
    let estimated_recall = if total_pos_mass > 0.0 {
        let above: f64 = draws
            .iter()
            .filter(|d| d.2 && norm[d.0] >= chosen_tau)
            .map(|d| d.1)
            .sum();
        above / total_pos_mass
    } else {
        f64::NAN
    };

    // Returned set: everything at/above τ plus all sampled positives.
    let mut returned: Vec<usize> = (0..n).filter(|&i| norm[i] >= chosen_tau).collect();
    let set: HashSet<usize> = returned.iter().copied().collect();
    for &(rec, _, pos) in &draws {
        if pos && !set.contains(&rec) {
            returned.push(rec);
        }
    }
    returned.sort_unstable();
    returned.dedup();

    telemetry.invocations = oracle_calls;
    telemetry.certified = certified;
    telemetry.wall_seconds = sw.elapsed_seconds();
    SupgResult {
        returned,
        threshold: scale.denormalize(chosen_tau),
        oracle_calls,
        estimated_recall,
        telemetry,
    }
}

/// Result of a SUPG precision-target query.
#[derive(Debug, Clone, Serialize)]
pub struct SupgPrecisionResult {
    /// Indices of the returned records.
    pub returned: Vec<usize>,
    /// Proxy-score threshold selected.
    pub threshold: f64,
    /// Distinct target-labeler invocations consumed (≤ budget). Mirrors
    /// `telemetry.invocations` (kept for backward compatibility).
    pub oracle_calls: u64,
    /// Importance-weighted precision estimate at the threshold actually
    /// used. `NaN` when no sampled record lies at/above it (an empty
    /// returned set has no precision to report; check
    /// `telemetry.certified`).
    pub estimated_precision: f64,
    /// Uniform execution record. `certified` is `false` when no threshold
    /// cleared the precision lower confidence bound and the conservative
    /// empty-set fallback was used.
    pub telemetry: QueryTelemetry,
}

/// Configuration for a SUPG *precision*-target query.
#[derive(Debug, Clone)]
pub struct SupgPrecisionConfig {
    /// Precision target (e.g. 0.9): at least this fraction of the returned
    /// set matches the predicate, with probability `confidence`.
    pub precision_target: f64,
    /// Success probability.
    pub confidence: f64,
    /// Hard oracle budget.
    pub budget: usize,
    /// Uniform mixing fraction in the importance distribution.
    pub uniform_mix: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SupgPrecisionConfig {
    fn default() -> Self {
        Self {
            precision_target: 0.9,
            confidence: 0.95,
            budget: 500,
            uniform_mix: 0.1,
            seed: 1,
        }
    }
}

/// Runs the SUPG precision-target selection algorithm (the other guarantee
/// Kang et al. 2020 supports; the paper's Figure 5 evaluates the recall
/// variant).
///
/// Picks the *smallest* proxy threshold whose importance-weighted precision
/// estimate still clears the target at the configured confidence — smaller
/// thresholds mean larger returned sets, i.e. more recall at fixed
/// precision. Sampled true negatives above the threshold are excluded from
/// the returned set (their labels are already paid for).
pub fn supg_precision_target(
    proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> bool,
    config: &SupgPrecisionConfig,
) -> SupgPrecisionResult {
    supg_precision_target_batch(
        proxy,
        &mut |recs| recs.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

/// Batched SUPG precision-target selection — the precision-side analogue of
/// [`supg_recall_target_batch`]: draws are made up front and the distinct
/// sampled records are labeled in one `batch_oracle` call, meter-identical
/// to the sequential [`supg_precision_target`] loop.
pub fn supg_precision_target_batch(
    proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Vec<bool>,
    config: &SupgPrecisionConfig,
) -> SupgPrecisionResult {
    let sw = Stopwatch::start();
    let mut telemetry = QueryTelemetry::new("supg_precision_target");
    let n = proxy.len();
    assert!(n > 0, "cannot select over an empty dataset");
    assert!(
        config.precision_target > 0.0 && config.precision_target < 1.0,
        "precision target must be in (0, 1)"
    );
    // Same degenerate-input policy as the recall variant (see [`SupgConfig`]).
    let sanitized = sanitize_proxies(proxy);
    telemetry.sanitized_inputs = sanitized.replaced;
    let scale = UnitScale::new(&sanitized.scores);
    let norm: &[f64] = &scale.norm;

    // Importance distribution biased toward *high*-proxy records (where the
    // precision boundary lives), defensively mixed with uniform.
    let u = config.uniform_mix.clamp(0.0, 1.0);
    let mass: f64 = norm.iter().map(|&p| p.sqrt()).sum();
    let q: Vec<f64> = if mass > 1e-12 {
        norm.iter()
            .map(|&p| (1.0 - u) * p.sqrt() / mass + u / n as f64)
            .collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &qi in &q {
        acc += qi;
        cdf.push(acc);
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let m = config.budget.min(n).max(1);
    // Label-independent draw set: draw first, label the distinct records in
    // one batch oracle call (first-occurrence order — meter-identical to
    // the sequential loop).
    let sampled: Vec<usize> = (0..m)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..acc);
            cdf.partition_point(|&c| c < x).min(n - 1)
        })
        .collect();
    let mut distinct: Vec<usize> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for &rec in &sampled {
        if seen.insert(rec) {
            distinct.push(rec);
        }
    }
    let answers = batch_oracle(&distinct);
    assert_eq!(
        answers.len(),
        distinct.len(),
        "batch oracle must return one answer per record"
    );
    let truth: std::collections::HashMap<usize, bool> =
        distinct.iter().copied().zip(answers).collect();
    let draws: Vec<(usize, f64, bool)> = sampled
        .iter()
        .map(|&rec| (rec, 1.0 / (m as f64 * q[rec]), truth[&rec]))
        .collect();
    let oracle_calls = distinct.len() as u64;

    // Candidate thresholds: distinct sampled proxy values, ascending —
    // precision(τ) is non-decreasing in τ for well-ordered proxies, and we
    // want the smallest certifiable τ.
    let mut thresholds: Vec<f64> = draws.iter().map(|d| norm[d.0]).collect();
    thresholds.sort_by(|a, b| a.total_cmp(b)); // total order: NaN-proof
    thresholds.dedup();

    let z = normal_inverse_cdf(config.confidence);
    let mut chosen_tau = 1.0f64 + 1e-9; // default: empty set (vacuous precision)
    let mut certified = false;
    for &tau in &thresholds {
        // Precision ratio estimator over records at/above τ.
        let mut a_sum = 0.0;
        let mut b_sum = 0.0;
        let mut a2 = 0.0;
        let mut b2 = 0.0;
        let mut ab = 0.0;
        for &(rec, w, pos) in &draws {
            let above = norm[rec] >= tau;
            let b = if above { w } else { 0.0 };
            let a = if above && pos { w } else { 0.0 };
            a_sum += a;
            b_sum += b;
            a2 += a * a;
            b2 += b * b;
            ab += a * b;
        }
        if b_sum <= 0.0 {
            continue;
        }
        let mf = m as f64;
        let r = a_sum / b_sum;
        let mean_a = a_sum / mf;
        let mean_b = b_sum / mf;
        let var_a = (a2 / mf - mean_a * mean_a).max(0.0);
        let var_b = (b2 / mf - mean_b * mean_b).max(0.0);
        let cov_ab = ab / mf - mean_a * mean_b;
        let var_r = (var_a - 2.0 * r * cov_ab + r * r * var_b).max(0.0)
            / (mf * mean_b * mean_b).max(1e-300);
        let lcb = r - z * var_r.sqrt();
        if lcb >= config.precision_target {
            chosen_tau = tau;
            certified = true;
            break; // ascending: first certifiable τ is the smallest
        }
    }

    // Returned set: records above τ, minus sampled known negatives, plus
    // sampled positives (their labels are free at this point).
    let known_neg: HashSet<usize> = draws.iter().filter(|d| !d.2).map(|d| d.0).collect();
    let known_pos: HashSet<usize> = draws.iter().filter(|d| d.2).map(|d| d.0).collect();
    let mut returned: Vec<usize> = (0..n)
        .filter(|&i| (norm[i] >= chosen_tau && !known_neg.contains(&i)) || known_pos.contains(&i))
        .collect();
    returned.sort_unstable();
    returned.dedup();

    // Estimated precision at the chosen threshold (for diagnostics).
    let est_precision = {
        let mut a = 0.0;
        let mut b = 0.0;
        for &(rec, w, pos) in &draws {
            if norm[rec] >= chosen_tau {
                b += w;
                if pos {
                    a += w;
                }
            }
        }
        if b > 0.0 {
            a / b
        } else {
            // No sampled mass at/above τ (the empty-set fallback): there is
            // no precision to estimate. NaN, not a fabricated 1.0.
            f64::NAN
        }
    };

    telemetry.invocations = oracle_calls;
    telemetry.certified = certified;
    telemetry.wall_seconds = sw.elapsed_seconds();
    SupgPrecisionResult {
        returned,
        threshold: scale.denormalize(chosen_tau),
        oracle_calls,
        estimated_precision: est_precision,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Population where proxy ranks positives with the given AUC-ish quality.
    fn population(n: usize, pos_rate: f64, quality: f64, seed: u64) -> (Vec<bool>, Vec<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut truth = Vec::with_capacity(n);
        let mut proxy = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = rng.gen::<f64>() < pos_rate;
            let signal = if pos { 1.0 } else { 0.0 };
            let p = quality * signal + (1.0 - quality) * rng.gen::<f64>();
            truth.push(pos);
            proxy.push(p);
        }
        (truth, proxy)
    }

    fn recall_of(returned: &[usize], truth: &[bool]) -> f64 {
        let pos = truth.iter().filter(|&&t| t).count();
        if pos == 0 {
            return 1.0;
        }
        let hit = returned.iter().filter(|&&i| truth[i]).count();
        hit as f64 / pos as f64
    }

    fn fpr_of(returned: &[usize], truth: &[bool]) -> f64 {
        let neg = truth.iter().filter(|&&t| !t).count();
        if neg == 0 {
            return 0.0;
        }
        let fp = returned.iter().filter(|&&i| !truth[i]).count();
        fp as f64 / neg as f64
    }

    #[test]
    fn recall_target_is_met_with_high_probability() {
        let (truth, proxy) = population(20_000, 0.05, 0.9, 3);
        let mut hits = 0;
        for seed in 0..20 {
            let cfg = SupgConfig {
                budget: 800,
                seed,
                ..Default::default()
            };
            let mut t = truth.clone();
            let res = supg_recall_target(&proxy, &mut |r| t[r], &cfg);
            // keep borrowck happy: truth untouched
            t[0] = truth[0];
            if recall_of(&res.returned, &truth) >= cfg.recall_target {
                hits += 1;
            }
        }
        assert!(hits >= 17, "recall target met only {hits}/20 times");
    }

    #[test]
    fn better_proxy_gives_lower_fpr() {
        let (truth, good) = population(20_000, 0.05, 0.95, 5);
        let (_, bad) = population(20_000, 0.05, 0.3, 5);
        let cfg = SupgConfig {
            budget: 800,
            seed: 2,
            ..Default::default()
        };
        let res_good = supg_recall_target(&good, &mut |r| truth[r], &cfg);
        let res_bad = supg_recall_target(&bad, &mut |r| truth[r], &cfg);
        let fpr_good = fpr_of(&res_good.returned, &truth);
        let fpr_bad = fpr_of(&res_bad.returned, &truth);
        assert!(
            fpr_good < fpr_bad * 0.5,
            "good proxy FPR {fpr_good} should beat bad proxy FPR {fpr_bad}"
        );
    }

    #[test]
    fn budget_is_respected() {
        let (truth, proxy) = population(10_000, 0.1, 0.8, 7);
        let cfg = SupgConfig {
            budget: 300,
            seed: 4,
            ..Default::default()
        };
        let mut calls = 0u64;
        let res = supg_recall_target(
            &proxy,
            &mut |r| {
                calls += 1;
                truth[r]
            },
            &cfg,
        );
        assert!(calls <= 300, "oracle called {calls} > budget");
        assert_eq!(res.oracle_calls, calls);
    }

    #[test]
    fn sampled_positives_are_always_returned() {
        let (truth, proxy) = population(5_000, 0.05, 0.7, 9);
        let cfg = SupgConfig {
            budget: 400,
            seed: 6,
            ..Default::default()
        };
        let mut sampled_pos: Vec<usize> = Vec::new();
        let res = supg_recall_target(
            &proxy,
            &mut |r| {
                if truth[r] {
                    sampled_pos.push(r);
                }
                truth[r]
            },
            &cfg,
        );
        let set: HashSet<usize> = res.returned.iter().copied().collect();
        for p in sampled_pos {
            assert!(
                set.contains(&p),
                "sampled positive {p} missing from returned set"
            );
        }
    }

    #[test]
    fn no_positives_returns_everything_conservatively() {
        let truth = vec![false; 1000];
        let proxy: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let cfg = SupgConfig {
            budget: 100,
            seed: 8,
            ..Default::default()
        };
        let res = supg_recall_target(&proxy, &mut |r| truth[r], &cfg);
        // With zero sampled positive mass no threshold is certifiable; the
        // conservative answer (τ = 0 on normalized scores) returns all.
        assert_eq!(res.returned.len(), 1000);
        // Vacuous recall is fine: there is nothing to recall.
        assert_eq!(recall_of(&res.returned, &truth), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (truth, proxy) = population(8_000, 0.08, 0.8, 11);
        let cfg = SupgConfig {
            budget: 500,
            seed: 13,
            ..Default::default()
        };
        let a = supg_recall_target(&proxy, &mut |r| truth[r], &cfg);
        let b = supg_recall_target(&proxy, &mut |r| truth[r], &cfg);
        assert_eq!(a.returned, b.returned);
        assert_eq!(a.threshold, b.threshold);
    }

    fn precision_of(returned: &[usize], truth: &[bool]) -> f64 {
        if returned.is_empty() {
            return 1.0;
        }
        let tp = returned.iter().filter(|&&i| truth[i]).count();
        tp as f64 / returned.len() as f64
    }

    #[test]
    fn precision_target_is_met_with_high_probability() {
        let (truth, proxy) = population(20_000, 0.1, 0.9, 21);
        let mut hits = 0;
        for seed in 0..20 {
            let cfg = SupgPrecisionConfig {
                budget: 800,
                seed,
                ..Default::default()
            };
            let res = supg_precision_target(&proxy, &mut |r| truth[r], &cfg);
            if precision_of(&res.returned, &truth) >= cfg.precision_target {
                hits += 1;
            }
        }
        assert!(hits >= 17, "precision target met only {hits}/20 times");
    }

    #[test]
    fn precision_variant_returns_nonempty_set_for_good_proxies() {
        let (truth, proxy) = population(20_000, 0.1, 0.95, 23);
        let cfg = SupgPrecisionConfig {
            budget: 800,
            seed: 3,
            ..Default::default()
        };
        let res = supg_precision_target(&proxy, &mut |r| truth[r], &cfg);
        assert!(
            res.returned.len() > 100,
            "good proxies should certify a broad set"
        );
        // Recall should be substantial too (smallest certifiable τ).
        let total_pos = truth.iter().filter(|&&t| t).count();
        let tp = res.returned.iter().filter(|&&i| truth[i]).count();
        assert!(
            tp as f64 / total_pos as f64 > 0.5,
            "precision-target set should capture most positives"
        );
    }

    #[test]
    fn precision_variant_hopeless_proxy_returns_conservative_set() {
        // All-negative population: no threshold is certifiable; the returned
        // set must stay (near-)empty rather than blow the precision target.
        let truth = vec![false; 5_000];
        let proxy: Vec<f64> = (0..5_000).map(|i| (i % 11) as f64).collect();
        let cfg = SupgPrecisionConfig {
            budget: 300,
            seed: 5,
            ..Default::default()
        };
        let res = supg_precision_target(&proxy, &mut |r| truth[r], &cfg);
        assert!(
            res.returned.is_empty(),
            "nothing is certifiable: {}",
            res.returned.len()
        );
    }

    #[test]
    fn precision_variant_respects_budget_and_determinism() {
        let (truth, proxy) = population(8_000, 0.1, 0.8, 25);
        let cfg = SupgPrecisionConfig {
            budget: 200,
            seed: 7,
            ..Default::default()
        };
        let mut calls = 0u64;
        let a = supg_precision_target(
            &proxy,
            &mut |r| {
                calls += 1;
                truth[r]
            },
            &cfg,
        );
        assert!(calls <= 200);
        let b = supg_precision_target(&proxy, &mut |r| truth[r], &cfg);
        assert_eq!(a.returned, b.returned);
    }

    #[test]
    fn constant_proxy_still_meets_recall() {
        let (truth, _) = population(5_000, 0.1, 0.9, 15);
        let proxy = vec![0.5; 5_000];
        let cfg = SupgConfig {
            budget: 500,
            seed: 17,
            ..Default::default()
        };
        let res = supg_recall_target(&proxy, &mut |r| truth[r], &cfg);
        assert!(recall_of(&res.returned, &truth) >= 0.9);
    }

    #[test]
    fn nan_proxies_are_sanitized_not_fatal() {
        // Regression: partial_cmp().unwrap() on the threshold sort used to
        // panic on the first NaN proxy score.
        let (truth, mut proxy) = population(5_000, 0.1, 0.9, 31);
        proxy[7] = f64::NAN;
        proxy[19] = f64::INFINITY;
        proxy[23] = f64::NEG_INFINITY;
        let cfg = SupgConfig {
            budget: 400,
            seed: 19,
            ..Default::default()
        };
        let res = supg_recall_target(&proxy, &mut |r| truth[r], &cfg);
        assert_eq!(res.telemetry.sanitized_inputs, 3);
        assert!(res.threshold.is_finite());
        assert!(recall_of(&res.returned, &truth) >= 0.9);

        let pcfg = SupgPrecisionConfig {
            budget: 400,
            seed: 19,
            ..Default::default()
        };
        let pres = supg_precision_target(&proxy, &mut |r| truth[r], &pcfg);
        assert_eq!(pres.telemetry.sanitized_inputs, 3);
        assert!(pres.threshold.is_finite());
    }

    #[test]
    fn uncertifiable_recall_query_is_flagged_not_inflated() {
        // All-negative population: no positive mass, no certifiable τ. The
        // old code reported estimated_recall = 1.0 here; now the fallback is
        // explicit: certified = false and the estimate is NaN.
        let truth = vec![false; 1000];
        let proxy: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let cfg = SupgConfig {
            budget: 100,
            seed: 8,
            ..Default::default()
        };
        let res = supg_recall_target(&proxy, &mut |r| truth[r], &cfg);
        assert!(!res.telemetry.certified);
        assert!(res.estimated_recall.is_nan());
    }

    #[test]
    fn uncertifiable_precision_query_is_flagged_not_inflated() {
        let truth = vec![false; 5_000];
        let proxy: Vec<f64> = (0..5_000).map(|i| (i % 11) as f64).collect();
        let cfg = SupgPrecisionConfig {
            budget: 300,
            seed: 5,
            ..Default::default()
        };
        let res = supg_precision_target(&proxy, &mut |r| truth[r], &cfg);
        assert!(!res.telemetry.certified);
        assert!(res.estimated_precision.is_nan());
        assert!(res.returned.is_empty());
    }

    #[test]
    fn certified_queries_report_certified_true_and_oracle_calls_match() {
        let (truth, proxy) = population(20_000, 0.1, 0.95, 41);
        let cfg = SupgConfig {
            budget: 800,
            seed: 23,
            ..Default::default()
        };
        let mut distinct = HashSet::new();
        let res = supg_recall_target(
            &proxy,
            &mut |r| {
                distinct.insert(r);
                truth[r]
            },
            &cfg,
        );
        assert!(res.telemetry.certified);
        assert_eq!(res.telemetry.invocations, distinct.len() as u64);
        assert_eq!(res.oracle_calls, res.telemetry.invocations);
        assert_eq!(res.telemetry.sanitized_inputs, 0);
        assert!((0.0..=1.0 + 1e-9).contains(&res.estimated_recall));
    }
}
