//! Graceful degradation: fault-aware `try_*` entry points for every query
//! algorithm.
//!
//! The classic entry points take infallible oracle closures — appropriate
//! when the oracle is a replayed ground-truth cache, but a live target
//! labeler can fail mid-query. The `try_*` variants here accept a *fallible*
//! batch oracle (`FnMut(&[usize]) -> Result<Vec<T>, LabelerFault>`) and, on
//! the first unrecoverable fault, abandon the oracle-backed plan and return
//! a typed **degraded** answer instead of panicking:
//!
//! * the best proxy-only (or partial) result the algorithm can still
//!   construct,
//! * `certified: false` and `degraded: true` in the telemetry,
//! * the causing [`LabelerFault`], and
//! * how many labels completed before the fault.
//!
//! Implementation: each `try_*` wraps the fallible oracle in a gate that
//! feeds the *unmodified* infallible core. While the oracle succeeds the
//! gate is transparent — with fault injection disabled, `try_*` is
//! bit-identical and meter-identical to the classic entry point (asserted
//! in `tests/telemetry_audit.rs`). After the first fault the gate stops
//! calling the oracle and answers neutral values, letting the core run to
//! completion cheaply; the wrapper then rewrites the result into its
//! documented degraded form.

use crate::agg::{direct_aggregate, ebs_aggregate_batch, AggregationConfig, AggregationResult};
use crate::agg_pred::{predicate_aggregate_batch, PredicateAggConfig, PredicateAggResult};
use crate::limit::{limit_query_batch, LimitResult};
use crate::sanitize::sanitize_proxies;
use crate::supg::{
    supg_precision_target_batch, supg_recall_target_batch, SupgConfig, SupgPrecisionConfig,
    SupgPrecisionResult, SupgResult,
};
use tasti_labeler::LabelerFault;
use tasti_obs::QueryTelemetry;

/// How a fault-aware query ended.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome<R> {
    /// The oracle answered every request: `0` is exactly what the classic
    /// infallible entry point would have returned.
    Complete(R),
    /// The oracle faulted mid-query and the algorithm degraded.
    Degraded(DegradedResult<R>),
}

impl<R> QueryOutcome<R> {
    /// The result, complete or degraded.
    pub fn result(&self) -> &R {
        match self {
            QueryOutcome::Complete(r) => r,
            QueryOutcome::Degraded(d) => &d.result,
        }
    }

    /// Consumes the outcome, returning the result either way.
    pub fn into_result(self) -> R {
        match self {
            QueryOutcome::Complete(r) => r,
            QueryOutcome::Degraded(d) => d.result,
        }
    }

    /// True when the oracle faulted and the result is degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, QueryOutcome::Degraded(_))
    }

    /// The causing fault, when degraded.
    pub fn fault(&self) -> Option<&LabelerFault> {
        match self {
            QueryOutcome::Complete(_) => None,
            QueryOutcome::Degraded(d) => Some(&d.fault),
        }
    }
}

/// A typed partial answer: the algorithm's degraded result plus the fault
/// that caused the degradation.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedResult<R> {
    /// The degraded result. Its telemetry carries `certified: false`,
    /// `degraded: true`, `oracle_faults ≥ 1`, and `invocations` equal to
    /// [`labels_completed`](Self::labels_completed).
    pub result: R,
    /// The unrecoverable fault that stopped oracle-backed execution.
    pub fault: LabelerFault,
    /// Labels the oracle successfully returned before the fault (counting
    /// cache hits a metered front door may have served).
    pub labels_completed: u64,
}

/// Gates a fallible batch oracle for an infallible core: transparent until
/// the first fault, then answers `neutral` without touching the oracle.
struct FaultGate<'a, T> {
    oracle: &'a mut dyn FnMut(&[usize]) -> Result<Vec<T>, LabelerFault>,
    neutral: T,
    fault: Option<LabelerFault>,
    labels_completed: u64,
}

impl<'a, T: Clone> FaultGate<'a, T> {
    fn new(
        oracle: &'a mut dyn FnMut(&[usize]) -> Result<Vec<T>, LabelerFault>,
        neutral: T,
    ) -> Self {
        Self {
            oracle,
            neutral,
            fault: None,
            labels_completed: 0,
        }
    }

    fn call(&mut self, records: &[usize]) -> Vec<T> {
        if self.fault.is_none() {
            match (self.oracle)(records) {
                Ok(outs) => {
                    self.labels_completed += outs.len() as u64;
                    return outs;
                }
                Err(fault) => self.fault = Some(fault),
            }
        }
        vec![self.neutral.clone(); records.len()]
    }
}

/// Applies the shared degraded-telemetry contract.
fn mark_degraded(telemetry: &mut QueryTelemetry, labels_completed: u64) {
    telemetry.certified = false;
    telemetry.degraded = true;
    telemetry.oracle_faults = 1;
    // Post-fault neutral fills never reached the oracle; report what the
    // oracle actually answered.
    telemetry.invocations = labels_completed;
}

/// Fault-aware [`ebs_aggregate_batch`]: on an unrecoverable oracle fault,
/// degrades to the proxy-only mean ([`direct_aggregate`] over the sanitized
/// scores) with an infinite confidence interval.
pub fn try_ebs_aggregate_batch(
    proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Result<Vec<f64>, LabelerFault>,
    config: &AggregationConfig,
) -> QueryOutcome<AggregationResult> {
    let mut gate = FaultGate::new(batch_oracle, 0.0);
    let mut result = ebs_aggregate_batch(proxy, &mut |records| gate.call(records), config);
    match gate.fault {
        None => QueryOutcome::Complete(result),
        Some(fault) => {
            result.estimate = direct_aggregate(&sanitize_proxies(proxy).scores);
            result.ci_half_width = f64::INFINITY;
            result.exhausted = false;
            mark_degraded(&mut result.telemetry, gate.labels_completed);
            result.samples = result.telemetry.invocations;
            QueryOutcome::Degraded(DegradedResult {
                result,
                fault,
                labels_completed: gate.labels_completed,
            })
        }
    }
}

/// Fault-aware [`ebs_aggregate`](crate::agg::ebs_aggregate) (sequential
/// adapter over [`try_ebs_aggregate_batch`]).
pub fn try_ebs_aggregate(
    proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> Result<f64, LabelerFault>,
    config: &AggregationConfig,
) -> QueryOutcome<AggregationResult> {
    try_ebs_aggregate_batch(
        proxy,
        &mut |records| records.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

/// Fault-aware [`supg_recall_target_batch`]: on an unrecoverable oracle
/// fault, degrades to the conservative return-everything answer (τ = 0) —
/// trivially meeting any recall target, at the worst possible precision.
pub fn try_supg_recall_target_batch(
    proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Result<Vec<bool>, LabelerFault>,
    config: &SupgConfig,
) -> QueryOutcome<SupgResult> {
    let mut gate = FaultGate::new(batch_oracle, false);
    let mut result = supg_recall_target_batch(proxy, &mut |records| gate.call(records), config);
    match gate.fault {
        None => QueryOutcome::Complete(result),
        Some(fault) => {
            result.returned = (0..proxy.len()).collect();
            result.threshold = 0.0;
            // Returning everything has true recall 1 by construction; no
            // statistical estimate is implied (the answer is uncertified).
            result.estimated_recall = 1.0;
            mark_degraded(&mut result.telemetry, gate.labels_completed);
            result.oracle_calls = result.telemetry.invocations;
            QueryOutcome::Degraded(DegradedResult {
                result,
                fault,
                labels_completed: gate.labels_completed,
            })
        }
    }
}

/// Fault-aware [`supg_recall_target`](crate::supg::supg_recall_target)
/// (sequential adapter).
pub fn try_supg_recall_target(
    proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> Result<bool, LabelerFault>,
    config: &SupgConfig,
) -> QueryOutcome<SupgResult> {
    try_supg_recall_target_batch(
        proxy,
        &mut |records| records.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

/// Fault-aware [`supg_precision_target_batch`]: on an unrecoverable oracle
/// fault, degrades to the conservative empty returned set — trivially
/// meeting any precision target, at recall 0.
pub fn try_supg_precision_target_batch(
    proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Result<Vec<bool>, LabelerFault>,
    config: &SupgPrecisionConfig,
) -> QueryOutcome<SupgPrecisionResult> {
    let mut gate = FaultGate::new(batch_oracle, false);
    let mut result = supg_precision_target_batch(proxy, &mut |records| gate.call(records), config);
    match gate.fault {
        None => QueryOutcome::Complete(result),
        Some(fault) => {
            result.returned = Vec::new();
            // Mirrors the core's no-threshold fallback: a threshold just
            // above the maximal proxy score returns nothing.
            result.threshold = 1.0 + 1e-9;
            // An empty set has no precision to estimate.
            result.estimated_precision = f64::NAN;
            mark_degraded(&mut result.telemetry, gate.labels_completed);
            result.oracle_calls = result.telemetry.invocations;
            QueryOutcome::Degraded(DegradedResult {
                result,
                fault,
                labels_completed: gate.labels_completed,
            })
        }
    }
}

/// Fault-aware [`supg_precision_target`](crate::supg::supg_precision_target)
/// (sequential adapter).
pub fn try_supg_precision_target(
    proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> Result<bool, LabelerFault>,
    config: &SupgPrecisionConfig,
) -> QueryOutcome<SupgPrecisionResult> {
    try_supg_precision_target_batch(
        proxy,
        &mut |records| records.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

/// Fault-aware [`limit_query_batch`]: on an unrecoverable oracle fault, the
/// partial answer keeps every match the oracle *confirmed* before the fault
/// (records probed after it are not classified, so matches among them may be
/// missing) and is reported unsatisfied and uncertified.
pub fn try_limit_query_batch(
    ranking: &[usize],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Result<Vec<bool>, LabelerFault>,
    k_matches: usize,
    max_scan: usize,
    probe_batch: usize,
) -> QueryOutcome<LimitResult> {
    let mut gate = FaultGate::new(batch_oracle, false);
    let mut result = limit_query_batch(
        ranking,
        &mut |records| gate.call(records),
        k_matches,
        max_scan,
        probe_batch,
    );
    match gate.fault {
        None => QueryOutcome::Complete(result),
        Some(fault) => {
            // Even if k matches were confirmed before the fault, records in
            // the faulted batch went unclassified, so the scan-order
            // contract is broken: never report the limit as satisfied.
            result.satisfied = false;
            mark_degraded(&mut result.telemetry, gate.labels_completed);
            result.invocations = result.telemetry.invocations;
            QueryOutcome::Degraded(DegradedResult {
                result,
                fault,
                labels_completed: gate.labels_completed,
            })
        }
    }
}

/// Fault-aware [`limit_query`](crate::limit::limit_query) (sequential
/// adapter; probes one record per oracle call like the classic entry point).
pub fn try_limit_query(
    ranking: &[usize],
    oracle_match: &mut dyn FnMut(usize) -> Result<bool, LabelerFault>,
    k_matches: usize,
    max_scan: usize,
) -> QueryOutcome<LimitResult> {
    try_limit_query_batch(
        ranking,
        &mut |records| records.iter().map(|&r| oracle_match(r)).collect(),
        k_matches,
        max_scan,
        1,
    )
}

/// Fault-aware [`predicate_aggregate_batch`]: on an unrecoverable oracle
/// fault, the estimate is recomputed from only the samples labeled before
/// the fault (post-fault draws are discarded, not counted as non-matches)
/// and reported uncertified.
pub fn try_predicate_aggregate_batch(
    pred_proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Result<Vec<Option<f64>>, LabelerFault>,
    config: &PredicateAggConfig,
) -> QueryOutcome<PredicateAggResult> {
    let mut gate = FaultGate::new(batch_oracle, None);
    let mut result =
        predicate_aggregate_batch(pred_proxy, &mut |records| gate.call(records), config);
    match gate.fault {
        None => QueryOutcome::Complete(result),
        Some(fault) => {
            // The core already treats `None` draws as non-matches, so its
            // estimate over the pre-fault matches is the best partial
            // answer; only the certainty claims must be withdrawn.
            result.ci_half_width = f64::INFINITY;
            mark_degraded(&mut result.telemetry, gate.labels_completed);
            result.oracle_calls = result.telemetry.invocations;
            QueryOutcome::Degraded(DegradedResult {
                result,
                fault,
                labels_completed: gate.labels_completed,
            })
        }
    }
}

/// Fault-aware [`predicate_aggregate`](crate::agg_pred::predicate_aggregate)
/// (sequential adapter).
pub fn try_predicate_aggregate(
    pred_proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> Result<Option<f64>, LabelerFault>,
    config: &PredicateAggConfig,
) -> QueryOutcome<PredicateAggResult> {
    try_predicate_aggregate_batch(
        pred_proxy,
        &mut |records| records.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::ebs_aggregate_batch as ebs_plain;
    use crate::limit::limit_query_batch as limit_plain;
    use crate::supg::supg_recall_target_batch as supg_plain;

    fn proxies(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 10) as f64 / 10.0).collect()
    }

    /// Fails every oracle call once `labeled >= fail_after`.
    fn failing_oracle<T: Clone>(
        truth: impl Fn(usize) -> T + 'static,
        fail_after: u64,
    ) -> impl FnMut(&[usize]) -> Result<Vec<T>, LabelerFault> {
        let mut labeled = 0u64;
        move |records: &[usize]| {
            if labeled >= fail_after {
                return Err(LabelerFault::Fatal("oracle down".into()));
            }
            labeled += records.len() as u64;
            Ok(records.iter().map(|&r| truth(r)).collect())
        }
    }

    #[test]
    fn fault_free_try_ebs_matches_the_classic_entry_point() {
        let proxy = proxies(400);
        let cfg = AggregationConfig::default();
        let plain = ebs_plain(
            &proxy,
            &mut |rs| rs.iter().map(|&r| (r % 7) as f64).collect(),
            &cfg,
        );
        let outcome = try_ebs_aggregate_batch(
            &proxy,
            &mut |rs| Ok(rs.iter().map(|&r| (r % 7) as f64).collect()),
            &cfg,
        );
        assert!(!outcome.is_degraded());
        let tried = outcome.into_result();
        assert_eq!(tried.estimate.to_bits(), plain.estimate.to_bits());
        assert_eq!(tried.samples, plain.samples);
        assert_eq!(tried.telemetry.invocations, plain.telemetry.invocations);
        assert!(!tried.telemetry.degraded);
        assert_eq!(tried.telemetry.oracle_faults, 0);
    }

    #[test]
    fn faulted_ebs_degrades_to_the_proxy_mean() {
        let proxy = proxies(400);
        let cfg = AggregationConfig::default();
        let outcome =
            try_ebs_aggregate_batch(&proxy, &mut failing_oracle(|r| (r % 7) as f64, 32), &cfg);
        let QueryOutcome::Degraded(d) = outcome else {
            panic!("expected degraded outcome");
        };
        assert_eq!(d.fault, LabelerFault::Fatal("oracle down".into()));
        assert!(d.labels_completed >= 32);
        assert_eq!(
            d.result.estimate.to_bits(),
            direct_aggregate(&proxy).to_bits()
        );
        assert!(d.result.ci_half_width.is_infinite());
        assert!(!d.result.telemetry.certified);
        assert!(d.result.telemetry.degraded);
        assert_eq!(d.result.telemetry.oracle_faults, 1);
        assert_eq!(d.result.telemetry.invocations, d.labels_completed);
        assert_eq!(d.result.samples, d.labels_completed);
    }

    #[test]
    fn fault_free_try_supg_matches_the_classic_entry_point() {
        let proxy = proxies(300);
        let cfg = SupgConfig {
            budget: 80,
            ..SupgConfig::default()
        };
        let plain = supg_plain(
            &proxy,
            &mut |rs| rs.iter().map(|&r| r % 3 == 0).collect(),
            &cfg,
        );
        let outcome = try_supg_recall_target_batch(
            &proxy,
            &mut |rs| Ok(rs.iter().map(|&r| r % 3 == 0).collect()),
            &cfg,
        );
        assert!(!outcome.is_degraded());
        let tried = outcome.into_result();
        assert_eq!(tried.returned, plain.returned);
        assert_eq!(tried.threshold.to_bits(), plain.threshold.to_bits());
        assert_eq!(tried.oracle_calls, plain.oracle_calls);
    }

    #[test]
    fn faulted_supg_recall_returns_everything() {
        let proxy = proxies(300);
        let cfg = SupgConfig {
            budget: 80,
            ..SupgConfig::default()
        };
        // SUPG labels its whole sample in one oracle call, so the fault
        // must hit the first call.
        let outcome =
            try_supg_recall_target_batch(&proxy, &mut failing_oracle(|r| r % 3 == 0, 0), &cfg);
        let QueryOutcome::Degraded(d) = outcome else {
            panic!("expected degraded outcome");
        };
        assert_eq!(d.labels_completed, 0);
        assert_eq!(d.result.returned.len(), proxy.len());
        assert_eq!(d.result.threshold, 0.0);
        assert_eq!(d.result.estimated_recall, 1.0);
        assert!(!d.result.telemetry.certified);
        assert!(d.result.telemetry.degraded);
    }

    #[test]
    fn faulted_supg_precision_returns_nothing() {
        let proxy = proxies(300);
        let cfg = SupgPrecisionConfig {
            budget: 80,
            ..SupgPrecisionConfig::default()
        };
        let outcome =
            try_supg_precision_target_batch(&proxy, &mut failing_oracle(|r| r % 3 == 0, 0), &cfg);
        let QueryOutcome::Degraded(d) = outcome else {
            panic!("expected degraded outcome");
        };
        assert!(d.result.returned.is_empty());
        assert!(d.result.estimated_precision.is_nan());
        assert!(!d.result.telemetry.certified);
    }

    #[test]
    fn faulted_limit_keeps_confirmed_matches_and_is_never_satisfied() {
        let ranking: Vec<usize> = (0..100).collect();
        // Every record matches; fault after 10 labels — well before the 50
        // requested matches.
        let outcome =
            try_limit_query_batch(&ranking, &mut failing_oracle(|_| true, 10), 50, 100, 5);
        let QueryOutcome::Degraded(d) = outcome else {
            panic!("expected degraded outcome");
        };
        assert_eq!(d.labels_completed, 10);
        assert_eq!(d.result.found, (0..10).collect::<Vec<_>>());
        assert!(!d.result.satisfied);
        assert!(!d.result.telemetry.certified);
        assert_eq!(d.result.invocations, 10);
    }

    #[test]
    fn fault_free_try_limit_matches_the_classic_entry_point() {
        let ranking: Vec<usize> = (0..60).collect();
        let plain = limit_plain(
            &ranking,
            &mut |rs| rs.iter().map(|&r| r % 4 == 1).collect(),
            5,
            60,
            8,
        );
        let outcome = try_limit_query_batch(
            &ranking,
            &mut |rs| Ok(rs.iter().map(|&r| r % 4 == 1).collect()),
            5,
            60,
            8,
        );
        assert!(!outcome.is_degraded());
        let tried = outcome.into_result();
        assert_eq!(tried.found, plain.found);
        assert_eq!(tried.satisfied, plain.satisfied);
        assert_eq!(tried.invocations, plain.invocations);
    }

    #[test]
    fn faulted_predicate_aggregate_is_uncertified_with_partial_estimate() {
        let proxy = proxies(300);
        let cfg = PredicateAggConfig {
            budget: 60,
            ..PredicateAggConfig::default()
        };
        // Predicate aggregation labels its whole sample in one oracle call,
        // so the fault must hit the first call: nothing was labeled.
        let outcome = try_predicate_aggregate_batch(
            &proxy,
            &mut failing_oracle(|r| Some((r % 5) as f64), 0),
            &cfg,
        );
        let QueryOutcome::Degraded(d) = outcome else {
            panic!("expected degraded outcome");
        };
        assert_eq!(d.labels_completed, 0);
        assert!(d.result.ci_half_width.is_infinite());
        assert!(!d.result.telemetry.certified);
        assert!(d.result.telemetry.degraded);
        assert_eq!(d.result.oracle_calls, 0);
        assert_eq!(d.result.matches_sampled, 0);
        assert!(d.result.estimate.is_nan());
    }

    #[test]
    fn sequential_adapters_degrade_too() {
        let proxy = proxies(200);
        let mut labeled = 0u64;
        let outcome = try_ebs_aggregate(
            &proxy,
            &mut |r| {
                if labeled >= 5 {
                    return Err(LabelerFault::Transient("blip".into()));
                }
                labeled += 1;
                Ok((r % 7) as f64)
            },
            &AggregationConfig::default(),
        );
        assert!(outcome.is_degraded());
        assert_eq!(
            outcome.fault(),
            Some(&LabelerFault::Transient("blip".into()))
        );
    }

    #[test]
    fn outcome_accessors_work() {
        let c: QueryOutcome<u32> = QueryOutcome::Complete(7);
        assert_eq!(*c.result(), 7);
        assert!(!c.is_degraded());
        assert!(c.fault().is_none());
        let d = QueryOutcome::Degraded(DegradedResult {
            result: 9u32,
            fault: LabelerFault::Timeout("slow".into()),
            labels_completed: 3,
        });
        assert_eq!(*d.result(), 9);
        assert!(d.is_degraded());
        assert_eq!(d.into_result(), 9);
    }
}
