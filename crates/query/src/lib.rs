//! # tasti-query
//!
//! The downstream proxy-score query-processing algorithms the TASTI paper
//! plugs its indexes into (§4, §6.1):
//!
//! * [`agg`] — approximate aggregation in the style of BlazeIt: sequential
//!   uniform sampling with the proxy score as a **control variate** and an
//!   **empirical-Bernstein stopping rule** (EBS) guaranteeing an error
//!   target at a confidence level, plus direct (no-guarantee) aggregation.
//! * [`supg`] — SUPG recall-target selection: importance sampling against
//!   the proxy scores, a conservative lower confidence bound on recall, and
//!   the returned-set construction of Kang et al. 2020.
//! * [`limit`] — the BlazeIt limit-query ranking algorithm: scan records in
//!   descending proxy-score order, invoking the target labeler until the
//!   requested number of matches is found.
//! * [`select`] — selection without statistical guarantees (NoScope /
//!   Tahoma / probabilistic-predicates style thresholding), scored by F1.
//! * [`stats`] — the statistical machinery shared by all of the above:
//!   empirical-Bernstein half-widths, normal quantiles, streaming moments.
//!
//! The algorithms are deliberately *decoupled from the index*: they consume
//! plain proxy-score slices and an oracle closure, so they run identically
//! over TASTI proxy scores, per-query proxy-model scores, or constant
//! scores (the "no proxy" baseline). All randomness is seeded.
//!
//! Each algorithm's core is its `*_batch` entry point, which takes a
//! **batch** oracle closure (`FnMut(&[usize]) -> Vec<T>`) so a batched
//! target labeler ([`tasti_labeler::MeteredLabeler::try_label_batch`]) can
//! answer a whole sampling round in one inner invocation; the single-record
//! entry points are thin adapters kept for convenience. Both paths request
//! the same records in the same order, so invocation counts are identical
//! on a cold cache (asserted in `tests/telemetry_audit.rs`).
//!
//! When the oracle can *fail* (a live labeler rather than a replay cache),
//! the [`degrade`] module provides fault-aware `try_*` variants of every
//! entry point: they accept fallible oracle closures and return a typed
//! [`QueryOutcome`] that degrades to a proxy-only partial answer on an
//! unrecoverable [`tasti_labeler::LabelerFault`] instead of panicking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod agg_pred;
pub mod degrade;
pub mod limit;
pub mod sanitize;
pub mod select;
pub mod stats;
pub mod supg;

pub use agg::{
    direct_aggregate, ebs_aggregate, ebs_aggregate_batch, AggregationConfig, AggregationResult,
    StoppingRule,
};
pub use agg_pred::{
    predicate_aggregate, predicate_aggregate_batch, PredicateAggConfig, PredicateAggResult,
};
pub use degrade::{
    try_ebs_aggregate, try_ebs_aggregate_batch, try_limit_query, try_limit_query_batch,
    try_predicate_aggregate, try_predicate_aggregate_batch, try_supg_precision_target,
    try_supg_precision_target_batch, try_supg_recall_target, try_supg_recall_target_batch,
    DegradedResult, QueryOutcome,
};
pub use limit::{limit_query, limit_query_batch, LimitResult};
pub use sanitize::{desc_nan_last, sanitize_proxies, Sanitized, UnitScale};
pub use select::{threshold_selection, tune_threshold, tune_threshold_batch, SelectionResult};
pub use supg::{
    supg_precision_target, supg_precision_target_batch, supg_recall_target,
    supg_recall_target_batch, SupgConfig, SupgPrecisionConfig, SupgPrecisionResult, SupgResult,
};
pub use tasti_obs::QueryTelemetry;
