//! # tasti-query
//!
//! The downstream proxy-score query-processing algorithms the TASTI paper
//! plugs its indexes into (§4, §6.1):
//!
//! * [`agg`] — approximate aggregation in the style of BlazeIt: sequential
//!   uniform sampling with the proxy score as a **control variate** and an
//!   **empirical-Bernstein stopping rule** (EBS) guaranteeing an error
//!   target at a confidence level, plus direct (no-guarantee) aggregation.
//! * [`supg`] — SUPG recall-target selection: importance sampling against
//!   the proxy scores, a conservative lower confidence bound on recall, and
//!   the returned-set construction of Kang et al. 2020.
//! * [`limit`] — the BlazeIt limit-query ranking algorithm: scan records in
//!   descending proxy-score order, invoking the target labeler until the
//!   requested number of matches is found.
//! * [`select`] — selection without statistical guarantees (NoScope /
//!   Tahoma / probabilistic-predicates style thresholding), scored by F1.
//! * [`stats`] — the statistical machinery shared by all of the above:
//!   empirical-Bernstein half-widths, normal quantiles, streaming moments.
//!
//! The algorithms are deliberately *decoupled from the index*: they consume
//! plain proxy-score slices and an oracle closure, so they run identically
//! over TASTI proxy scores, per-query proxy-model scores, or constant
//! scores (the "no proxy" baseline). All randomness is seeded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod agg_pred;
pub mod limit;
pub mod sanitize;
pub mod select;
pub mod stats;
pub mod supg;

pub use agg::{
    direct_aggregate, ebs_aggregate, AggregationConfig, AggregationResult, StoppingRule,
};
pub use agg_pred::{predicate_aggregate, PredicateAggConfig, PredicateAggResult};
pub use limit::{limit_query, LimitResult};
pub use sanitize::{desc_nan_last, sanitize_proxies, Sanitized, UnitScale};
pub use select::{threshold_selection, tune_threshold, SelectionResult};
pub use supg::{
    supg_precision_target, supg_recall_target, SupgConfig, SupgPrecisionConfig,
    SupgPrecisionResult, SupgResult,
};
pub use tasti_obs::QueryTelemetry;
