//! Aggregation with predicates (§2.2: "Since the initial draft, other work
//! has used TASTI to support aggregation queries with predicates" — Kang et
//! al., *Accelerating Approximate Aggregation Queries with Expensive
//! Predicates*, PVLDB 2021).
//!
//! Query: the mean of a value over records *matching a predicate*, e.g.
//! "average number of cars per frame, among frames containing a bus". Both
//! the predicate and the value require the target labeler; TASTI supplies a
//! proxy score for the predicate, which drives importance sampling so the
//! oracle budget concentrates on records likely to match.
//!
//! The estimator is a self-normalized importance-sampling ratio:
//! `Σ wᵢ·fᵢ·1[Pᵢ] / Σ wᵢ·1[Pᵢ]` with a delta-method normal confidence
//! interval, under a fixed oracle budget (matching ABae's budgeted setting).

use crate::sanitize::{sanitize_proxies, UnitScale};
use crate::stats::normal_inverse_cdf;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::HashMap;
use tasti_obs::{QueryTelemetry, Stopwatch};

/// Configuration for predicate aggregation.
#[derive(Debug, Clone)]
pub struct PredicateAggConfig {
    /// Hard oracle budget (distinct records).
    pub budget: usize,
    /// Confidence level for the reported interval.
    pub confidence: f64,
    /// Uniform mixing fraction in the importance distribution (defensive).
    pub uniform_mix: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PredicateAggConfig {
    fn default() -> Self {
        Self {
            budget: 500,
            confidence: 0.95,
            uniform_mix: 0.2,
            seed: 1,
        }
    }
}

/// Result of a predicate-aggregation query.
#[derive(Debug, Clone, Serialize)]
pub struct PredicateAggResult {
    /// Estimated mean of the value over matching records (NaN if no
    /// sampled record matched).
    pub estimate: f64,
    /// Normal-approximation CI half-width at the configured confidence.
    pub ci_half_width: f64,
    /// Distinct oracle invocations consumed. Mirrors
    /// `telemetry.invocations` (kept for backward compatibility).
    pub oracle_calls: u64,
    /// Sampled records that matched the predicate.
    pub matches_sampled: usize,
    /// Uniform execution record. `certified` is `false` when no sampled
    /// record matched the predicate — the NaN estimate and infinite
    /// interval describe that failure, not a valid answer.
    pub telemetry: QueryTelemetry,
}

/// Estimates the mean of a value over records matching a predicate.
///
/// `pred_proxy` scores each record's probability of matching; `oracle`
/// returns `Some(value)` for matching records and `None` otherwise (one
/// target-labeler invocation answers both questions, as a real labeler
/// output does).
pub fn predicate_aggregate(
    pred_proxy: &[f64],
    oracle: &mut dyn FnMut(usize) -> Option<f64>,
    config: &PredicateAggConfig,
) -> PredicateAggResult {
    predicate_aggregate_batch(
        pred_proxy,
        &mut |recs| recs.iter().map(|&r| oracle(r)).collect(),
        config,
    )
}

/// Batched predicate aggregation: the importance draw set is
/// label-independent, so all draws are made up front and the distinct
/// sampled records are labeled through `batch_oracle` in **one** call,
/// meter-identical to the sequential [`predicate_aggregate`] loop (distinct
/// records, first-occurrence order).
pub fn predicate_aggregate_batch(
    pred_proxy: &[f64],
    batch_oracle: &mut dyn FnMut(&[usize]) -> Vec<Option<f64>>,
    config: &PredicateAggConfig,
) -> PredicateAggResult {
    let sw = Stopwatch::start();
    let mut telemetry = QueryTelemetry::new("predicate_aggregate");
    let n = pred_proxy.len();
    assert!(n > 0, "cannot aggregate an empty dataset");
    // Sanitize non-finite proxies per the crate-wide policy, then
    // normalize to a sampling distribution (overflow-safe).
    let sanitized = sanitize_proxies(pred_proxy);
    telemetry.sanitized_inputs = sanitized.replaced;
    let scale = UnitScale::new(&sanitized.scores);
    let norm: &[f64] = &scale.norm;
    let u = config.uniform_mix.clamp(0.0, 1.0);
    let weight_total: f64 = norm.iter().sum();
    let q: Vec<f64> = if weight_total > 1e-12 {
        norm.iter()
            .map(|&p| (1.0 - u) * p / weight_total + u / n as f64)
            .collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &qi in &q {
        acc += qi;
        cdf.push(acc);
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let m = config.budget.min(n).max(1);
    // Label-independent draw set: draw first, then label the distinct
    // records (first-occurrence order) in one batch oracle call.
    let sampled: Vec<usize> = (0..m)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..acc);
            cdf.partition_point(|&c| c < x).min(n - 1)
        })
        .collect();
    let mut distinct: Vec<usize> = Vec::new();
    let mut seen: std::collections::HashSet<usize> = Default::default();
    for &rec in &sampled {
        if seen.insert(rec) {
            distinct.push(rec);
        }
    }
    let answers = batch_oracle(&distinct);
    assert_eq!(
        answers.len(),
        distinct.len(),
        "batch oracle must return one answer per record"
    );
    let truth: HashMap<usize, Option<f64>> = distinct.iter().copied().zip(answers).collect();
    // Per-draw contributions a_i = w·f·1[P], b_i = w·1[P].
    let mut a = Vec::with_capacity(m);
    let mut b = Vec::with_capacity(m);
    let mut matches_sampled_set: std::collections::HashSet<usize> = Default::default();
    for &rec in &sampled {
        let w = 1.0 / (m as f64 * q[rec]);
        match truth[&rec] {
            Some(v) => {
                a.push(w * v);
                b.push(w);
                matches_sampled_set.insert(rec);
            }
            None => {
                a.push(0.0);
                b.push(0.0);
            }
        }
    }
    let oracle_calls = distinct.len() as u64;

    let mf = m as f64;
    let b_sum: f64 = b.iter().sum();
    if b_sum <= 0.0 {
        telemetry.invocations = oracle_calls;
        telemetry.certified = false; // no match sampled: nothing to estimate
        telemetry.wall_seconds = sw.elapsed_seconds();
        return PredicateAggResult {
            estimate: f64::NAN,
            ci_half_width: f64::INFINITY,
            oracle_calls,
            matches_sampled: 0,
            telemetry,
        };
    }
    let a_sum: f64 = a.iter().sum();
    let r = a_sum / b_sum;
    // Delta-method variance of the ratio of means.
    let mean_a = a_sum / mf;
    let mean_b = b_sum / mf;
    let var_a = a.iter().map(|&x| (x - mean_a).powi(2)).sum::<f64>() / mf;
    let var_b = b.iter().map(|&x| (x - mean_b).powi(2)).sum::<f64>() / mf;
    let cov = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| (x - mean_a) * (y - mean_b))
        .sum::<f64>()
        / mf;
    let var_r = ((var_a - 2.0 * r * cov + r * r * var_b) / (mf * mean_b * mean_b)).max(0.0);
    let z = normal_inverse_cdf(1.0 - (1.0 - config.confidence) / 2.0);
    telemetry.invocations = oracle_calls;
    telemetry.certified = true;
    telemetry.wall_seconds = sw.elapsed_seconds();
    PredicateAggResult {
        estimate: r,
        ci_half_width: z * var_r.sqrt(),
        oracle_calls,
        matches_sampled: matches_sampled_set.len(),
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Population: ~`match_rate` of records match; matching records carry
    /// value `base + noise`; `proxy_quality ∈ [0, 1]` controls how well the
    /// predicate proxy ranks matches.
    fn population(
        n: usize,
        match_rate: f64,
        proxy_quality: f64,
        seed: u64,
    ) -> (Vec<Option<f64>>, Vec<f64>, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut truth = Vec::with_capacity(n);
        let mut proxy = Vec::with_capacity(n);
        let mut sum = 0.0;
        let mut count = 0usize;
        for _ in 0..n {
            let matches = rng.gen::<f64>() < match_rate;
            let value = 3.0 + rng.gen_range(-1.0..1.0);
            if matches {
                sum += value;
                count += 1;
            }
            truth.push(if matches { Some(value) } else { None });
            let signal = matches as u8 as f64;
            proxy.push(proxy_quality * signal + (1.0 - proxy_quality) * rng.gen::<f64>());
        }
        (truth, proxy, sum / count.max(1) as f64)
    }

    #[test]
    fn estimate_is_accurate_on_rare_predicates() {
        let (truth, proxy, true_mean) = population(20_000, 0.03, 0.9, 1);
        let cfg = PredicateAggConfig {
            budget: 800,
            seed: 3,
            ..Default::default()
        };
        let res = predicate_aggregate(&proxy, &mut |r| truth[r], &cfg);
        assert!(
            (res.estimate - true_mean).abs() < 0.25,
            "estimate {} vs true {true_mean}",
            res.estimate
        );
        assert!(res.oracle_calls <= 800);
        assert!(
            res.matches_sampled > 20,
            "importance sampling should find matches"
        );
    }

    #[test]
    fn better_predicate_proxy_tightens_the_interval() {
        let (truth, good, _) = population(20_000, 0.03, 0.95, 5);
        let (_, bad, _) = population(20_000, 0.03, 0.0, 5);
        let cfg = PredicateAggConfig {
            budget: 600,
            seed: 7,
            ..Default::default()
        };
        let res_good = predicate_aggregate(&good, &mut |r| truth[r], &cfg);
        let res_bad = predicate_aggregate(&bad, &mut |r| truth[r], &cfg);
        assert!(
            res_good.ci_half_width < res_bad.ci_half_width,
            "good proxy CI {} should beat bad proxy CI {}",
            res_good.ci_half_width,
            res_bad.ci_half_width
        );
        assert!(res_good.matches_sampled > res_bad.matches_sampled);
    }

    #[test]
    fn no_matches_reports_nan_with_infinite_interval() {
        let proxy: Vec<f64> = (0..500).map(|i| (i % 5) as f64).collect();
        let cfg = PredicateAggConfig {
            budget: 100,
            seed: 9,
            ..Default::default()
        };
        let res = predicate_aggregate(&proxy, &mut |_| None, &cfg);
        assert!(res.estimate.is_nan());
        assert!(res.ci_half_width.is_infinite());
        assert_eq!(res.matches_sampled, 0);
        assert!(!res.telemetry.certified);
    }

    #[test]
    fn nan_proxies_are_sanitized_and_counted() {
        let (truth, mut proxy, true_mean) = population(10_000, 0.1, 0.8, 21);
        proxy[0] = f64::NAN;
        proxy[1] = f64::NEG_INFINITY;
        let cfg = PredicateAggConfig {
            budget: 600,
            seed: 23,
            ..Default::default()
        };
        let res = predicate_aggregate(&proxy, &mut |r| truth[r], &cfg);
        assert_eq!(res.telemetry.sanitized_inputs, 2);
        assert_eq!(res.telemetry.invocations, res.oracle_calls);
        assert!((res.estimate - true_mean).abs() < 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let (truth, proxy, _) = population(5_000, 0.1, 0.7, 11);
        let cfg = PredicateAggConfig {
            budget: 300,
            seed: 13,
            ..Default::default()
        };
        let a = predicate_aggregate(&proxy, &mut |r| truth[r], &cfg);
        let b = predicate_aggregate(&proxy, &mut |r| truth[r], &cfg);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.ci_half_width, b.ci_half_width);
    }

    #[test]
    fn coverage_of_the_interval() {
        let (truth, proxy, true_mean) = population(15_000, 0.05, 0.8, 15);
        let mut hits = 0;
        for seed in 0..20 {
            let cfg = PredicateAggConfig {
                budget: 500,
                seed,
                ..Default::default()
            };
            let res = predicate_aggregate(&proxy, &mut |r| truth[r], &cfg);
            if (res.estimate - true_mean).abs() <= res.ci_half_width {
                hits += 1;
            }
        }
        assert!(hits >= 16, "interval coverage too low: {hits}/20");
    }

    #[test]
    fn constant_proxy_falls_back_to_uniform() {
        let (truth, _, true_mean) = population(10_000, 0.3, 0.9, 17);
        let proxy = vec![0.5f64; 10_000];
        let cfg = PredicateAggConfig {
            budget: 600,
            seed: 19,
            ..Default::default()
        };
        let res = predicate_aggregate(&proxy, &mut |r| truth[r], &cfg);
        assert!((res.estimate - true_mean).abs() < 0.3);
    }
}
