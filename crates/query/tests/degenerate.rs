//! Degenerate-input property tests: NaN, ±∞, extreme-magnitude, constant,
//! and single-record proxy vectors through every query algorithm.
//!
//! The contract under test is the crate-wide sanitization policy
//! (`tasti_query::sanitize`): no proxy vector containing at least one
//! record may panic, hang, or corrupt the invocation accounting. Empty
//! inputs are the one documented exception — they panic with an explicit
//! message, asserted at the bottom of this file.
//!
//! Build with `--features quick-proptest` for a reduced case count (CI's
//! quick profile, see `ci.sh`).

use proptest::prelude::*;
use tasti_query::{
    ebs_aggregate, limit_query, predicate_aggregate, supg_precision_target, supg_recall_target,
    tune_threshold, AggregationConfig, PredicateAggConfig, SupgConfig, SupgPrecisionConfig,
};

#[cfg(feature = "quick-proptest")]
const CASES: u32 = 16;
#[cfg(not(feature = "quick-proptest"))]
const CASES: u32 = 96;

/// One proxy score: mostly moderate finite values, with non-finite and
/// extreme-magnitude specials mixed in at high probability so nearly every
/// generated vector exercises the sanitizer.
fn score() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -1e3..1e3f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::MAX),
        1 => Just(-f64::MAX),
        1 => Just(0.0),
    ]
}

/// Non-empty proxy vectors, including length 1.
fn proxies() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(score(), 1..48)
}

fn non_finite(proxy: &[f64]) -> u64 {
    proxy.iter().filter(|v| !v.is_finite()).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn ebs_aggregate_never_panics(proxy in proxies(), seed in 0u64..1000) {
        let config = AggregationConfig {
            error_target: 0.5,
            batch_size: 4,
            min_samples: 2,
            seed,
            ..Default::default()
        };
        let res = ebs_aggregate(&proxy, &mut |r| (r % 5) as f64, &config);
        // Oracle values are bounded, so the answer must be too.
        prop_assert!(res.estimate.is_finite());
        prop_assert_eq!(res.telemetry.invocations, res.samples);
        prop_assert_eq!(res.telemetry.sanitized_inputs, non_finite(&proxy));
        prop_assert!(res.telemetry.certified);
    }

    #[test]
    fn supg_recall_never_panics(proxy in proxies(), seed in 0u64..1000) {
        let n = proxy.len();
        let config = SupgConfig {
            budget: 16.min(n).max(1),
            seed,
            ..Default::default()
        };
        let res = supg_recall_target(&proxy, &mut |r| r % 3 == 0, &config);
        prop_assert!(!res.threshold.is_nan());
        prop_assert!(res.returned.iter().all(|&r| r < n));
        prop_assert_eq!(res.telemetry.invocations, res.oracle_calls);
        prop_assert!(res.oracle_calls <= config.budget as u64);
        prop_assert_eq!(res.telemetry.sanitized_inputs, non_finite(&proxy));
    }

    #[test]
    fn supg_precision_never_panics(proxy in proxies(), seed in 0u64..1000) {
        let n = proxy.len();
        let config = SupgPrecisionConfig {
            budget: 16.min(n).max(1),
            seed,
            ..Default::default()
        };
        let res = supg_precision_target(&proxy, &mut |r| r % 3 == 0, &config);
        prop_assert!(!res.threshold.is_nan());
        prop_assert!(res.returned.iter().all(|&r| r < n));
        prop_assert_eq!(res.telemetry.invocations, res.oracle_calls);
        prop_assert_eq!(res.telemetry.sanitized_inputs, non_finite(&proxy));
    }

    #[test]
    fn limit_query_never_panics(proxy in proxies(), k in 1usize..8) {
        let n = proxy.len();
        // Rank by proxy score through the crate's total NaN-last order, the
        // same path callers use on raw (possibly NaN) scores.
        let mut ranking: Vec<usize> = (0..n).collect();
        ranking.sort_by(|&a, &b| tasti_query::desc_nan_last(proxy[a], proxy[b]));
        let res = limit_query(&ranking, &mut |r| r % 4 == 0, k, n);
        prop_assert!(res.found.iter().all(|&r| r < n));
        prop_assert!(res.invocations <= n as u64);
        prop_assert_eq!(res.telemetry.invocations, res.invocations);
        prop_assert_eq!(res.telemetry.certified, res.satisfied);
    }

    #[test]
    fn tune_threshold_terminates(proxy in proxies(), seed in 0u64..1000) {
        // Regression: a NaN in the validation sample used to hang the
        // tie-advancing threshold sweep (NaN != NaN never advanced it).
        let n = proxy.len();
        let res = tune_threshold(&proxy, &mut |r| r % 2 == 0, 16.min(n), seed);
        prop_assert!(res.selected.iter().all(|&r| r < n));
        prop_assert!(!res.telemetry.certified);
        prop_assert_eq!(res.telemetry.invocations, res.oracle_calls);
        prop_assert_eq!(res.telemetry.sanitized_inputs, non_finite(&proxy));
    }

    #[test]
    fn predicate_aggregate_never_panics(proxy in proxies(), seed in 0u64..1000) {
        let config = PredicateAggConfig {
            budget: 16,
            seed,
            ..Default::default()
        };
        let res =
            predicate_aggregate(&proxy, &mut |r| (r % 3 == 0).then_some(2.0), &config);
        prop_assert_eq!(res.telemetry.invocations, res.oracle_calls);
        prop_assert_eq!(res.telemetry.sanitized_inputs, non_finite(&proxy));
        // certified iff a match was sampled; the NaN estimate is flagged.
        prop_assert_eq!(res.telemetry.certified, res.matches_sampled > 0);
        if res.matches_sampled > 0 {
            prop_assert!(res.estimate.is_finite());
        } else {
            prop_assert!(res.estimate.is_nan());
        }
    }
}

#[test]
fn all_nan_vector_uses_the_uniform_fallback() {
    let proxy = vec![f64::NAN; 24];
    let res = ebs_aggregate(
        &proxy,
        &mut |r| (r % 5) as f64,
        &AggregationConfig {
            error_target: 0.5,
            batch_size: 4,
            min_samples: 2,
            ..Default::default()
        },
    );
    assert!(res.estimate.is_finite());
    assert_eq!(res.telemetry.sanitized_inputs, 24);

    let res = supg_recall_target(
        &proxy,
        &mut |r| r % 3 == 0,
        &SupgConfig {
            budget: 12,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.sanitized_inputs, 24);
    assert!(!res.threshold.is_nan());
}

#[test]
fn single_record_dataset_runs_every_algorithm() {
    let proxy = [1.5f64];
    let agg = ebs_aggregate(&proxy, &mut |_| 7.0, &AggregationConfig::default());
    assert_eq!(agg.estimate, 7.0);
    assert!(agg.exhausted);

    let supg = supg_recall_target(
        &proxy,
        &mut |_| true,
        &SupgConfig {
            budget: 1,
            ..Default::default()
        },
    );
    assert!(supg.returned.contains(&0));

    let lim = limit_query(&[0], &mut |_| true, 1, 1);
    assert!(lim.satisfied);

    let sel = tune_threshold(&proxy, &mut |_| true, 1, 1);
    assert_eq!(sel.telemetry.invocations, 1);
}

#[test]
fn constant_scores_are_handled_by_every_algorithm() {
    let proxy = vec![3.25f64; 40];
    let agg = ebs_aggregate(
        &proxy,
        &mut |r| (r % 5) as f64,
        &AggregationConfig {
            error_target: 0.5,
            batch_size: 4,
            min_samples: 4,
            ..Default::default()
        },
    );
    assert!(agg.estimate.is_finite());
    // Constant proxy carries no signal: the control variate must deactivate.
    assert_eq!(agg.control_coefficient, 0.0);

    let supg = supg_recall_target(
        &proxy,
        &mut |r| r % 4 == 0,
        &SupgConfig {
            budget: 20,
            ..Default::default()
        },
    );
    assert!(supg.returned.iter().all(|&r| r < 40));

    let pred = predicate_aggregate(
        &proxy,
        &mut |r| (r % 4 == 0).then_some(1.0),
        &PredicateAggConfig {
            budget: 30,
            ..Default::default()
        },
    );
    assert_eq!(pred.telemetry.certified, pred.matches_sampled > 0);
}

#[test]
#[should_panic(expected = "empty dataset")]
fn empty_aggregation_panics_with_documented_message() {
    let _ = ebs_aggregate(&[], &mut |_| 0.0, &AggregationConfig::default());
}

#[test]
#[should_panic(expected = "empty dataset")]
fn empty_selection_panics_with_documented_message() {
    let _ = supg_recall_target(&[], &mut |_| false, &SupgConfig::default());
}
