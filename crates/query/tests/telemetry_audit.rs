//! Telemetry audit: every query algorithm's reported `invocations` must
//! equal the `MeteredLabeler` delta across the call — **exactly**.
//!
//! This is the invariant the unified accounting layer exists to enforce
//! (DESIGN.md §6): the paper's cost metric is distinct target-labeler
//! invocations, so an algorithm that over- or under-reports by even one
//! call corrupts every cost figure downstream. Each test routes the oracle
//! closure through a real `MeteredLabeler` (cache + distinct-record meter)
//! and compares the meter's before/after delta against the telemetry.

use tasti_labeler::{
    LabelCost, LabelerOutput, MeteredLabeler, RecordId, Schema, SqlAnnotation, SqlOp, TargetLabeler,
};
use tasti_query::{
    ebs_aggregate, limit_query, predicate_aggregate, supg_precision_target, supg_recall_target,
    tune_threshold, AggregationConfig, PredicateAggConfig, SupgConfig, SupgPrecisionConfig,
};

/// Deterministic stand-in oracle: record `r` gets `r % 4` predicates.
struct FakeLabeler;

impl TargetLabeler for FakeLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        LabelerOutput::Sql(SqlAnnotation {
            op: SqlOp::Select,
            num_predicates: (record % 4) as u8,
        })
    }
    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 1.0,
            dollars: 0.01,
        }
    }
    fn schema(&self) -> Schema {
        Schema::wikisql()
    }
    fn name(&self) -> &str {
        "fake"
    }
}

fn value_of(out: &LabelerOutput) -> f64 {
    match out {
        LabelerOutput::Sql(a) => a.num_predicates as f64,
        _ => unreachable!("FakeLabeler only emits Sql"),
    }
}

/// Proxy scores loosely correlated with the oracle, with a few non-finite
/// entries so the audit also covers the sanitized path.
fn proxy(n: usize) -> Vec<f64> {
    let mut p: Vec<f64> = (0..n)
        .map(|r| (r % 4) as f64 + ((r * 2654435761) % 97) as f64 / 97.0)
        .collect();
    p[1] = f64::NAN;
    p[5] = f64::INFINITY;
    p
}

#[test]
fn ebs_aggregate_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = ebs_aggregate(
        &p,
        &mut |r| value_of(&m.label(r)),
        &AggregationConfig {
            error_target: 0.3,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.samples, res.telemetry.invocations);
}

#[test]
fn supg_recall_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = supg_recall_target(
        &p,
        &mut |r| value_of(&m.label(r)) >= 2.0,
        &SupgConfig {
            budget: 120,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

#[test]
fn supg_precision_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = supg_precision_target(
        &p,
        &mut |r| value_of(&m.label(r)) >= 2.0,
        &SupgPrecisionConfig {
            budget: 120,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

#[test]
fn limit_query_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let mut ranking: Vec<usize> = (0..p.len()).collect();
    ranking.sort_by(|&a, &b| tasti_query::desc_nan_last(p[a], p[b]));
    let before = m.invocations();
    let res = limit_query(&ranking, &mut |r| value_of(&m.label(r)) == 3.0, 10, 400);
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert!(res.satisfied);
}

#[test]
fn tune_threshold_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = tune_threshold(&p, &mut |r| value_of(&m.label(r)) >= 2.0, 100, 7);
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

#[test]
fn predicate_aggregate_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = predicate_aggregate(
        &p,
        &mut |r| {
            let v = value_of(&m.label(r));
            (v >= 2.0).then_some(v)
        },
        &PredicateAggConfig {
            budget: 150,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

#[test]
fn warm_cache_makes_the_meter_the_authoritative_ledger() {
    // The algorithms see only an oracle closure, so their telemetry counts
    // distinct records *consulted* — on a cold cache (every test above)
    // that equals the meter delta exactly. On a warm cache the records are
    // already paid for: the meter delta drops to zero while the telemetry
    // still reports the consultation count. Cost accounting must therefore
    // read the meter, never sum telemetry across queries — the amortized
    // convention of Table 1.
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(200);
    let mut run = || tune_threshold(&p, &mut |r| value_of(&m.label(r)) >= 2.0, 80, 3);
    let first = run();
    assert_eq!(first.telemetry.invocations, 80);
    assert_eq!(m.invocations(), 80); // cold cache: ledgers agree
    let second = run();
    assert_eq!(second.telemetry.invocations, 80);
    assert_eq!(m.invocations(), 80); // warm cache: the meter did not move
}
