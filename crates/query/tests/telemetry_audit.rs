//! Telemetry audit: every query algorithm's reported `invocations` must
//! equal the `MeteredLabeler` delta across the call — **exactly**.
//!
//! This is the invariant the unified accounting layer exists to enforce
//! (DESIGN.md §6): the paper's cost metric is distinct target-labeler
//! invocations, so an algorithm that over- or under-reports by even one
//! call corrupts every cost figure downstream. Each test routes the oracle
//! closure through a real `MeteredLabeler` (cache + distinct-record meter)
//! and compares the meter's before/after delta against the telemetry.

use tasti_labeler::{
    BatchTargetLabeler, LabelCost, LabelerError, LabelerFault, LabelerOutput, MeteredLabeler,
    RecordId, Schema, SqlAnnotation, SqlOp, TargetLabeler,
};
use tasti_query::{
    ebs_aggregate, ebs_aggregate_batch, limit_query, limit_query_batch, predicate_aggregate,
    predicate_aggregate_batch, supg_precision_target, supg_precision_target_batch,
    supg_recall_target, supg_recall_target_batch, try_ebs_aggregate_batch, try_limit_query_batch,
    try_predicate_aggregate_batch, try_supg_precision_target_batch, try_supg_recall_target_batch,
    tune_threshold, tune_threshold_batch, AggregationConfig, PredicateAggConfig, SupgConfig,
    SupgPrecisionConfig,
};

/// Deterministic stand-in oracle: record `r` gets `r % 4` predicates.
struct FakeLabeler;

impl TargetLabeler for FakeLabeler {
    fn label(&self, record: RecordId) -> LabelerOutput {
        LabelerOutput::Sql(SqlAnnotation {
            op: SqlOp::Select,
            num_predicates: (record % 4) as u8,
        })
    }
    fn invocation_cost(&self) -> LabelCost {
        LabelCost {
            seconds: 1.0,
            dollars: 0.01,
        }
    }
    fn schema(&self) -> Schema {
        Schema::wikisql()
    }
    fn name(&self) -> &str {
        "fake"
    }
}

// Opt in to the (default, loop-based) batch interface so the batched audit
// below can route each algorithm's batch closure through
// `MeteredLabeler::label_batch`.
impl BatchTargetLabeler for FakeLabeler {}

fn value_of(out: &LabelerOutput) -> f64 {
    match out {
        LabelerOutput::Sql(a) => a.num_predicates as f64,
        _ => unreachable!("FakeLabeler only emits Sql"),
    }
}

/// Proxy scores loosely correlated with the oracle, with a few non-finite
/// entries so the audit also covers the sanitized path.
fn proxy(n: usize) -> Vec<f64> {
    let mut p: Vec<f64> = (0..n)
        .map(|r| (r % 4) as f64 + ((r * 2654435761) % 97) as f64 / 97.0)
        .collect();
    p[1] = f64::NAN;
    p[5] = f64::INFINITY;
    p
}

#[test]
fn ebs_aggregate_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = ebs_aggregate(
        &p,
        &mut |r| value_of(&m.label(r)),
        &AggregationConfig {
            error_target: 0.3,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.samples, res.telemetry.invocations);
}

#[test]
fn supg_recall_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = supg_recall_target(
        &p,
        &mut |r| value_of(&m.label(r)) >= 2.0,
        &SupgConfig {
            budget: 120,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

#[test]
fn supg_precision_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = supg_precision_target(
        &p,
        &mut |r| value_of(&m.label(r)) >= 2.0,
        &SupgPrecisionConfig {
            budget: 120,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

#[test]
fn limit_query_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let mut ranking: Vec<usize> = (0..p.len()).collect();
    ranking.sort_by(|&a, &b| tasti_query::desc_nan_last(p[a], p[b]));
    let before = m.invocations();
    let res = limit_query(&ranking, &mut |r| value_of(&m.label(r)) == 3.0, 10, 400);
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert!(res.satisfied);
}

#[test]
fn tune_threshold_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = tune_threshold(&p, &mut |r| value_of(&m.label(r)) >= 2.0, 100, 7);
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

#[test]
fn predicate_aggregate_matches_the_meter() {
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(400);
    let before = m.invocations();
    let res = predicate_aggregate(
        &p,
        &mut |r| {
            let v = value_of(&m.label(r));
            (v >= 2.0).then_some(v)
        },
        &PredicateAggConfig {
            budget: 150,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(res.telemetry.invocations, m.invocations() - before);
    assert_eq!(res.oracle_calls, res.telemetry.invocations);
}

// ---------------------------------------------------------------------------
// Batched vs sequential meter identity (acceptance criterion of the batched
// labeler front door): for every query algorithm, routing the oracle through
// `MeteredLabeler::label_batch` on a cold cache must produce an invocation
// count **bit-identical** to the sequential single-record loop — same
// records, same order, same bill. Each test runs the sequential and batched
// entry points against two fresh metered labelers with identical configs and
// compares both the meters and the results.
// ---------------------------------------------------------------------------

#[test]
fn batched_ebs_aggregate_is_meter_identical_to_sequential() {
    let p = proxy(400);
    let cfg = AggregationConfig {
        error_target: 0.3,
        seed: 7,
        ..Default::default()
    };
    let seq = MeteredLabeler::new(FakeLabeler);
    let seq_res = ebs_aggregate(&p, &mut |r| value_of(&seq.label(r)), &cfg);
    let bat = MeteredLabeler::new(FakeLabeler);
    let bat_res = ebs_aggregate_batch(
        &p,
        &mut |recs| bat.label_batch(recs).iter().map(value_of).collect(),
        &cfg,
    );
    assert_eq!(bat.invocations(), seq.invocations());
    assert_eq!(bat.cache_hits(), seq.cache_hits());
    assert_eq!(bat_res.samples, seq_res.samples);
    assert_eq!(bat_res.estimate, seq_res.estimate);
    assert_eq!(bat_res.telemetry.invocations, seq_res.telemetry.invocations);
}

#[test]
fn batched_supg_recall_is_meter_identical_to_sequential() {
    let p = proxy(400);
    let cfg = SupgConfig {
        budget: 120,
        seed: 7,
        ..Default::default()
    };
    let seq = MeteredLabeler::new(FakeLabeler);
    let seq_res = supg_recall_target(&p, &mut |r| value_of(&seq.label(r)) >= 2.0, &cfg);
    let bat = MeteredLabeler::new(FakeLabeler);
    let bat_res = supg_recall_target_batch(
        &p,
        &mut |recs| {
            bat.label_batch(recs)
                .iter()
                .map(|o| value_of(o) >= 2.0)
                .collect()
        },
        &cfg,
    );
    assert_eq!(bat.invocations(), seq.invocations());
    assert_eq!(bat_res.oracle_calls, seq_res.oracle_calls);
    assert_eq!(bat_res.returned, seq_res.returned);
    assert_eq!(bat_res.threshold, seq_res.threshold);
    assert_eq!(bat_res.telemetry.invocations, seq_res.telemetry.invocations);
}

#[test]
fn batched_supg_precision_is_meter_identical_to_sequential() {
    let p = proxy(400);
    let cfg = SupgPrecisionConfig {
        budget: 120,
        seed: 7,
        ..Default::default()
    };
    let seq = MeteredLabeler::new(FakeLabeler);
    let seq_res = supg_precision_target(&p, &mut |r| value_of(&seq.label(r)) >= 2.0, &cfg);
    let bat = MeteredLabeler::new(FakeLabeler);
    let bat_res = supg_precision_target_batch(
        &p,
        &mut |recs| {
            bat.label_batch(recs)
                .iter()
                .map(|o| value_of(o) >= 2.0)
                .collect()
        },
        &cfg,
    );
    assert_eq!(bat.invocations(), seq.invocations());
    assert_eq!(bat_res.oracle_calls, seq_res.oracle_calls);
    assert_eq!(bat_res.returned, seq_res.returned);
    assert_eq!(bat_res.telemetry.invocations, seq_res.telemetry.invocations);
}

#[test]
fn batched_limit_query_with_unit_probe_is_meter_identical_to_sequential() {
    let p = proxy(400);
    let mut ranking: Vec<usize> = (0..p.len()).collect();
    ranking.sort_by(|&a, &b| tasti_query::desc_nan_last(p[a], p[b]));
    let seq = MeteredLabeler::new(FakeLabeler);
    let seq_res = limit_query(&ranking, &mut |r| value_of(&seq.label(r)) == 3.0, 10, 400);
    let bat = MeteredLabeler::new(FakeLabeler);
    let bat_res = limit_query_batch(
        &ranking,
        &mut |recs| {
            bat.label_batch(recs)
                .iter()
                .map(|o| value_of(o) == 3.0)
                .collect()
        },
        10,
        400,
        1,
    );
    assert_eq!(bat.invocations(), seq.invocations());
    assert_eq!(bat_res.invocations, seq_res.invocations);
    assert_eq!(bat_res.found, seq_res.found);
    assert_eq!(bat_res.telemetry.invocations, seq_res.telemetry.invocations);
}

#[test]
fn batched_limit_query_overshoot_is_bounded_by_probe_batch() {
    // Larger probe batches may overshoot — but by strictly less than one
    // batch, and the answer itself must not change.
    let p = proxy(400);
    let mut ranking: Vec<usize> = (0..p.len()).collect();
    ranking.sort_by(|&a, &b| tasti_query::desc_nan_last(p[a], p[b]));
    let seq = MeteredLabeler::new(FakeLabeler);
    let seq_res = limit_query(&ranking, &mut |r| value_of(&seq.label(r)) == 3.0, 10, 400);
    for probe_batch in [4u64, 16, 64] {
        let bat = MeteredLabeler::new(FakeLabeler);
        let bat_res = limit_query_batch(
            &ranking,
            &mut |recs| {
                bat.label_batch(recs)
                    .iter()
                    .map(|o| value_of(o) == 3.0)
                    .collect()
            },
            10,
            400,
            probe_batch as usize,
        );
        assert_eq!(bat_res.found, seq_res.found);
        assert!(bat.invocations() >= seq.invocations());
        assert!(bat.invocations() < seq.invocations() + probe_batch);
    }
}

#[test]
fn batched_tune_threshold_is_meter_identical_to_sequential() {
    let p = proxy(400);
    let seq = MeteredLabeler::new(FakeLabeler);
    let seq_res = tune_threshold(&p, &mut |r| value_of(&seq.label(r)) >= 2.0, 100, 7);
    let bat = MeteredLabeler::new(FakeLabeler);
    let bat_res = tune_threshold_batch(
        &p,
        &mut |recs| {
            bat.label_batch(recs)
                .iter()
                .map(|o| value_of(o) >= 2.0)
                .collect()
        },
        100,
        7,
    );
    assert_eq!(bat.invocations(), seq.invocations());
    assert_eq!(bat_res.oracle_calls, seq_res.oracle_calls);
    assert_eq!(bat_res.selected, seq_res.selected);
    assert_eq!(bat_res.threshold, seq_res.threshold);
    assert_eq!(bat_res.telemetry.invocations, seq_res.telemetry.invocations);
}

#[test]
fn batched_predicate_aggregate_is_meter_identical_to_sequential() {
    let p = proxy(400);
    let cfg = PredicateAggConfig {
        budget: 150,
        seed: 7,
        ..Default::default()
    };
    let seq = MeteredLabeler::new(FakeLabeler);
    let seq_res = predicate_aggregate(
        &p,
        &mut |r| {
            let v = value_of(&seq.label(r));
            (v >= 2.0).then_some(v)
        },
        &cfg,
    );
    let bat = MeteredLabeler::new(FakeLabeler);
    let bat_res = predicate_aggregate_batch(
        &p,
        &mut |recs| {
            bat.label_batch(recs)
                .iter()
                .map(|o| {
                    let v = value_of(o);
                    (v >= 2.0).then_some(v)
                })
                .collect()
        },
        &cfg,
    );
    assert_eq!(bat.invocations(), seq.invocations());
    assert_eq!(bat_res.oracle_calls, seq_res.oracle_calls);
    assert_eq!(bat_res.estimate, seq_res.estimate);
    assert_eq!(bat_res.telemetry.invocations, seq_res.telemetry.invocations);
}

// ---------------------------------------------------------------------------
// Fault-aware vs classic identity (acceptance criterion of the fault-tolerant
// oracle path): with fault injection disabled, every `try_*` entry point must
// be bit-identical in its result and meter-identical on a cold cache to the
// classic infallible entry point. The fallible closures route through
// `MeteredLabeler::try_label_batch_fallible`, the exact wiring the serving
// layer uses.
// ---------------------------------------------------------------------------

/// Batch closure body shared by the fault-path audits: label through the
/// fallible metered front door, surfacing faults (a budget error cannot
/// occur — these meters are unbudgeted).
fn fallible_outputs(
    m: &MeteredLabeler<FakeLabeler>,
    recs: &[usize],
) -> Result<Vec<LabelerOutput>, LabelerFault> {
    m.try_label_batch_fallible(recs).map_err(|e| match e {
        LabelerError::Fault(f) => f,
        LabelerError::Budget(b) => panic!("unbudgeted meter reported {b}"),
    })
}

/// Wire form with the (run-dependent) wall-clock zeroed, so two executions
/// of the same deterministic algorithm serialize byte-identically.
fn json_sans_walltime(t: &tasti_query::QueryTelemetry) -> String {
    let mut t = t.clone();
    t.wall_seconds = 0.0;
    t.to_json()
}

#[test]
fn fault_aware_ebs_is_identical_to_classic_without_faults() {
    let p = proxy(400);
    let cfg = AggregationConfig {
        error_target: 0.3,
        seed: 7,
        ..Default::default()
    };
    let plain = MeteredLabeler::new(FakeLabeler);
    let plain_res = ebs_aggregate_batch(
        &p,
        &mut |recs| plain.label_batch(recs).iter().map(value_of).collect(),
        &cfg,
    );
    let faultable = MeteredLabeler::new(FakeLabeler);
    let outcome = try_ebs_aggregate_batch(
        &p,
        &mut |recs| {
            Ok(fallible_outputs(&faultable, recs)?
                .iter()
                .map(value_of)
                .collect())
        },
        &cfg,
    );
    assert!(!outcome.is_degraded());
    let res = outcome.into_result();
    assert_eq!(faultable.invocations(), plain.invocations());
    assert_eq!(faultable.cache_hits(), plain.cache_hits());
    assert_eq!(res.estimate.to_bits(), plain_res.estimate.to_bits());
    assert_eq!(res.samples, plain_res.samples);
    assert_eq!(res.telemetry.invocations, plain_res.telemetry.invocations);
    assert_eq!(res.telemetry.oracle_faults, 0);
    assert!(!res.telemetry.degraded);
    // The wire form is also byte-identical: fault fields are elided.
    assert_eq!(
        json_sans_walltime(&res.telemetry),
        json_sans_walltime(&plain_res.telemetry)
    );
}

#[test]
fn fault_aware_supg_recall_is_identical_to_classic_without_faults() {
    let p = proxy(400);
    let cfg = SupgConfig {
        budget: 120,
        seed: 7,
        ..Default::default()
    };
    let plain = MeteredLabeler::new(FakeLabeler);
    let plain_res = supg_recall_target_batch(
        &p,
        &mut |recs| {
            plain
                .label_batch(recs)
                .iter()
                .map(|o| value_of(o) >= 2.0)
                .collect()
        },
        &cfg,
    );
    let faultable = MeteredLabeler::new(FakeLabeler);
    let outcome = try_supg_recall_target_batch(
        &p,
        &mut |recs| {
            Ok(fallible_outputs(&faultable, recs)?
                .iter()
                .map(|o| value_of(o) >= 2.0)
                .collect())
        },
        &cfg,
    );
    assert!(!outcome.is_degraded());
    let res = outcome.into_result();
    assert_eq!(faultable.invocations(), plain.invocations());
    assert_eq!(res.returned, plain_res.returned);
    assert_eq!(res.threshold.to_bits(), plain_res.threshold.to_bits());
    assert_eq!(res.oracle_calls, plain_res.oracle_calls);
    assert_eq!(
        json_sans_walltime(&res.telemetry),
        json_sans_walltime(&plain_res.telemetry)
    );
}

#[test]
fn fault_aware_supg_precision_is_identical_to_classic_without_faults() {
    let p = proxy(400);
    let cfg = SupgPrecisionConfig {
        budget: 120,
        seed: 7,
        ..Default::default()
    };
    let plain = MeteredLabeler::new(FakeLabeler);
    let plain_res = supg_precision_target_batch(
        &p,
        &mut |recs| {
            plain
                .label_batch(recs)
                .iter()
                .map(|o| value_of(o) >= 2.0)
                .collect()
        },
        &cfg,
    );
    let faultable = MeteredLabeler::new(FakeLabeler);
    let outcome = try_supg_precision_target_batch(
        &p,
        &mut |recs| {
            Ok(fallible_outputs(&faultable, recs)?
                .iter()
                .map(|o| value_of(o) >= 2.0)
                .collect())
        },
        &cfg,
    );
    assert!(!outcome.is_degraded());
    let res = outcome.into_result();
    assert_eq!(faultable.invocations(), plain.invocations());
    assert_eq!(res.returned, plain_res.returned);
    assert_eq!(res.threshold.to_bits(), plain_res.threshold.to_bits());
    assert_eq!(
        json_sans_walltime(&res.telemetry),
        json_sans_walltime(&plain_res.telemetry)
    );
}

#[test]
fn fault_aware_limit_query_is_identical_to_classic_without_faults() {
    let p = proxy(400);
    let mut ranking: Vec<usize> = (0..p.len()).collect();
    ranking.sort_by(|&a, &b| tasti_query::desc_nan_last(p[a], p[b]));
    let plain = MeteredLabeler::new(FakeLabeler);
    let plain_res = limit_query_batch(
        &ranking,
        &mut |recs| {
            plain
                .label_batch(recs)
                .iter()
                .map(|o| value_of(o) == 3.0)
                .collect()
        },
        10,
        400,
        16,
    );
    let faultable = MeteredLabeler::new(FakeLabeler);
    let outcome = try_limit_query_batch(
        &ranking,
        &mut |recs| {
            Ok(fallible_outputs(&faultable, recs)?
                .iter()
                .map(|o| value_of(o) == 3.0)
                .collect())
        },
        10,
        400,
        16,
    );
    assert!(!outcome.is_degraded());
    let res = outcome.into_result();
    assert_eq!(faultable.invocations(), plain.invocations());
    assert_eq!(res.found, plain_res.found);
    assert_eq!(res.satisfied, plain_res.satisfied);
    assert_eq!(
        json_sans_walltime(&res.telemetry),
        json_sans_walltime(&plain_res.telemetry)
    );
}

#[test]
fn fault_aware_predicate_aggregate_is_identical_to_classic_without_faults() {
    let p = proxy(400);
    let cfg = PredicateAggConfig {
        budget: 150,
        seed: 7,
        ..Default::default()
    };
    let plain = MeteredLabeler::new(FakeLabeler);
    let plain_res = predicate_aggregate_batch(
        &p,
        &mut |recs| {
            plain
                .label_batch(recs)
                .iter()
                .map(|o| {
                    let v = value_of(o);
                    (v >= 2.0).then_some(v)
                })
                .collect()
        },
        &cfg,
    );
    let faultable = MeteredLabeler::new(FakeLabeler);
    let outcome = try_predicate_aggregate_batch(
        &p,
        &mut |recs| {
            Ok(fallible_outputs(&faultable, recs)?
                .iter()
                .map(|o| {
                    let v = value_of(o);
                    (v >= 2.0).then_some(v)
                })
                .collect())
        },
        &cfg,
    );
    assert!(!outcome.is_degraded());
    let res = outcome.into_result();
    assert_eq!(faultable.invocations(), plain.invocations());
    assert_eq!(res.estimate.to_bits(), plain_res.estimate.to_bits());
    assert_eq!(res.oracle_calls, plain_res.oracle_calls);
    assert_eq!(
        json_sans_walltime(&res.telemetry),
        json_sans_walltime(&plain_res.telemetry)
    );
}

#[test]
fn batched_paths_bill_distinct_records_once_through_the_meter() {
    // The batch front door's own accounting: duplicates inside one request
    // are cache hits, not extra invocations — matching what the sequential
    // loop would have billed.
    let m = MeteredLabeler::new(FakeLabeler);
    let outputs = m.label_batch(&[3, 1, 3, 2, 1, 3]);
    assert_eq!(outputs.len(), 6);
    assert_eq!(m.invocations(), 3);
    assert_eq!(m.cache_hits(), 3);
    assert_eq!(outputs[0], outputs[2]);
    assert_eq!(outputs[1], outputs[4]);
}

#[test]
fn warm_cache_makes_the_meter_the_authoritative_ledger() {
    // The algorithms see only an oracle closure, so their telemetry counts
    // distinct records *consulted* — on a cold cache (every test above)
    // that equals the meter delta exactly. On a warm cache the records are
    // already paid for: the meter delta drops to zero while the telemetry
    // still reports the consultation count. Cost accounting must therefore
    // read the meter, never sum telemetry across queries — the amortized
    // convention of Table 1.
    let m = MeteredLabeler::new(FakeLabeler);
    let p = proxy(200);
    let mut run = || tune_threshold(&p, &mut |r| value_of(&m.label(r)) >= 2.0, 80, 3);
    let first = run();
    assert_eq!(first.telemetry.invocations, 80);
    assert_eq!(m.invocations(), 80); // cold cache: ledgers agree
    let second = run();
    assert_eq!(second.telemetry.invocations, 80);
    assert_eq!(m.invocations(), 80); // warm cache: the meter did not move
}
