//! Criterion benchmarks for index construction and query-time hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tasti_core::scoring::CountClass;
use tasti_core::{build_index, TastiConfig, TastiIndex};
use tasti_data::video::night_street;
use tasti_data::{OracleLabeler, PretrainedEmbedder};
use tasti_labeler::{MeteredLabeler, ObjectClass, VideoCloseness};
use tasti_nn::TripletConfig;

fn built_index(n: usize) -> (tasti_data::Dataset, TastiIndex) {
    let p = night_street(n, 11);
    let dataset = p.dataset;
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
    let config = TastiConfig {
        n_train: 100,
        n_reps: 200,
        embedding_dim: 16,
        triplet: TripletConfig {
            steps: 100,
            batch_size: 16,
            margin: 0.3,
            ..Default::default()
        },
        ..TastiConfig::default()
    };
    let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 1);
    let pretrained = pt.embed_all(&dataset.features);
    let (index, _) = build_index(
        &dataset.features,
        &pretrained,
        &labeler,
        &VideoCloseness::default(),
        &config,
    )
    .unwrap();
    (dataset, index)
}

fn bench_build(c: &mut Criterion) {
    let p = night_street(2_000, 11);
    let dataset = p.dataset;
    let config = TastiConfig {
        n_train: 100,
        n_reps: 200,
        embedding_dim: 16,
        triplet: TripletConfig {
            steps: 100,
            batch_size: 16,
            margin: 0.3,
            ..Default::default()
        },
        ..TastiConfig::default()
    };
    let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 1);
    let pretrained = pt.embed_all(&dataset.features);
    c.bench_function("build_index_2k_frames", |b| {
        b.iter(|| {
            let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
            build_index(
                black_box(&dataset.features),
                black_box(&pretrained),
                &labeler,
                &VideoCloseness::default(),
                &config,
            )
            .unwrap()
        })
    });
}

fn bench_propagate(c: &mut Criterion) {
    let (_dataset, index) = built_index(4_000);
    let score = CountClass(ObjectClass::Car);
    c.bench_function("propagate_4k_records_k5", |b| {
        b.iter(|| index.propagate(black_box(&score)))
    });
    c.bench_function("limit_ranking_4k_records", |b| {
        b.iter(|| index.limit_ranking(black_box(&score)))
    });
}

fn bench_crack(c: &mut Criterion) {
    let (dataset, index) = built_index(4_000);
    let fresh: Vec<usize> = (0..4_000).filter(|r| !index.is_rep(*r)).take(64).collect();
    c.bench_function("crack_64_reps_into_4k_index", |b| {
        b.iter_batched(
            || index.clone(),
            |mut idx| {
                for &r in &fresh {
                    idx.crack(r, dataset.ground_truth(r).clone());
                }
                idx
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_propagate, bench_crack
}
criterion_main!(benches);
