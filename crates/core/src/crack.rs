//! Index cracking (§3.3).
//!
//! "When any query executes the target labeler on a data record, TASTI can
//! cache the target labeler result. The records over which the target
//! labeler are executed can then be added as new cluster representatives."
//!
//! [`crack_from_labeler`] sweeps a metered labeler's cache after a query and
//! registers every newly labeled record as a representative; the min-k
//! distance columns are extended incrementally (`O(N·d)` per new
//! representative — "computationally efficient and trivially
//! parallelizable").

use crate::index::{CrackReport, TastiIndex};
use tasti_labeler::MeteredLabeler;

/// Adds every record the labeler has annotated (typically during a query)
/// that is not yet a representative. Returns how many representatives were
/// added.
///
/// Only the meter's bookkeeping (cache sweep) is touched, so any wrapped
/// labeler qualifies — including fallible ones mid-incident: cracking after
/// a degraded query absorbs exactly the labels that were actually paid for.
pub fn crack_from_labeler<L>(index: &mut TastiIndex, labeler: &MeteredLabeler<L>) -> usize {
    crack_from_labeler_audited(index, labeler).added
}

/// [`crack_from_labeler`] with the maintenance decision made visible: the
/// returned [`CrackReport`] says whether the batch escalated from
/// incremental min-k appends to a full assignment rebuild (serving
/// metrics surface the split as `crack_incremental` / `crack_rebuilds`).
pub fn crack_from_labeler_audited<L>(
    index: &mut TastiIndex,
    labeler: &MeteredLabeler<L>,
) -> CrackReport {
    let mut records = labeler.labeled_records();
    records.sort_unstable(); // deterministic insertion order
    let items = records
        .into_iter()
        .filter(|&rec| !index.is_rep(rec))
        .map(|rec| {
            let output = labeler
                .cached(rec)
                .expect("labeled_records returned an uncached record");
            (rec, output)
        });
    // One batched maintenance step: large indexes whose ANN router was
    // invalidated by the rep-set growth get it rebuilt once at the end
    // instead of degrading to exact appends (see TastiIndex::crack_batch).
    let items: Vec<_> = items.collect();
    index.crack_batch_audited(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::config::TastiConfig;
    use crate::scoring::{CountClass, ScoringFunction};
    use tasti_data::video::night_street;
    use tasti_data::{OracleLabeler, PretrainedEmbedder};
    use tasti_labeler::{ObjectClass, VideoCloseness};
    use tasti_nn::metrics::{mae, rho_squared};
    use tasti_nn::TripletConfig;

    fn setup() -> (
        tasti_data::Dataset,
        MeteredLabeler<OracleLabeler>,
        TastiIndex,
    ) {
        let preset = night_street(1000, 17);
        let dataset = preset.dataset;
        let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
        let config = TastiConfig {
            n_train: 50,
            n_reps: 80,
            embedding_dim: 8,
            triplet: TripletConfig {
                steps: 120,
                batch_size: 16,
                margin: 0.3,
                ..Default::default()
            },
            ..TastiConfig::default()
        };
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let (index, _) = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .unwrap();
        (dataset, labeler, index)
    }

    #[test]
    fn cracking_adds_only_new_records() {
        let (_dataset, labeler, mut index) = setup();
        // Construction leaves training-point annotations in the cache that
        // were not selected as representatives; the first crack absorbs them.
        let absorbed = crack_from_labeler(&mut index, &labeler);
        assert!(absorbed > 0, "training annotations should be crackable");
        let reps_before = index.reps().len();
        // Nothing new labeled since → no-op.
        assert_eq!(crack_from_labeler(&mut index, &labeler), 0);
        // Simulate a query touching 30 fresh records.
        let fresh: Vec<usize> = (0..1000).filter(|r| !index.is_rep(*r)).take(30).collect();
        for &r in &fresh {
            let _ = labeler.label(r);
        }
        assert_eq!(crack_from_labeler(&mut index, &labeler), 30);
        assert_eq!(index.reps().len(), reps_before + 30);
        // Idempotent.
        assert_eq!(crack_from_labeler(&mut index, &labeler), 0);
    }

    #[test]
    fn cracking_improves_proxy_quality() {
        let (dataset, labeler, mut index) = setup();
        let score_fn = CountClass(ObjectClass::Car);
        let truth = dataset.true_scores(|o| score_fn.score(o));
        let before_scores = index.propagate(&score_fn);
        let before_mae = mae(&before_scores, &truth);
        let before_rho = rho_squared(&before_scores, &truth);
        // A query labels 200 additional spread-out records.
        for r in (0..1000).step_by(5) {
            let _ = labeler.label(r);
        }
        let added = crack_from_labeler(&mut index, &labeler);
        assert!(added > 100);
        let after_scores = index.propagate(&score_fn);
        let after_mae = mae(&after_scores, &truth);
        let after_rho = rho_squared(&after_scores, &truth);
        assert!(
            after_mae <= before_mae * 1.02,
            "cracking should not hurt MAE: {before_mae} → {after_mae}"
        );
        assert!(
            after_rho >= before_rho - 0.02,
            "cracking should not hurt ρ²: {before_rho} → {after_rho}"
        );
        // Cracked records now score exactly.
        for r in (0..1000).step_by(5) {
            assert_eq!(
                after_scores[r], truth[r],
                "record {r} should be exact after cracking"
            );
        }
    }

    #[test]
    fn cover_radius_monotonically_shrinks_under_cracking() {
        let (_dataset, labeler, mut index) = setup();
        let mut prev = index.cover_radius();
        for r in [3usize, 77, 401, 888] {
            if index.is_rep(r) {
                continue;
            }
            let _ = labeler.label(r);
            crack_from_labeler(&mut index, &labeler);
            let now = index.cover_radius();
            assert!(now <= prev + 1e-7, "cover radius grew: {prev} → {now}");
            prev = now;
        }
    }
}
