//! Index diagnostics: self-assessment without ground truth.
//!
//! A production index needs to answer "how good are my proxy scores for
//! this query?" *before* spending target-labeler budget. The only labeled
//! records an index owns are its cluster representatives, so diagnostics
//! are computed by **leave-one-out cross-validation over the
//! representatives**: each representative's score is re-predicted from its
//! `k` nearest *other* representatives, and the predicted-vs-exact
//! agreement estimates downstream proxy quality. The same machinery reports
//! structural statistics (cover radius distribution, cluster sizes, bucket
//! purity) that §5's analysis ties to query accuracy.
//!
//! **Bias note:** the LOO estimate is systematically *pessimistic*. FPF
//! selects representatives to be maximally far apart, so each one is
//! harder to predict from its peers than a typical record is from its
//! nearest representatives. Treat the estimate as a conservative lower
//! bound; crucially, it preserves *ordering* between candidate indexes
//! (e.g. TASTI-T vs TASTI-PT, or different budgets), which is what
//! index-selection decisions need.

use crate::index::TastiIndex;
use crate::propagate::weighted_mean;
use crate::scoring::ScoringFunction;
use serde::Serialize;
use tasti_cluster::{MinKTable, Neighbor};
use tasti_nn::metrics::{mae, rho_squared};

/// Leave-one-out proxy-quality estimate for one scoring function.
#[derive(Debug, Clone, Serialize)]
pub struct LooQuality {
    /// Squared correlation between LOO-predicted and exact representative
    /// scores — a *conservative* estimate of the deployed proxy's ρ²
    /// (see the module docs for why it under-reports).
    pub rho_squared: f64,
    /// Mean absolute LOO prediction error.
    pub mae: f64,
    /// Number of representatives evaluated.
    pub n_reps: usize,
}

/// Structural statistics of an index.
#[derive(Debug, Clone, Serialize)]
pub struct IndexStats {
    /// Number of records.
    pub n_records: usize,
    /// Number of representatives.
    pub n_reps: usize,
    /// Max record-to-nearest-rep distance (§5's density quantity).
    pub cover_radius: f32,
    /// Mean record-to-nearest-rep distance.
    pub mean_nearest_distance: f32,
    /// Records assigned (by nearest rep) to the largest cluster.
    pub largest_cluster: usize,
    /// Fraction of representatives that are some record's nearest rep
    /// (representatives with empty clusters indicate over-provisioning in
    /// dense regions).
    pub active_rep_fraction: f64,
}

/// Computes structural statistics.
pub fn index_stats(index: &TastiIndex) -> IndexStats {
    let mink = index.mink();
    let n_reps = index.reps().len();
    let mut cluster_sizes = vec![0usize; n_reps];
    for rec in 0..mink.n_records() {
        cluster_sizes[mink.nearest(rec).rep as usize] += 1;
    }
    let largest_cluster = cluster_sizes.iter().copied().max().unwrap_or(0);
    let active = cluster_sizes.iter().filter(|&&c| c > 0).count();
    IndexStats {
        n_records: index.n_records(),
        n_reps,
        cover_radius: mink.max_nearest_distance(),
        mean_nearest_distance: mink.mean_nearest_distance(),
        largest_cluster,
        active_rep_fraction: active as f64 / n_reps.max(1) as f64,
    }
}

/// Estimates the proxy quality the index would deliver for `score_fn` via
/// leave-one-out cross-validation over the representatives — **zero target
/// labeler invocations**.
pub fn loo_quality(index: &TastiIndex, score_fn: &dyn ScoringFunction) -> LooQuality {
    let reps = index.reps();
    let n_reps = reps.len();
    let exact = index.rep_scores(score_fn);
    if n_reps < 3 {
        return LooQuality {
            rho_squared: 0.0,
            mae: f64::NAN,
            n_reps,
        };
    }
    // Min-k table over the representatives themselves (k+1 so each rep can
    // drop itself from its own neighbor list).
    let dim = index.embedding_dim();
    let rep_flat: Vec<f32> = reps
        .iter()
        .flat_map(|&r| index.embeddings().row(r).iter().copied())
        .collect();
    let k = index.k();
    let table = MinKTable::build_parallel(&rep_flat, &rep_flat, dim, k + 1, index.metric(), 0);
    let mut predicted = Vec::with_capacity(n_reps);
    let mut others: Vec<Neighbor> = Vec::with_capacity(k + 1);
    for i in 0..n_reps {
        others.clear();
        others.extend(
            table
                .neighbors(i)
                .iter()
                .filter(|n| n.rep as usize != i)
                .copied(),
        );
        predicted.push(weighted_mean(&others, &exact, k));
    }
    LooQuality {
        rho_squared: rho_squared(&predicted, &exact),
        mae: mae(&predicted, &exact),
        n_reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::config::TastiConfig;
    use crate::scoring::CountClass;
    use tasti_data::video::night_street;
    use tasti_data::{OracleLabeler, PretrainedEmbedder};
    use tasti_labeler::{MeteredLabeler, ObjectClass, VideoCloseness};
    use tasti_nn::TripletConfig;

    fn build(n: usize, seed: u64, train: bool) -> (tasti_data::Dataset, TastiIndex) {
        let p = night_street(n, seed);
        let dataset = p.dataset;
        let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
        let mut config = TastiConfig {
            n_train: 120,
            n_reps: 220,
            embedding_dim: 16,
            triplet: TripletConfig {
                steps: 150,
                batch_size: 24,
                margin: 0.3,
                ..Default::default()
            },
            seed,
            ..TastiConfig::default()
        };
        if !train {
            config = config.pretrained_only();
        }
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 5);
        let pretrained = pt.embed_all(&dataset.features);
        let (index, _) = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .unwrap();
        (dataset, index)
    }

    #[test]
    fn stats_reflect_index_shape() {
        let (_, index) = build(1_500, 41, true);
        let stats = index_stats(&index);
        assert_eq!(stats.n_records, 1_500);
        assert_eq!(stats.n_reps, 220);
        assert!(stats.cover_radius > 0.0);
        assert!(stats.mean_nearest_distance <= stats.cover_radius);
        assert!(stats.largest_cluster >= 1_500 / 220);
        assert!(stats.active_rep_fraction > 0.5);
    }

    #[test]
    fn loo_estimate_tracks_true_proxy_quality() {
        let (dataset, index) = build(1_500, 43, true);
        let score = CountClass(ObjectClass::Car);
        let est = loo_quality(&index, &score);
        let proxy = index.propagate(&score);
        let truth = dataset.true_scores(|o| score.score(o));
        let true_rho2 = rho_squared(&proxy, &truth);
        assert!(est.n_reps == 220);
        // Conservative lower bound: meaningfully positive, rarely above the
        // true quality (FPF reps are the hardest records to predict).
        assert!(
            est.rho_squared > 0.25,
            "LOO estimate should be informative: {:.3}",
            est.rho_squared
        );
        assert!(
            est.rho_squared <= true_rho2 + 0.15,
            "LOO estimate {:.3} should not exceed true ρ² {:.3} by much",
            est.rho_squared,
            true_rho2
        );
        assert!(est.mae.is_finite());
    }

    #[test]
    fn loo_ranks_trained_above_untrained_embeddings() {
        // The diagnostic must reproduce the TASTI-T > TASTI-PT ordering
        // without ever touching ground truth.
        let (_, trained) = build(1_500, 47, true);
        let (_, untrained) = build(1_500, 47, false);
        let score = CountClass(ObjectClass::Car);
        let q_t = loo_quality(&trained, &score);
        let q_pt = loo_quality(&untrained, &score);
        // Statistical margin: each ρ² is estimated from 220 LOO reps, so
        // its standard error is roughly (1 - ρ²) / √220 ≈ 0.07 at the
        // mid-range values this fixture produces. The trained index should
        // win on average, but a single seed can land the difference inside
        // sampling noise — allow ~2 SE (0.15) so the ordering check stays
        // meaningful without being seed-sensitive.
        assert!(
            q_t.rho_squared > q_pt.rho_squared - 0.15,
            "LOO should not rank TASTI-T below TASTI-PT: {:.3} vs {:.3}",
            q_t.rho_squared,
            q_pt.rho_squared
        );
    }

    #[test]
    fn tiny_index_degrades_gracefully() {
        use tasti_cluster::{Metric, MinKTable};
        use tasti_labeler::LabelerOutput;
        use tasti_nn::Matrix;
        let embeddings = Matrix::from_fn(2, 1, |r, _| r as f32);
        let mink = MinKTable::build(embeddings.as_slice(), &[0.0], 1, 1, Metric::L2);
        let index = TastiIndex::new(
            embeddings,
            Metric::L2,
            1,
            vec![0],
            vec![LabelerOutput::Detections(vec![])],
            mink,
        );
        let q = loo_quality(&index, &CountClass(ObjectClass::Car));
        assert_eq!(q.rho_squared, 0.0);
        assert!(q.mae.is_nan());
    }
}
