//! Index construction — Algorithm 1 of the paper.
//!
//! ```text
//! function Make TASTI index(X, N₁, N₂, k)
//!     PretrainedEmbeddings[i] ← PretrainedModel(X[i])
//!     TrainingPoints        ← FPF(PretrainedEmbeddings, N₁)
//!     TripletModel          ← Finetune(TrainingPoints, PretrainedModel)
//!     Embeddings[i]         ← TripletModel(X[i])
//!     ClusterRepresentatives ← FPF(Embeddings, N₂)
//!     MinKDistances[i]      ← ClosestKDistances(X[i], ClusterRepresentatives, k)
//!     return ClusterRepresentatives, MinKDistances
//! ```
//!
//! Every stage is timed and its target-labeler invocations are recorded,
//! which is what Figure 2's construction-cost breakdown plots. The
//! `mining` / `clustering` / `train_embedding` switches in
//! [`TastiConfig`](crate::TastiConfig) turn individual stages off or replace
//! FPF with random selection for the factor analysis and lesion study
//! (Figures 9–10).

use crate::config::TastiConfig;
use crate::index::TastiIndex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use tasti_cluster::{kernels, select_threaded, AssignStats, MinKTable};
use tasti_labeler::{
    BatchTargetLabeler, BudgetExhausted, ClosenessFn, FallibleTargetLabeler, LabelerError,
    LabelerFault, MeteredLabeler,
};
use tasti_nn::train::fit_triplet;
use tasti_nn::{Adam, Matrix, Mlp, MlpConfig};
use tasti_obs::{AssignTelemetry, BuildTelemetry, StageRecorder, StageTelemetry};

/// Bridges the cluster crate's assignment stats into the dependency-free
/// telemetry record the bench runner serializes.
fn assign_telemetry(stats: &AssignStats) -> AssignTelemetry {
    AssignTelemetry {
        strategy: stats.strategy.to_string(),
        n_records: stats.n_records as u64,
        n_reps: stats.n_reps as u64,
        n_cells: stats.n_cells as u64,
        nprobe: stats.nprobe as u64,
        quant: stats.quant.to_string(),
        candidate_mean: stats.candidate_mean(),
        candidate_min: stats.candidate_min as u64,
        candidate_max: stats.candidate_max as u64,
        probe_widenings: stats.probe_widenings,
        exact_fallback: stats.exact_fallback,
        audited_records: stats.audited_records as u64,
        audited_recall: stats.audited_recall,
        seconds: stats.seconds,
    }
}

/// One timed construction stage — an alias of the shared telemetry record;
/// the per-stage accounting convention lives in `tasti-obs`.
pub type BuildStage = StageTelemetry;

/// Why a build could not complete: the labeler's hard budget ran out, or a
/// live oracle faulted unrecoverably mid-annotation. Index construction has
/// no meaningful partial answer (a half-annotated representative set is not
/// an index), so faults abort the build rather than degrade it — callers
/// retry once the oracle recovers, and the meter's cache makes the retry
/// resume where the failed build stopped paying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The configured annotation budget cannot cover `N₁ + N₂` labels.
    Budget(BudgetExhausted),
    /// The oracle faulted after retries (or fatally) during an annotation
    /// stage. The named stage had completed `labels_completed` labels —
    /// all of which remain cached and billed exactly once.
    Fault {
        /// The construction stage that was annotating when the fault hit.
        stage: &'static str,
        /// The unrecoverable fault, as surfaced below the meter.
        fault: LabelerFault,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Budget(b) => write!(f, "index build aborted: {b}"),
            BuildError::Fault { stage, fault } => {
                write!(f, "index build aborted during `{stage}`: {fault}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<BudgetExhausted> for BuildError {
    fn from(b: BudgetExhausted) -> Self {
        BuildError::Budget(b)
    }
}

/// Construction report: the data behind Figure 2 and Figure 3's x-axis.
#[derive(Debug, Clone, Serialize)]
pub struct BuildReport {
    /// Per-stage timings and invocation counts.
    pub stages: Vec<BuildStage>,
    /// Final mean triplet loss (NaN when training was skipped).
    pub triplet_loss: f32,
    /// Total distinct target-labeler invocations for construction.
    pub total_invocations: u64,
    /// Number of records indexed.
    pub n_records: usize,
    /// Number of embedding-model forward rows during training
    /// (`L` in the §3.4 cost model).
    pub training_forward_rows: u64,
    /// Record-to-representative distance computations (`N·C` term of §3.4).
    /// With an IVF assignment this is the realized candidate total, not the
    /// brute-force product.
    pub distance_computations: u64,
    /// Rep-assignment accounting for the `distances` stage (strategy,
    /// candidate-pool sizes, audited recall).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub assign: Option<AssignTelemetry>,
}

impl BuildReport {
    /// Total wall-clock seconds across stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Invocations of a named stage (0 if absent).
    pub fn stage_invocations(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.labeler_invocations)
            .sum()
    }

    /// The build's stage accounting as a shared [`BuildTelemetry`] record
    /// (what the bench runner serializes into `results/*.json`).
    pub fn telemetry(&self) -> BuildTelemetry {
        let t = BuildTelemetry::from_stages(self.stages.clone());
        match &self.assign {
            Some(a) => t.with_assign(a.clone()),
            None => t,
        }
    }
}

/// Embeds all rows of `features` through `net`, splitting the batch across
/// threads via the shared kernel fan-out (`threads = 0` = available
/// parallelism). Deterministic: rows are processed independently and
/// written back in order.
fn parallel_embed(net: &Mlp, features: &Matrix, threads: usize) -> Matrix {
    let n = features.rows();
    let threads = kernels::resolve_threads(threads);
    if threads <= 1 || n < 2 * threads {
        return net.forward_ref(features);
    }
    let mut out = Matrix::zeros(n, net.output_dim());
    let out_cols = out.cols();
    let feat_cols = features.cols();
    kernels::par_map_row_chunks(out.as_mut_slice(), out_cols, threads, |start, block| {
        let rows = block.len() / out_cols;
        let rows_idx: Vec<usize> = (start..start + rows).collect();
        let chunk = features.select_rows(&rows_idx);
        debug_assert_eq!(chunk.cols(), feat_cols);
        let emb = net.forward_ref(&chunk);
        block.copy_from_slice(emb.as_slice());
    });
    out
}

/// Builds a [`TastiIndex`] over a dataset (Algorithm 1).
///
/// * `features` — raw record features (the embedding model's input).
/// * `pretrained` — pre-computed pre-trained embeddings (Algorithm 1 line 1;
///   also the final embeddings for TASTI-PT).
/// * `labeler` — the metered target labeler; training points and cluster
///   representatives are annotated through it (each annotation stage is one
///   batched inner call), so its meter reflects construction cost
///   afterwards.
/// * `closeness` — the user's closeness function, used to bucket training
///   annotations for triplet construction (§3.1).
///
/// # Errors
/// Propagates [`BudgetExhausted`] if the labeler's hard budget cannot cover
/// the configured `N₁ + N₂` annotations.
pub fn build_index<L: BatchTargetLabeler>(
    features: &Matrix,
    pretrained: &Matrix,
    labeler: &MeteredLabeler<L>,
    closeness: &dyn ClosenessFn,
    config: &TastiConfig,
) -> Result<(TastiIndex, BuildReport), BudgetExhausted> {
    match try_build_index(features, pretrained, labeler, closeness, config) {
        Ok(built) => Ok(built),
        Err(BuildError::Budget(b)) => Err(b),
        // The blanket fallible impl over infallible labelers never faults.
        Err(BuildError::Fault { stage, fault }) => {
            panic!("infallible labeler faulted during `{stage}`: {fault}")
        }
    }
}

/// Fault-aware [`build_index`]: accepts any [`FallibleTargetLabeler`]
/// (a [`tasti_labeler::ResilientLabeler`] over a live oracle, a
/// [`tasti_labeler::FaultInjectingLabeler`] in chaos tests) and surfaces
/// unrecoverable faults as a typed [`BuildError`] instead of panicking.
///
/// Labels completed before the fault stay cached and billed exactly once
/// (the meter releases the faulted call's reservation), so retrying the
/// build after recovery pays only for what is still missing.
pub fn try_build_index<L: FallibleTargetLabeler>(
    features: &Matrix,
    pretrained: &Matrix,
    labeler: &MeteredLabeler<L>,
    closeness: &dyn ClosenessFn,
    config: &TastiConfig,
) -> Result<(TastiIndex, BuildReport), BuildError> {
    assert_eq!(
        features.rows(),
        pretrained.rows(),
        "features/pretrained row mismatch"
    );
    assert!(features.rows() > 0, "cannot index an empty dataset");
    let n = features.rows();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    // Per-stage wall-clock + labeler-invocation deltas; the recorder's
    // stage list sums exactly to the meter's total by construction.
    let mut rec = StageRecorder::new();
    let mut triplet_loss = f32::NAN;
    let mut training_forward_rows = 0u64;

    // ── Stage 1+2: mine training points on pre-trained embeddings and
    //    annotate them (skipped entirely for TASTI-PT: no training → no
    //    training labels).
    let (embeddings, trained_model) = if config.train_embedding {
        rec.start("mining", labeler.invocations());
        let mining = select_threaded(
            pretrained.as_slice(),
            pretrained.cols(),
            config.n_train.min(n),
            config.metric,
            config.mining,
            0,
            &mut rng,
            config.threads,
        );
        rec.finish(labeler.invocations());

        // Annotate and bucket the training points (§3.1). FPF-selected
        // records are distinct, so the whole stage is one batched inner
        // call — meter-identical to labeling them one by one.
        rec.start("annotate-train", labeler.invocations());
        let outputs = labeler
            .try_label_batch_fallible(&mining.selected)
            .map_err(|e| match e {
                LabelerError::Budget(b) => BuildError::Budget(b),
                LabelerError::Fault(fault) => BuildError::Fault {
                    stage: "annotate-train",
                    fault,
                },
            })?;
        let mut buckets = Vec::with_capacity(mining.selected.len());
        let mut bucket_ids: std::collections::HashMap<u64, usize> = Default::default();
        for out in &outputs {
            let key = closeness.bucket(out);
            let next = bucket_ids.len();
            buckets.push(*bucket_ids.entry(key).or_insert(next));
        }
        rec.finish(labeler.invocations());

        // ── Stage 3: triplet fine-tuning (§3.1) over the raw features of
        //    the mined records.
        rec.start("triplet-train", labeler.invocations());
        let train_features = features.select_rows(&mining.selected);
        let mlp_config = MlpConfig::embedding(features.cols(), config.embedding_dim);
        let mut net = Mlp::new(&mlp_config, &mut rng);
        let mut opt = Adam::new(3e-3);
        let report = fit_triplet(
            &mut net,
            &train_features,
            &buckets,
            &config.triplet,
            &mut opt,
            &mut rng,
        );
        triplet_loss = report.final_loss;
        training_forward_rows = (report.steps * config.triplet.batch_size * 3) as u64;
        rec.finish(labeler.invocations());

        // ── Stage 4: embed every record with the fine-tuned model
        //    (fanned out across threads; §3.4 notes embedding all records is
        //    a first-order construction cost).
        rec.start("embed", labeler.invocations());
        let emb = parallel_embed(&net, features, config.threads);
        rec.finish(labeler.invocations());
        (emb, Some(net))
    } else {
        // TASTI-PT: the pre-trained embeddings are the index embeddings.
        (pretrained.clone(), None)
    };

    // ── Stage 5: select cluster representatives (§3.2).
    rec.start("cluster", labeler.invocations());
    let clustering = select_threaded(
        embeddings.as_slice(),
        embeddings.cols(),
        config.n_reps.min(n),
        config.metric,
        config.clustering,
        0,
        &mut rng,
        config.threads,
    );
    rec.finish(labeler.invocations());

    // ── Stage 6: annotate the representatives — one batched inner call
    //    (training-point overlap is served from the labeler's cache).
    rec.start("annotate-reps", labeler.invocations());
    let rep_outputs = labeler
        .try_label_batch_fallible(&clustering.selected)
        .map_err(|e| match e {
            LabelerError::Budget(b) => BuildError::Budget(b),
            LabelerError::Fault(fault) => BuildError::Fault {
                stage: "annotate-reps",
                fault,
            },
        })?;
    rec.finish(labeler.invocations());

    // ── Stage 7: min-k distance table.
    rec.start("distances", labeler.invocations());
    let rep_embeddings: Vec<f32> = clustering
        .selected
        .iter()
        .flat_map(|&r| embeddings.row(r).iter().copied())
        .collect();
    let (mink, assign_stats) = MinKTable::build_with_strategy(
        embeddings.as_slice(),
        &rep_embeddings,
        embeddings.cols(),
        config.k,
        config.metric,
        config.threads, // 0 = auto; per-record work is independent and deterministic
        &config.assign_strategy,
    );
    rec.finish(labeler.invocations());

    let stages = rec.into_stages();
    let distance_computations = assign_stats.candidate_total;
    let total_invocations = stages.iter().map(|s| s.labeler_invocations).sum();
    let report = BuildReport {
        stages,
        triplet_loss,
        total_invocations,
        n_records: n,
        training_forward_rows,
        distance_computations,
        assign: Some(assign_telemetry(&assign_stats)),
    };
    let mut index = TastiIndex::new(
        embeddings,
        config.metric,
        config.k,
        clustering.selected,
        rep_outputs,
        mink,
    )
    .with_assign_strategy(config.assign_strategy);
    if let Some(net) = trained_model {
        // Carrying the trained model enables streaming ingest of new
        // records (TastiIndex::append_records).
        index = index.with_model(net);
    }
    Ok((index, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{CountClass, ScoringFunction};
    use tasti_cluster::SelectionStrategy;
    use tasti_data::video::night_street;
    use tasti_data::{OracleLabeler, PretrainedEmbedder};
    use tasti_labeler::{FaultInjectingLabeler, FaultKind, FaultPlan, ObjectClass, VideoCloseness};
    use tasti_nn::metrics::rho_squared;
    use tasti_nn::TripletConfig;

    fn small_config() -> TastiConfig {
        TastiConfig {
            n_train: 60,
            n_reps: 120,
            k: 5,
            embedding_dim: 8,
            triplet: TripletConfig {
                steps: 150,
                batch_size: 16,
                margin: 0.3,
                ..Default::default()
            },
            ..TastiConfig::default()
        }
    }

    fn build_night_street(
        config: &TastiConfig,
    ) -> (
        tasti_data::Dataset,
        MeteredLabeler<OracleLabeler>,
        TastiIndex,
        BuildReport,
    ) {
        let preset = night_street(1200, 42);
        let dataset = preset.dataset;
        let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let (index, report) = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            config,
        )
        .expect("unbudgeted build cannot fail");
        (dataset, labeler, index, report)
    }

    #[test]
    fn build_produces_configured_shape() {
        let config = small_config();
        let (dataset, labeler, index, report) = build_night_street(&config);
        assert_eq!(index.n_records(), dataset.len());
        assert_eq!(index.reps().len(), config.n_reps);
        assert_eq!(index.embedding_dim(), config.embedding_dim);
        // Invocation accounting: ≤ N₁ + N₂ (overlap dedupes), > 0.
        assert!(report.total_invocations <= (config.n_train + config.n_reps) as u64);
        assert!(report.total_invocations > 0);
        assert_eq!(report.total_invocations, labeler.invocations());
        assert!(report.total_seconds() > 0.0);
        assert!(report.triplet_loss.is_finite());
    }

    #[test]
    fn rep_outputs_match_ground_truth() {
        let config = small_config();
        let (dataset, _labeler, index, _report) = build_night_street(&config);
        for (i, &rec) in index.reps().iter().enumerate() {
            assert_eq!(index.rep_output(i), dataset.ground_truth(rec));
        }
    }

    #[test]
    fn trained_proxy_scores_correlate_with_truth() {
        let config = small_config();
        let (dataset, _labeler, index, _report) = build_night_street(&config);
        let score_fn = CountClass(ObjectClass::Car);
        let proxy = index.propagate(&score_fn);
        let truth = dataset.true_scores(|o| score_fn.score(o));
        let rho2 = rho_squared(&proxy, &truth);
        assert!(
            rho2 > 0.3,
            "trained index proxy should correlate with truth: ρ² = {rho2}"
        );
    }

    #[test]
    fn pretrained_build_skips_training_stages_and_labels() {
        let config = small_config().pretrained_only();
        let (_dataset, labeler, index, report) = build_night_street(&config);
        assert!(report.triplet_loss.is_nan());
        assert_eq!(report.stage_invocations("annotate-train"), 0);
        assert_eq!(labeler.invocations(), config.n_reps as u64);
        assert_eq!(index.reps().len(), config.n_reps);
        assert!(report.stages.iter().all(|s| s.name != "triplet-train"));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let preset = night_street(400, 7);
        let dataset = preset.dataset;
        let labeler =
            MeteredLabeler::with_budget(OracleLabeler::mask_rcnn(dataset.truth_handle()), 10);
        let config = small_config();
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let result = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        );
        assert_eq!(result.err(), Some(BudgetExhausted { budget: 10 }));
    }

    #[test]
    fn random_ablation_builds_successfully() {
        let config = TastiConfig {
            mining: SelectionStrategy::Random,
            clustering: SelectionStrategy::Random,
            ..small_config()
        };
        let (_dataset, _labeler, index, _report) = build_night_street(&config);
        assert_eq!(index.reps().len(), config.n_reps);
    }

    #[test]
    fn build_is_deterministic_given_seed() {
        let config = small_config();
        let (_d1, _l1, i1, _r1) = build_night_street(&config);
        let (_d2, _l2, i2, _r2) = build_night_street(&config);
        assert_eq!(i1.reps(), i2.reps());
        assert_eq!(i1.embeddings(), i2.embeddings());
    }

    #[test]
    fn telemetry_totals_match_the_meter_exactly() {
        let config = small_config();
        let (_d, labeler, _i, report) = build_night_street(&config);
        let t = report.telemetry();
        assert_eq!(t.total_invocations, labeler.invocations());
        assert_eq!(t.stages.len(), report.stages.len());
        assert!((t.total_seconds - report.total_seconds()).abs() < 1e-12);
        assert_eq!(
            t.stage_invocations("annotate-reps"),
            report.stage_invocations("annotate-reps")
        );
        // The dep-free serializer produces a parseable JSON object.
        let json = t.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(
            parsed["total_invocations"].as_u64(),
            Some(labeler.invocations())
        );
    }

    #[test]
    fn oracle_fault_aborts_the_build_with_stage_context() {
        // Pretrained-only build: the sole annotation stage is annotate-reps,
        // and the scripted fault hits its one batched call.
        let preset = night_street(400, 7);
        let dataset = preset.dataset;
        let inner = FaultInjectingLabeler::with_script(
            OracleLabeler::mask_rcnn(dataset.truth_handle()),
            FaultPlan::default(),
            [Some(FaultKind::Fatal)],
        );
        let labeler = MeteredLabeler::new(inner);
        let config = small_config().pretrained_only();
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let err = try_build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .expect_err("scripted fatal fault must abort the build");
        match err {
            BuildError::Fault { stage, .. } => assert_eq!(stage, "annotate-reps"),
            other => panic!("expected an oracle fault, got {other:?}"),
        }
        // The faulted batch billed nothing and left no reservation behind.
        assert_eq!(labeler.invocations(), 0);
        assert_eq!(labeler.reserved(), 0);
    }

    #[test]
    fn retrying_after_a_fault_resumes_from_the_cache() {
        // Trained build: annotate-train (call 1) succeeds, annotate-reps
        // (call 2) faults. The retry re-derives the same training points
        // (seeded build) and pays for them from the cache.
        let preset = night_street(400, 7);
        let dataset = preset.dataset;
        let inner = FaultInjectingLabeler::with_script(
            OracleLabeler::mask_rcnn(dataset.truth_handle()),
            FaultPlan::default(),
            [None, Some(FaultKind::Transient)],
        );
        let labeler = MeteredLabeler::new(inner);
        let config = small_config();
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let err = try_build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .expect_err("scripted transient fault must abort the build");
        assert!(matches!(err, BuildError::Fault { stage, .. } if stage == "annotate-reps"));
        let paid_before_fault = labeler.invocations();
        assert_eq!(paid_before_fault, config.n_train as u64);
        assert_eq!(labeler.reserved(), 0);

        // Script exhausted → the oracle has recovered; the retry completes.
        let (index, report) = try_build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .expect("retry after recovery must succeed");
        assert_eq!(index.reps().len(), config.n_reps);
        // Exactly-once billing across the failed attempt and the retry:
        // nothing paid before the fault is paid again.
        assert!(labeler.invocations() <= (config.n_train + config.n_reps) as u64);
        assert!(labeler.cache_hits() >= config.n_train as u64);
        assert!(report.total_invocations <= labeler.invocations());
    }

    #[test]
    fn fault_aware_build_is_identical_to_classic_without_faults() {
        let config = small_config();
        let (dataset, classic_labeler, classic_index, classic_report) = build_night_street(&config);
        let inner = FaultInjectingLabeler::new(
            OracleLabeler::mask_rcnn(dataset.truth_handle()),
            FaultPlan::default(),
        );
        let labeler = MeteredLabeler::new(inner);
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let (index, report) = try_build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .expect("fault-free fallible build must succeed");
        assert_eq!(index.reps(), classic_index.reps());
        assert_eq!(index.embeddings(), classic_index.embeddings());
        assert_eq!(labeler.invocations(), classic_labeler.invocations());
        assert_eq!(report.total_invocations, classic_report.total_invocations);
    }

    #[test]
    fn stage_names_cover_algorithm_one() {
        let config = small_config();
        let (_d, _l, _i, report) = build_night_street(&config);
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "mining",
            "annotate-train",
            "triplet-train",
            "embed",
            "cluster",
            "annotate-reps",
            "distances",
        ] {
            assert!(names.contains(&expected), "missing stage {expected}");
        }
    }
}
