//! # tasti-core
//!
//! The TASTI semantic index — the primary contribution of *"Semantic Indexes
//! for Machine Learning-based Queries over Unstructured Data"* (SIGMOD 2022).
//!
//! TASTI removes per-query proxy models: it builds **one** embedding-based
//! index per dataset and derives high-quality proxy scores for *any* query
//! over the induced schema from it. The index is:
//!
//! * a (optionally triplet-trained) embedding per record,
//! * a set of **cluster representatives** chosen by furthest-point-first,
//!   annotated once by the expensive target labeler,
//! * a **min-k distance table** from every record to its nearest
//!   representatives.
//!
//! Query processing (§4) executes the user's scoring function exactly on the
//! representatives and *propagates* scores to every other record by
//! inverse-distance weighting (numeric) or weighted majority vote
//! (categorical). The resulting proxy scores plug into existing proxy-based
//! algorithms (BlazeIt aggregation, SUPG selection, limit ranking — see the
//! `tasti-query` crate).
//!
//! Module map:
//!
//! * [`config`] — [`TastiConfig`]: budgets `N₁`/`N₂`, `k`, embedding size,
//!   and the ablation switches for the paper's factor/lesion studies.
//! * [`build`] — Algorithm 1: FPF mining → bucketing → triplet fine-tuning →
//!   re-embedding → FPF clustering (+ random mix) → min-k distances, with
//!   per-stage timing and labeler-invocation accounting (Figure 2).
//! * [`index`] — the queryable [`TastiIndex`].
//! * [`scoring`] — the `Score` API of §4.2 with the paper's example scoring
//!   functions built in.
//! * [`propagate`] — score propagation (§4.3).
//! * [`crack`] — index cracking (§3.3): feeding query-time labels back in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod config;
pub mod crack;
pub mod diagnostics;
pub mod index;
pub mod persist;
pub mod propagate;
pub mod scoring;

pub use build::{build_index, try_build_index, BuildError, BuildReport, BuildStage};
pub use config::TastiConfig;
pub use index::{AppendError, CrackReport, TastiIndex};
// Part of this crate's public API via `CrackReport::assign`.
pub use scoring::{
    CountClass, FnScore, HasAtLeast, HasClass, HasClassInLeftHalf, MeanXPosition, ScoringFunction,
    SpeechIsMale, SqlNumPredicates, SqlOpIs,
};
pub use tasti_cluster::AssignStats;
