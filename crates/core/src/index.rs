//! The queryable TASTI index.
//!
//! A [`TastiIndex`] is the artifact Algorithm 1 produces: record embeddings,
//! annotated cluster representatives, and the min-k distance table. All query
//! processing goes through [`TastiIndex::propagate`] and friends; cracking
//! (§3.3) mutates the index in place via [`TastiIndex::crack`].

use crate::propagate;
use crate::scoring::ScoringFunction;
use std::collections::HashSet;
use std::fmt;
use tasti_cluster::{AssignStats, AssignStrategy, Metric, MinKTable};
use tasti_labeler::{LabelerOutput, RecordId};
use tasti_nn::{Matrix, Mlp};

/// Typed failure surface of the streaming append path.
///
/// The wire `ingest` op routes through [`TastiIndex::try_append_records`]
/// so a misconfigured index (e.g. a TASTI-PT index asked to embed raw
/// features) surfaces as a client error, never a server panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendError {
    /// Raw features were offered but the index carries no embedding model
    /// (TASTI-PT: embed externally and ingest pre-embedded rows).
    NoModel,
    /// Row width does not match what the index expects.
    DimMismatch {
        /// Columns per offered row.
        got: usize,
        /// Columns the model input (raw path) or the embedding table
        /// (pre-embedded path) requires.
        expected: usize,
    },
}

impl fmt::Display for AppendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppendError::NoModel => write!(
                f,
                "index has no embedding model; ingest pre-embedded rows \
                 (embedded=true) for TASTI-PT indexes"
            ),
            AppendError::DimMismatch { got, expected } => {
                write!(
                    f,
                    "ingest rows have {got} columns, index expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for AppendError {}

/// What one [`TastiIndex::crack_batch_audited`] maintenance step did:
/// how many representatives were added, and whether the rep-grown-by-⅛
/// heuristic escalated to a full assignment rebuild (with the rebuild's
/// [`AssignStats`] when it did). Makes the previously silent
/// incremental-vs-rebuild decision auditable by callers and metrics.
#[derive(Debug, Clone)]
pub struct CrackReport {
    /// Representatives added by this batch.
    pub added: usize,
    /// Whether the batch triggered a from-scratch assignment rebuild.
    pub rebuilt: bool,
    /// Telemetry of the rebuild (realized candidate counts, recall
    /// audit, strategy) — `None` on the incremental path.
    pub assign: Option<AssignStats>,
}

/// The TASTI semantic index over one dataset.
#[derive(Debug, Clone)]
pub struct TastiIndex {
    embeddings: Matrix,
    metric: Metric,
    k: usize,
    reps: Vec<RecordId>,
    rep_outputs: Vec<LabelerOutput>,
    rep_set: HashSet<RecordId>,
    mink: MinKTable,
    /// The triplet-trained embedding model, when available (TASTI-T).
    /// Required for streaming ingest of new records.
    model: Option<Mlp>,
    /// Rep-assignment strategy for maintenance rebuilds (bulk cracking).
    /// Mirrors the build-time `TastiConfig::assign_strategy`.
    assign_strategy: AssignStrategy,
    /// Highest ingest-log sequence number folded into this index (0 when
    /// the index has never seen streamed records). Replay applies only
    /// frames above this mark; snapshots persist it so base + segment
    /// deltas reconstruct the same state.
    ingest_watermark: u64,
}

impl TastiIndex {
    /// Assembles an index from its parts (normally done by
    /// [`crate::build::build_index`]).
    pub fn new(
        embeddings: Matrix,
        metric: Metric,
        k: usize,
        reps: Vec<RecordId>,
        rep_outputs: Vec<LabelerOutput>,
        mink: MinKTable,
    ) -> Self {
        assert_eq!(
            reps.len(),
            rep_outputs.len(),
            "one output per representative"
        );
        assert_eq!(mink.n_reps(), reps.len(), "min-k table rep count mismatch");
        assert_eq!(
            mink.n_records(),
            embeddings.rows(),
            "min-k table record count mismatch"
        );
        let rep_set = reps.iter().copied().collect();
        Self {
            embeddings,
            metric,
            k,
            reps,
            rep_outputs,
            rep_set,
            mink,
            model: None,
            assign_strategy: AssignStrategy::Auto,
            ingest_watermark: 0,
        }
    }

    /// Attaches the trained embedding model (enables
    /// [`TastiIndex::append_records`]).
    pub fn with_model(mut self, model: Mlp) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the rep-assignment strategy used for maintenance rebuilds
    /// (normally copied from the build's `TastiConfig::assign_strategy`).
    pub fn with_assign_strategy(mut self, strategy: AssignStrategy) -> Self {
        self.assign_strategy = strategy;
        self
    }

    /// The rep-assignment strategy maintenance rebuilds use.
    pub fn assign_strategy(&self) -> AssignStrategy {
        self.assign_strategy
    }

    /// Highest ingest-log sequence number folded into this index
    /// (0 = never ingested).
    pub fn ingest_watermark(&self) -> u64 {
        self.ingest_watermark
    }

    /// Records that every log frame up to `seq` is reflected in the
    /// index. Monotone: a lower mark than the current one is ignored
    /// (replay may revisit already-applied frames).
    pub fn set_ingest_watermark(&mut self, seq: u64) {
        self.ingest_watermark = self.ingest_watermark.max(seq);
    }

    /// The trained embedding model, if the index carries one.
    pub fn model(&self) -> Option<&Mlp> {
        self.model.as_ref()
    }

    /// Number of records indexed.
    pub fn n_records(&self) -> usize {
        self.embeddings.rows()
    }

    /// Current cluster representatives (record ids, in insertion order).
    pub fn reps(&self) -> &[RecordId] {
        &self.reps
    }

    /// The cached target-labeler output of representative `rep_idx`.
    pub fn rep_output(&self, rep_idx: usize) -> &LabelerOutput {
        &self.rep_outputs[rep_idx]
    }

    /// Whether `record` is a representative.
    pub fn is_rep(&self, record: RecordId) -> bool {
        self.rep_set.contains(&record)
    }

    /// Default propagation `k` (§5.3: 5).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Embedding dimension.
    pub fn embedding_dim(&self) -> usize {
        self.embeddings.cols()
    }

    /// Record embeddings (row per record).
    pub fn embeddings(&self) -> &Matrix {
        &self.embeddings
    }

    /// The min-k distance table.
    pub fn mink(&self) -> &MinKTable {
        &self.mink
    }

    /// Distance metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Executes `score_fn` exactly on the representatives' cached outputs.
    ///
    /// Rep scores are **sanitized at this boundary** (the ROADMAP's
    /// "sanitization at the index boundary" decision): a scoring function
    /// that returns NaN/±∞ for some cached output — a user `FnScore`
    /// dividing by a zero count, a position score over an empty detection
    /// list — would otherwise poison every propagated proxy score derived
    /// from that representative. The policy matches `tasti_query`'s
    /// entry-point sanitization: NaN and −∞ become the *minimum finite*
    /// rep score (least promising, never dropped), +∞ the maximum, and an
    /// all-non-finite score vector degrades to all-zero. Downstream,
    /// propagation therefore never sees a non-finite rep score (the
    /// per-query `tasti_query::sanitize` pass remains as
    /// defense-in-depth for proxies from other sources, and this
    /// invariant is debug-asserted in [`TastiIndex::propagate_with_k`]).
    pub fn rep_scores(&self, score_fn: &dyn ScoringFunction) -> Vec<f64> {
        let mut scores: Vec<f64> = self.rep_outputs.iter().map(|o| score_fn.score(o)).collect();
        if scores.iter().all(|s| s.is_finite()) {
            return scores;
        }
        let (lo, hi) = scores
            .iter()
            .filter(|s| s.is_finite())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        if lo > hi {
            // No finite score at all: uniform fallback.
            return vec![0.0; scores.len()];
        }
        for s in &mut scores {
            if !s.is_finite() {
                *s = if *s == f64::INFINITY { hi } else { lo };
            }
        }
        scores
    }

    /// Produces query-specific proxy scores for every record (§4.3) with the
    /// index's default `k`.
    pub fn propagate(&self, score_fn: &dyn ScoringFunction) -> Vec<f64> {
        self.propagate_with_k(score_fn, self.k)
    }

    /// Propagation with an explicit `k` (the sensitivity analyses vary it).
    pub fn propagate_with_k(&self, score_fn: &dyn ScoringFunction, k: usize) -> Vec<f64> {
        let rep_scores = self.rep_scores(score_fn);
        debug_assert!(
            rep_scores.iter().all(|s| s.is_finite()),
            "rep_scores must sanitize at the index boundary"
        );
        propagate::propagate_numeric(&self.mink, &rep_scores, k)
    }

    /// Categorical propagation: weighted majority vote of `categorize` over
    /// the `k` nearest representatives.
    pub fn propagate_categorical(
        &self,
        categorize: impl Fn(&LabelerOutput) -> u32,
        k: usize,
    ) -> Vec<u32> {
        let cats: Vec<u32> = self.rep_outputs.iter().map(categorize).collect();
        propagate::propagate_categorical(&self.mink, &cats, k)
    }

    /// Limit-query ranking (§6.3): records ordered by descending `k = 1`
    /// proxy score, ties broken by ascending distance to the representative.
    pub fn limit_ranking(&self, score_fn: &dyn ScoringFunction) -> Vec<RecordId> {
        let rep_scores = self.rep_scores(score_fn);
        debug_assert!(
            rep_scores.iter().all(|s| s.is_finite()),
            "rep_scores must sanitize at the index boundary"
        );
        propagate::limit_ranking(&self.mink, &rep_scores)
    }

    /// Maximum record-to-nearest-representative embedding distance — the
    /// cluster-density quantity `max‖φ(x) − φ(c(x))‖` from the analysis (§5).
    pub fn cover_radius(&self) -> f32 {
        self.mink.max_nearest_distance()
    }

    /// Streams new unstructured records into the index: embeds them with
    /// the trained model and extends the min-k table. The new records get
    /// proxy scores from the existing representatives immediately; later
    /// cracking can promote them to representatives like any other record.
    /// Returns the id range assigned to the new records.
    ///
    /// # Panics
    /// Panics if the index carries no embedding model (TASTI-PT indexes:
    /// embed externally and use [`TastiIndex::append_embedded`]). Server
    /// paths must use [`TastiIndex::try_append_records`] instead.
    pub fn append_records(&mut self, new_features: &Matrix) -> std::ops::Range<RecordId> {
        match self.try_append_records(new_features) {
            Ok(range) => range,
            Err(AppendError::NoModel) => panic!(
                "append_records requires an embedding model; use append_embedded for TASTI-PT"
            ),
            Err(e @ AppendError::DimMismatch { .. }) => {
                panic!("new record feature dimension mismatch: {e}")
            }
        }
    }

    /// Fallible form of [`TastiIndex::append_records`]: a missing
    /// embedding model or a feature-width mismatch comes back as a typed
    /// [`AppendError`] (the wire ingest path maps it to `bad_request`)
    /// instead of a panic. On error the index is unchanged.
    pub fn try_append_records(
        &mut self,
        new_features: &Matrix,
    ) -> Result<std::ops::Range<RecordId>, AppendError> {
        let model = self.model.as_ref().ok_or(AppendError::NoModel)?;
        if new_features.cols() != model.input_dim() {
            return Err(AppendError::DimMismatch {
                got: new_features.cols(),
                expected: model.input_dim(),
            });
        }
        let new_embeddings = model.forward_ref(new_features);
        self.try_append_embedded(&new_embeddings)
    }

    /// Streams new *pre-embedded* records into the index (the TASTI-PT
    /// ingest path). Returns the id range assigned.
    ///
    /// # Panics
    /// Panics on an embedding-width mismatch; server paths must use
    /// [`TastiIndex::try_append_embedded`].
    pub fn append_embedded(&mut self, new_embeddings: &Matrix) -> std::ops::Range<RecordId> {
        match self.try_append_embedded(new_embeddings) {
            Ok(range) => range,
            Err(e) => panic!("embedding dimension mismatch: {e}"),
        }
    }

    /// Fallible form of [`TastiIndex::append_embedded`]: a width mismatch
    /// is a typed [`AppendError::DimMismatch`]; on error the index is
    /// unchanged.
    pub fn try_append_embedded(
        &mut self,
        new_embeddings: &Matrix,
    ) -> Result<std::ops::Range<RecordId>, AppendError> {
        if new_embeddings.cols() != self.embeddings.cols() {
            return Err(AppendError::DimMismatch {
                got: new_embeddings.cols(),
                expected: self.embeddings.cols(),
            });
        }
        let start = self.embeddings.rows();
        let dim = self.embeddings.cols();
        let rep_flat: Vec<f32> = self
            .reps
            .iter()
            .flat_map(|&r| self.embeddings.row(r).iter().copied())
            .collect();
        self.mink
            .append_records(new_embeddings.as_slice(), &rep_flat, dim, self.metric);
        self.embeddings = Matrix::vstack(&[&self.embeddings, new_embeddings]);
        Ok(start..self.embeddings.rows())
    }

    /// Wire-friendly ingest front door: appends one feature (or, with
    /// `embedded`, embedding) vector per record, validating every row's
    /// width *before* touching the index so a bad batch is rejected whole.
    /// An empty batch is a no-op returning the empty range at the current
    /// record count. On error the index is unchanged.
    pub fn try_append_rows(
        &mut self,
        rows: &[Vec<f32>],
        embedded: bool,
    ) -> Result<std::ops::Range<RecordId>, AppendError> {
        let expected = if embedded {
            self.embeddings.cols()
        } else {
            self.model.as_ref().ok_or(AppendError::NoModel)?.input_dim()
        };
        for row in rows {
            if row.len() != expected {
                return Err(AppendError::DimMismatch {
                    got: row.len(),
                    expected,
                });
            }
        }
        if rows.is_empty() {
            let n = self.n_records();
            return Ok(n..n);
        }
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        let m = Matrix::from_rows(&refs);
        if embedded {
            self.try_append_embedded(&m)
        } else {
            self.try_append_records(&m)
        }
    }

    /// Registers a query-time target-labeler result as a new representative
    /// — index cracking (§3.3). No-op (returning `false`) if the record
    /// already is a representative.
    pub fn crack(&mut self, record: RecordId, output: LabelerOutput) -> bool {
        if !self.rep_set.insert(record) {
            return false;
        }
        let dim = self.embeddings.cols();
        let emb_row = self.embeddings.row(record).to_vec();
        self.mink
            .add_representative(self.embeddings.as_slice(), &emb_row, dim, self.metric);
        self.reps.push(record);
        self.rep_outputs.push(output);
        true
    }

    /// Cracks a batch of labeled records in one maintenance step. Each
    /// record goes through [`TastiIndex::crack`]; when the batch grew the
    /// representative set enough that the incremental router maintenance
    /// has given up (the min-k table drops a drifted router rather than
    /// let it degrade recall), the rep assignment is re-run under the
    /// index's strategy so large indexes get a fresh router instead of
    /// falling back to exact appends forever. Small indexes (where the
    /// strategy resolves to exact) never rebuild — the incremental path
    /// is already exact there. Returns how many representatives were
    /// added.
    pub fn crack_batch(
        &mut self,
        items: impl IntoIterator<Item = (RecordId, LabelerOutput)>,
    ) -> usize {
        self.crack_batch_audited(items).added
    }

    /// [`TastiIndex::crack_batch`] with the maintenance decision made
    /// visible: the returned [`CrackReport`] says whether the batch took
    /// the incremental path or escalated to a full assignment rebuild,
    /// and carries the rebuild's [`AssignStats`] (realized candidate
    /// counts, recall audit) when it did.
    pub fn crack_batch_audited(
        &mut self,
        items: impl IntoIterator<Item = (RecordId, LabelerOutput)>,
    ) -> CrackReport {
        let mut added = 0;
        for (record, output) in items {
            if self.crack(record, output) {
                added += 1;
            }
        }
        let needs_router = self
            .assign_strategy
            .resolve(self.n_records(), self.reps.len())
            .is_some();
        if needs_router && added * 8 > self.reps.len() {
            let stats = self.refresh_assignment();
            CrackReport {
                added,
                rebuilt: true,
                assign: Some(stats),
            }
        } else {
            CrackReport {
                added,
                rebuilt: false,
                assign: None,
            }
        }
    }

    /// Re-runs rep assignment from scratch under the configured strategy
    /// (fresh router, fresh table) and returns the rebuild's telemetry.
    /// The exact strategy reproduces the incremental result bit-for-bit;
    /// IVF strategies are guarded by their build-time recall audit. This
    /// is also the drift-escalation hook: when ingest drift gauges cross
    /// their threshold, the maintenance path calls this to re-anchor
    /// every record on the current representative set.
    pub fn refresh_assignment(&mut self) -> AssignStats {
        let dim = self.embeddings.cols();
        let rep_flat: Vec<f32> = self
            .reps
            .iter()
            .flat_map(|&r| self.embeddings.row(r).iter().copied())
            .collect();
        let (mink, stats) = MinKTable::build_with_strategy(
            self.embeddings.as_slice(),
            &rep_flat,
            dim,
            self.k,
            self.metric,
            0,
            &self.assign_strategy,
        );
        self.mink = mink;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::CountClass;
    use tasti_labeler::{Detection, ObjectClass};

    fn frame(n_cars: usize) -> LabelerOutput {
        LabelerOutput::Detections(
            (0..n_cars)
                .map(|i| Detection {
                    class: ObjectClass::Car,
                    x: 0.1 * (i + 1) as f32,
                    y: 0.5,
                    w: 0.1,
                    h: 0.1,
                })
                .collect(),
        )
    }

    /// Six records on a line; reps at records 0 (0 cars) and 5 (3 cars).
    fn tiny_index() -> TastiIndex {
        let embeddings = Matrix::from_fn(6, 1, |r, _| r as f32);
        let reps = vec![0usize, 5];
        let rep_outputs = vec![frame(0), frame(3)];
        let rep_emb: Vec<f32> = vec![0.0, 5.0];
        let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
        TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
    }

    #[test]
    fn propagate_counts_interpolate() {
        let idx = tiny_index();
        let scores = idx.propagate(&CountClass(ObjectClass::Car));
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[5], 3.0);
        assert!(scores[1] < scores[4]);
    }

    #[test]
    fn nan_rep_score_never_reaches_propagate() {
        // Regression for the ROADMAP "sanitization at the index boundary"
        // item: a scoring function that emits NaN for one representative
        // (here: rep 0, whose frame has no cars → 0/0) must be sanitized in
        // `rep_scores` — no NaN may leak into propagation or the ranking.
        use crate::scoring::FnScore;
        let idx = tiny_index();
        let nan_for_empty = FnScore(|o: &LabelerOutput| {
            let cars = o.count_class(ObjectClass::Car) as f64;
            cars / cars // NaN when the frame is empty
        });
        let reps = idx.rep_scores(&nan_for_empty);
        assert!(
            reps.iter().all(|s| s.is_finite()),
            "rep scores must be sanitized: {reps:?}"
        );
        // NaN maps to the minimum finite score (1.0 here, from rep 1).
        assert_eq!(reps, vec![1.0, 1.0]);
        let proxies = idx.propagate(&nan_for_empty);
        assert!(proxies.iter().all(|s| s.is_finite()));
        let ranking = idx.limit_ranking(&nan_for_empty);
        assert_eq!(ranking.len(), idx.n_records());
    }

    #[test]
    fn infinite_rep_scores_clamp_to_finite_extremes() {
        use crate::scoring::FnScore;
        let idx = tiny_index();
        let weird = FnScore(|o: &LabelerOutput| match o.count_class(ObjectClass::Car) {
            0 => f64::NEG_INFINITY,
            3 => f64::INFINITY,
            c => c as f64,
        });
        // Both reps are non-finite → no finite score at all → uniform zero.
        assert_eq!(idx.rep_scores(&weird), vec![0.0, 0.0]);
        assert!(idx.propagate(&weird).iter().all(|s| *s == 0.0));

        // With one finite rep present, ±∞ clamp to the finite extremes.
        let mut idx2 = tiny_index();
        idx2.crack(2, frame(1));
        let reps = idx2.rep_scores(&weird); // [-inf→1, +inf→1, 1.0]
        assert_eq!(reps, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn rep_bookkeeping() {
        let idx = tiny_index();
        assert_eq!(idx.n_records(), 6);
        assert_eq!(idx.reps(), &[0, 5]);
        assert!(idx.is_rep(0));
        assert!(!idx.is_rep(3));
        assert_eq!(idx.rep_output(1), &frame(3));
        assert_eq!(idx.embedding_dim(), 1);
        assert_eq!(idx.k(), 2);
    }

    #[test]
    fn crack_adds_new_rep_and_tightens_cover() {
        let mut idx = tiny_index();
        let before = idx.cover_radius();
        assert!(idx.crack(2, frame(1)));
        assert!(idx.is_rep(2));
        assert_eq!(idx.reps(), &[0, 5, 2]);
        assert!(idx.cover_radius() <= before);
        // Record 2 now gets its exact score.
        let scores = idx.propagate(&CountClass(ObjectClass::Car));
        assert_eq!(scores[2], 1.0);
    }

    #[test]
    fn crack_on_existing_rep_is_noop() {
        let mut idx = tiny_index();
        assert!(!idx.crack(0, frame(9)));
        assert_eq!(idx.reps().len(), 2);
        // Output unchanged.
        assert_eq!(idx.rep_output(0), &frame(0));
    }

    #[test]
    fn limit_ranking_prefers_high_count_cluster() {
        let idx = tiny_index();
        let order = idx.limit_ranking(&CountClass(ObjectClass::Car));
        // Records nearest the 3-car rep come first, closest first.
        assert_eq!(&order[..3], &[5, 4, 3]);
    }

    #[test]
    fn categorical_propagation_votes() {
        let idx = tiny_index();
        let cats = idx.propagate_categorical(|o| o.count_class(ObjectClass::Car) as u32, 1);
        assert_eq!(cats, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn try_append_records_without_model_is_a_typed_error() {
        let mut idx = tiny_index();
        let features = Matrix::from_fn(2, 1, |_, _| 0.5);
        let err = idx.try_append_records(&features).unwrap_err();
        assert_eq!(err, AppendError::NoModel);
        assert_eq!(idx.n_records(), 6, "failed append must not mutate");
    }

    #[test]
    fn try_append_embedded_rejects_wrong_width() {
        let mut idx = tiny_index();
        let wrong = Matrix::from_fn(3, 4, |_, _| 0.0);
        let err = idx.try_append_embedded(&wrong).unwrap_err();
        assert_eq!(
            err,
            AppendError::DimMismatch {
                got: 4,
                expected: 1
            }
        );
        assert_eq!(idx.n_records(), 6, "failed append must not mutate");
        assert_eq!(idx.mink().n_records(), 6);
    }

    #[test]
    fn try_append_rows_validates_whole_batch_before_mutating() {
        let mut idx = tiny_index();
        // One good row, one ragged row: the whole batch is rejected.
        let err = idx
            .try_append_rows(&[vec![6.5], vec![7.0, 7.5]], true)
            .unwrap_err();
        assert_eq!(
            err,
            AppendError::DimMismatch {
                got: 2,
                expected: 1
            }
        );
        assert_eq!(idx.n_records(), 6, "failed append must not mutate");
        // Raw rows need a model; TASTI-PT indexes reject them typed.
        assert_eq!(
            idx.try_append_rows(&[vec![6.5]], false).unwrap_err(),
            AppendError::NoModel
        );
        // Empty batches are validated no-ops.
        assert_eq!(idx.try_append_rows(&[], true).unwrap(), 6..6);
        // A clean embedded batch lands.
        assert_eq!(
            idx.try_append_rows(&[vec![6.5], vec![7.0]], true).unwrap(),
            6..8
        );
        assert_eq!(idx.n_records(), 8);
        assert_eq!(idx.mink().n_records(), 8);
    }

    #[test]
    fn try_append_embedded_extends_index_and_scores() {
        let mut idx = tiny_index();
        let new = Matrix::from_fn(2, 1, |r, _| 6.0 + r as f32);
        let range = idx.try_append_embedded(&new).unwrap();
        assert_eq!(range, 6..8);
        assert_eq!(idx.n_records(), 8);
        let scores = idx.propagate(&CountClass(ObjectClass::Car));
        assert_eq!(scores.len(), 8);
        // Appended records sit beyond the 3-car rep at 5: their k=2
        // inverse-distance mix is dominated by that rep.
        assert!(
            scores[6] > 2.0 && scores[6] <= 3.0,
            "appended record score: {}",
            scores[6]
        );
    }

    #[test]
    fn crack_batch_audited_reports_the_incremental_path() {
        let mut idx = tiny_index();
        let report = idx.crack_batch_audited(vec![(2, frame(1)), (0, frame(9))]);
        assert_eq!(report.added, 1, "rep 0 already exists");
        assert!(
            !report.rebuilt,
            "tiny index resolves to the exact strategy: never rebuilds"
        );
        assert!(report.assign.is_none());
        // The plain entry point still reports the count.
        let mut idx2 = tiny_index();
        assert_eq!(idx2.crack_batch(vec![(2, frame(1))]), 1);
    }

    #[test]
    fn refresh_assignment_is_noop_on_exact_small_indexes() {
        let mut idx = tiny_index();
        let before = idx.propagate(&CountClass(ObjectClass::Car));
        let stats = idx.refresh_assignment();
        assert_eq!(stats.strategy, "exact");
        assert_eq!(idx.propagate(&CountClass(ObjectClass::Car)), before);
    }

    #[test]
    fn ingest_watermark_is_monotone() {
        let mut idx = tiny_index();
        assert_eq!(idx.ingest_watermark(), 0);
        idx.set_ingest_watermark(7);
        assert_eq!(idx.ingest_watermark(), 7);
        idx.set_ingest_watermark(3); // replay revisiting old frames
        assert_eq!(idx.ingest_watermark(), 7);
        idx.set_ingest_watermark(11);
        assert_eq!(idx.ingest_watermark(), 11);
    }

    #[test]
    #[should_panic(expected = "one output per representative")]
    fn mismatched_outputs_panic() {
        let embeddings = Matrix::from_fn(2, 1, |r, _| r as f32);
        let mink = MinKTable::build(embeddings.as_slice(), &[0.0], 1, 1, Metric::L2);
        let _ = TastiIndex::new(embeddings, Metric::L2, 1, vec![0], vec![], mink);
    }
}
