//! The queryable TASTI index.
//!
//! A [`TastiIndex`] is the artifact Algorithm 1 produces: record embeddings,
//! annotated cluster representatives, and the min-k distance table. All query
//! processing goes through [`TastiIndex::propagate`] and friends; cracking
//! (§3.3) mutates the index in place via [`TastiIndex::crack`].

use crate::propagate;
use crate::scoring::ScoringFunction;
use std::collections::HashSet;
use tasti_cluster::{AssignStrategy, Metric, MinKTable};
use tasti_labeler::{LabelerOutput, RecordId};
use tasti_nn::{Matrix, Mlp};

/// The TASTI semantic index over one dataset.
#[derive(Debug, Clone)]
pub struct TastiIndex {
    embeddings: Matrix,
    metric: Metric,
    k: usize,
    reps: Vec<RecordId>,
    rep_outputs: Vec<LabelerOutput>,
    rep_set: HashSet<RecordId>,
    mink: MinKTable,
    /// The triplet-trained embedding model, when available (TASTI-T).
    /// Required for streaming ingest of new records.
    model: Option<Mlp>,
    /// Rep-assignment strategy for maintenance rebuilds (bulk cracking).
    /// Mirrors the build-time `TastiConfig::assign_strategy`.
    assign_strategy: AssignStrategy,
}

impl TastiIndex {
    /// Assembles an index from its parts (normally done by
    /// [`crate::build::build_index`]).
    pub fn new(
        embeddings: Matrix,
        metric: Metric,
        k: usize,
        reps: Vec<RecordId>,
        rep_outputs: Vec<LabelerOutput>,
        mink: MinKTable,
    ) -> Self {
        assert_eq!(
            reps.len(),
            rep_outputs.len(),
            "one output per representative"
        );
        assert_eq!(mink.n_reps(), reps.len(), "min-k table rep count mismatch");
        assert_eq!(
            mink.n_records(),
            embeddings.rows(),
            "min-k table record count mismatch"
        );
        let rep_set = reps.iter().copied().collect();
        Self {
            embeddings,
            metric,
            k,
            reps,
            rep_outputs,
            rep_set,
            mink,
            model: None,
            assign_strategy: AssignStrategy::Auto,
        }
    }

    /// Attaches the trained embedding model (enables
    /// [`TastiIndex::append_records`]).
    pub fn with_model(mut self, model: Mlp) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the rep-assignment strategy used for maintenance rebuilds
    /// (normally copied from the build's `TastiConfig::assign_strategy`).
    pub fn with_assign_strategy(mut self, strategy: AssignStrategy) -> Self {
        self.assign_strategy = strategy;
        self
    }

    /// The rep-assignment strategy maintenance rebuilds use.
    pub fn assign_strategy(&self) -> AssignStrategy {
        self.assign_strategy
    }

    /// The trained embedding model, if the index carries one.
    pub fn model(&self) -> Option<&Mlp> {
        self.model.as_ref()
    }

    /// Number of records indexed.
    pub fn n_records(&self) -> usize {
        self.embeddings.rows()
    }

    /// Current cluster representatives (record ids, in insertion order).
    pub fn reps(&self) -> &[RecordId] {
        &self.reps
    }

    /// The cached target-labeler output of representative `rep_idx`.
    pub fn rep_output(&self, rep_idx: usize) -> &LabelerOutput {
        &self.rep_outputs[rep_idx]
    }

    /// Whether `record` is a representative.
    pub fn is_rep(&self, record: RecordId) -> bool {
        self.rep_set.contains(&record)
    }

    /// Default propagation `k` (§5.3: 5).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Embedding dimension.
    pub fn embedding_dim(&self) -> usize {
        self.embeddings.cols()
    }

    /// Record embeddings (row per record).
    pub fn embeddings(&self) -> &Matrix {
        &self.embeddings
    }

    /// The min-k distance table.
    pub fn mink(&self) -> &MinKTable {
        &self.mink
    }

    /// Distance metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Executes `score_fn` exactly on the representatives' cached outputs.
    ///
    /// Rep scores are **sanitized at this boundary** (the ROADMAP's
    /// "sanitization at the index boundary" decision): a scoring function
    /// that returns NaN/±∞ for some cached output — a user `FnScore`
    /// dividing by a zero count, a position score over an empty detection
    /// list — would otherwise poison every propagated proxy score derived
    /// from that representative. The policy matches `tasti_query`'s
    /// entry-point sanitization: NaN and −∞ become the *minimum finite*
    /// rep score (least promising, never dropped), +∞ the maximum, and an
    /// all-non-finite score vector degrades to all-zero. Downstream,
    /// propagation therefore never sees a non-finite rep score (the
    /// per-query `tasti_query::sanitize` pass remains as
    /// defense-in-depth for proxies from other sources, and this
    /// invariant is debug-asserted in [`TastiIndex::propagate_with_k`]).
    pub fn rep_scores(&self, score_fn: &dyn ScoringFunction) -> Vec<f64> {
        let mut scores: Vec<f64> = self.rep_outputs.iter().map(|o| score_fn.score(o)).collect();
        if scores.iter().all(|s| s.is_finite()) {
            return scores;
        }
        let (lo, hi) = scores
            .iter()
            .filter(|s| s.is_finite())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        if lo > hi {
            // No finite score at all: uniform fallback.
            return vec![0.0; scores.len()];
        }
        for s in &mut scores {
            if !s.is_finite() {
                *s = if *s == f64::INFINITY { hi } else { lo };
            }
        }
        scores
    }

    /// Produces query-specific proxy scores for every record (§4.3) with the
    /// index's default `k`.
    pub fn propagate(&self, score_fn: &dyn ScoringFunction) -> Vec<f64> {
        self.propagate_with_k(score_fn, self.k)
    }

    /// Propagation with an explicit `k` (the sensitivity analyses vary it).
    pub fn propagate_with_k(&self, score_fn: &dyn ScoringFunction, k: usize) -> Vec<f64> {
        let rep_scores = self.rep_scores(score_fn);
        debug_assert!(
            rep_scores.iter().all(|s| s.is_finite()),
            "rep_scores must sanitize at the index boundary"
        );
        propagate::propagate_numeric(&self.mink, &rep_scores, k)
    }

    /// Categorical propagation: weighted majority vote of `categorize` over
    /// the `k` nearest representatives.
    pub fn propagate_categorical(
        &self,
        categorize: impl Fn(&LabelerOutput) -> u32,
        k: usize,
    ) -> Vec<u32> {
        let cats: Vec<u32> = self.rep_outputs.iter().map(categorize).collect();
        propagate::propagate_categorical(&self.mink, &cats, k)
    }

    /// Limit-query ranking (§6.3): records ordered by descending `k = 1`
    /// proxy score, ties broken by ascending distance to the representative.
    pub fn limit_ranking(&self, score_fn: &dyn ScoringFunction) -> Vec<RecordId> {
        let rep_scores = self.rep_scores(score_fn);
        debug_assert!(
            rep_scores.iter().all(|s| s.is_finite()),
            "rep_scores must sanitize at the index boundary"
        );
        propagate::limit_ranking(&self.mink, &rep_scores)
    }

    /// Maximum record-to-nearest-representative embedding distance — the
    /// cluster-density quantity `max‖φ(x) − φ(c(x))‖` from the analysis (§5).
    pub fn cover_radius(&self) -> f32 {
        self.mink.max_nearest_distance()
    }

    /// Streams new unstructured records into the index: embeds them with
    /// the trained model and extends the min-k table. The new records get
    /// proxy scores from the existing representatives immediately; later
    /// cracking can promote them to representatives like any other record.
    /// Returns the id range assigned to the new records.
    ///
    /// # Panics
    /// Panics if the index carries no embedding model (TASTI-PT indexes:
    /// embed externally and use [`TastiIndex::append_embedded`]).
    pub fn append_records(&mut self, new_features: &Matrix) -> std::ops::Range<RecordId> {
        let model = self
            .model
            .as_ref()
            .expect("append_records requires an embedding model; use append_embedded for TASTI-PT");
        assert_eq!(
            new_features.cols(),
            model.input_dim(),
            "new record feature dimension mismatch"
        );
        let new_embeddings = model.forward_ref(new_features);
        self.append_embedded(&new_embeddings)
    }

    /// Streams new *pre-embedded* records into the index (the TASTI-PT
    /// ingest path). Returns the id range assigned.
    pub fn append_embedded(&mut self, new_embeddings: &Matrix) -> std::ops::Range<RecordId> {
        assert_eq!(
            new_embeddings.cols(),
            self.embeddings.cols(),
            "embedding dimension mismatch"
        );
        let start = self.embeddings.rows();
        let dim = self.embeddings.cols();
        let rep_flat: Vec<f32> = self
            .reps
            .iter()
            .flat_map(|&r| self.embeddings.row(r).iter().copied())
            .collect();
        self.mink
            .append_records(new_embeddings.as_slice(), &rep_flat, dim, self.metric);
        self.embeddings = Matrix::vstack(&[&self.embeddings, new_embeddings]);
        start..self.embeddings.rows()
    }

    /// Registers a query-time target-labeler result as a new representative
    /// — index cracking (§3.3). No-op (returning `false`) if the record
    /// already is a representative.
    pub fn crack(&mut self, record: RecordId, output: LabelerOutput) -> bool {
        if !self.rep_set.insert(record) {
            return false;
        }
        let dim = self.embeddings.cols();
        let emb_row = self.embeddings.row(record).to_vec();
        self.mink
            .add_representative(self.embeddings.as_slice(), &emb_row, dim, self.metric);
        self.reps.push(record);
        self.rep_outputs.push(output);
        true
    }

    /// Cracks a batch of labeled records in one maintenance step. Each
    /// record goes through [`TastiIndex::crack`]; when the batch grew the
    /// representative set enough that the incremental router maintenance
    /// has given up (the min-k table drops a drifted router rather than
    /// let it degrade recall), the rep assignment is re-run under the
    /// index's strategy so large indexes get a fresh router instead of
    /// falling back to exact appends forever. Small indexes (where the
    /// strategy resolves to exact) never rebuild — the incremental path
    /// is already exact there. Returns how many representatives were
    /// added.
    pub fn crack_batch(
        &mut self,
        items: impl IntoIterator<Item = (RecordId, LabelerOutput)>,
    ) -> usize {
        let mut added = 0;
        for (record, output) in items {
            if self.crack(record, output) {
                added += 1;
            }
        }
        let needs_router = self
            .assign_strategy
            .resolve(self.n_records(), self.reps.len())
            .is_some();
        if needs_router && added * 8 > self.reps.len() {
            self.rebuild_assignment();
        }
        added
    }

    /// Re-runs rep assignment from scratch under the configured strategy
    /// (fresh router, fresh telemetry-free table). The exact strategy
    /// reproduces the incremental result bit-for-bit; IVF strategies are
    /// guarded by their build-time recall audit.
    fn rebuild_assignment(&mut self) {
        let dim = self.embeddings.cols();
        let rep_flat: Vec<f32> = self
            .reps
            .iter()
            .flat_map(|&r| self.embeddings.row(r).iter().copied())
            .collect();
        let (mink, _stats) = MinKTable::build_with_strategy(
            self.embeddings.as_slice(),
            &rep_flat,
            dim,
            self.k,
            self.metric,
            0,
            &self.assign_strategy,
        );
        self.mink = mink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::CountClass;
    use tasti_labeler::{Detection, ObjectClass};

    fn frame(n_cars: usize) -> LabelerOutput {
        LabelerOutput::Detections(
            (0..n_cars)
                .map(|i| Detection {
                    class: ObjectClass::Car,
                    x: 0.1 * (i + 1) as f32,
                    y: 0.5,
                    w: 0.1,
                    h: 0.1,
                })
                .collect(),
        )
    }

    /// Six records on a line; reps at records 0 (0 cars) and 5 (3 cars).
    fn tiny_index() -> TastiIndex {
        let embeddings = Matrix::from_fn(6, 1, |r, _| r as f32);
        let reps = vec![0usize, 5];
        let rep_outputs = vec![frame(0), frame(3)];
        let rep_emb: Vec<f32> = vec![0.0, 5.0];
        let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 1, 2, Metric::L2);
        TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
    }

    #[test]
    fn propagate_counts_interpolate() {
        let idx = tiny_index();
        let scores = idx.propagate(&CountClass(ObjectClass::Car));
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[5], 3.0);
        assert!(scores[1] < scores[4]);
    }

    #[test]
    fn nan_rep_score_never_reaches_propagate() {
        // Regression for the ROADMAP "sanitization at the index boundary"
        // item: a scoring function that emits NaN for one representative
        // (here: rep 0, whose frame has no cars → 0/0) must be sanitized in
        // `rep_scores` — no NaN may leak into propagation or the ranking.
        use crate::scoring::FnScore;
        let idx = tiny_index();
        let nan_for_empty = FnScore(|o: &LabelerOutput| {
            let cars = o.count_class(ObjectClass::Car) as f64;
            cars / cars // NaN when the frame is empty
        });
        let reps = idx.rep_scores(&nan_for_empty);
        assert!(
            reps.iter().all(|s| s.is_finite()),
            "rep scores must be sanitized: {reps:?}"
        );
        // NaN maps to the minimum finite score (1.0 here, from rep 1).
        assert_eq!(reps, vec![1.0, 1.0]);
        let proxies = idx.propagate(&nan_for_empty);
        assert!(proxies.iter().all(|s| s.is_finite()));
        let ranking = idx.limit_ranking(&nan_for_empty);
        assert_eq!(ranking.len(), idx.n_records());
    }

    #[test]
    fn infinite_rep_scores_clamp_to_finite_extremes() {
        use crate::scoring::FnScore;
        let idx = tiny_index();
        let weird = FnScore(|o: &LabelerOutput| match o.count_class(ObjectClass::Car) {
            0 => f64::NEG_INFINITY,
            3 => f64::INFINITY,
            c => c as f64,
        });
        // Both reps are non-finite → no finite score at all → uniform zero.
        assert_eq!(idx.rep_scores(&weird), vec![0.0, 0.0]);
        assert!(idx.propagate(&weird).iter().all(|s| *s == 0.0));

        // With one finite rep present, ±∞ clamp to the finite extremes.
        let mut idx2 = tiny_index();
        idx2.crack(2, frame(1));
        let reps = idx2.rep_scores(&weird); // [-inf→1, +inf→1, 1.0]
        assert_eq!(reps, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn rep_bookkeeping() {
        let idx = tiny_index();
        assert_eq!(idx.n_records(), 6);
        assert_eq!(idx.reps(), &[0, 5]);
        assert!(idx.is_rep(0));
        assert!(!idx.is_rep(3));
        assert_eq!(idx.rep_output(1), &frame(3));
        assert_eq!(idx.embedding_dim(), 1);
        assert_eq!(idx.k(), 2);
    }

    #[test]
    fn crack_adds_new_rep_and_tightens_cover() {
        let mut idx = tiny_index();
        let before = idx.cover_radius();
        assert!(idx.crack(2, frame(1)));
        assert!(idx.is_rep(2));
        assert_eq!(idx.reps(), &[0, 5, 2]);
        assert!(idx.cover_radius() <= before);
        // Record 2 now gets its exact score.
        let scores = idx.propagate(&CountClass(ObjectClass::Car));
        assert_eq!(scores[2], 1.0);
    }

    #[test]
    fn crack_on_existing_rep_is_noop() {
        let mut idx = tiny_index();
        assert!(!idx.crack(0, frame(9)));
        assert_eq!(idx.reps().len(), 2);
        // Output unchanged.
        assert_eq!(idx.rep_output(0), &frame(0));
    }

    #[test]
    fn limit_ranking_prefers_high_count_cluster() {
        let idx = tiny_index();
        let order = idx.limit_ranking(&CountClass(ObjectClass::Car));
        // Records nearest the 3-car rep come first, closest first.
        assert_eq!(&order[..3], &[5, 4, 3]);
    }

    #[test]
    fn categorical_propagation_votes() {
        let idx = tiny_index();
        let cats = idx.propagate_categorical(|o| o.count_class(ObjectClass::Car) as u32, 1);
        assert_eq!(cats, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "one output per representative")]
    fn mismatched_outputs_panic() {
        let embeddings = Matrix::from_fn(2, 1, |r, _| r as f32);
        let mink = MinKTable::build(embeddings.as_slice(), &[0.0], 1, 1, Metric::L2);
        let _ = TastiIndex::new(embeddings, Metric::L2, 1, vec![0], vec![], mink);
    }
}
