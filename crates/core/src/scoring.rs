//! Query-specific scoring functions (§4.2).
//!
//! A scoring function maps a target labeler's structured output to a numeric
//! score — the paper's `Score(target_output) -> ScoreType` API. TASTI
//! executes it exactly on the annotated cluster representatives and
//! propagates the scores to every other record (§4.3). "These functions can
//! be implemented in few lines of code" — the built-ins below are the
//! paper's own examples (car counting, car presence, position queries) plus
//! the text/speech queries of §6.1, and [`FnScore`] adapts any closure.

use tasti_labeler::{LabelerOutput, ObjectClass, SqlOp};

/// Maps a target-labeler output to a numeric proxy-score source (§4.2).
///
/// Selection predicates return `{0.0, 1.0}`; aggregation scores return the
/// aggregated quantity; propagation smooths both.
pub trait ScoringFunction: Send + Sync {
    /// Scores one structured output.
    fn score(&self, output: &LabelerOutput) -> f64;

    /// Whether the score is categorical (propagate by weighted majority
    /// vote) rather than numeric (propagate by weighted mean). Default:
    /// numeric, matching the paper's default propagation.
    fn is_categorical(&self) -> bool {
        false
    }
}

/// Counts objects of a class — the paper's `CountCarScore` example, used by
/// the BlazeIt-style aggregation queries.
#[derive(Debug, Clone, Copy)]
pub struct CountClass(pub ObjectClass);

impl ScoringFunction for CountClass {
    fn score(&self, output: &LabelerOutput) -> f64 {
        output.count_class(self.0) as f64
    }
}

/// Predicate: does the frame contain an object of this class? Used by the
/// selection queries (NoScope / SUPG style).
#[derive(Debug, Clone, Copy)]
pub struct HasClass(pub ObjectClass);

impl ScoringFunction for HasClass {
    fn score(&self, output: &LabelerOutput) -> f64 {
        if output.count_class(self.0) > 0 {
            1.0
        } else {
            0.0
        }
    }
}

/// Predicate: does the frame contain at least `min_count` objects of this
/// class? The general form of [`HasClass`]; count-boundary predicates are
/// the genuinely ambiguous selection queries on dense video (two dim cars
/// and one bright car look alike).
#[derive(Debug, Clone, Copy)]
pub struct HasAtLeast(pub ObjectClass, pub usize);

impl ScoringFunction for HasAtLeast {
    fn score(&self, output: &LabelerOutput) -> f64 {
        (output.count_class(self.0) >= self.1) as u8 as f64
    }
}

/// Mean x-position of objects of a class (Figure 8's "average position"
/// regression query). Empty frames score the frame center (0.5), keeping the
/// aggregate well-defined; the paper notes prior proxy models cannot express
/// this query at all.
#[derive(Debug, Clone, Copy)]
pub struct MeanXPosition(pub ObjectClass);

impl ScoringFunction for MeanXPosition {
    fn score(&self, output: &LabelerOutput) -> f64 {
        match output {
            LabelerOutput::Detections(d) => {
                let xs: Vec<f64> = d
                    .iter()
                    .filter(|b| b.class == self.0)
                    .map(|b| b.x as f64)
                    .collect();
                if xs.is_empty() {
                    0.5
                } else {
                    xs.iter().sum::<f64>() / xs.len() as f64
                }
            }
            _ => 0.5,
        }
    }
}

/// Predicate: is there an object of this class whose average x-position is
/// in the left half of the frame? (Figure 7's Lipschitz-violating selection
/// query: a sharp discontinuity runs down the frame center.)
#[derive(Debug, Clone, Copy)]
pub struct HasClassInLeftHalf(pub ObjectClass);

impl ScoringFunction for HasClassInLeftHalf {
    fn score(&self, output: &LabelerOutput) -> f64 {
        match output {
            LabelerOutput::Detections(d) => {
                let xs: Vec<f32> = d
                    .iter()
                    .filter(|b| b.class == self.0)
                    .map(|b| b.x)
                    .collect();
                if xs.is_empty() {
                    return 0.0;
                }
                let mean = xs.iter().sum::<f32>() / xs.len() as f32;
                if mean < 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
            _ => 0.0,
        }
    }
}

/// Number of `WHERE` predicates in a WikiSQL annotation (the paper's text
/// aggregation query).
#[derive(Debug, Clone, Copy)]
pub struct SqlNumPredicates;

impl ScoringFunction for SqlNumPredicates {
    fn score(&self, output: &LabelerOutput) -> f64 {
        match output {
            LabelerOutput::Sql(s) => s.num_predicates as f64,
            _ => 0.0,
        }
    }
}

/// Predicate: does the question parse into the given SQL operator? (The
/// paper selects "star"/selection operators, §6.3.)
#[derive(Debug, Clone, Copy)]
pub struct SqlOpIs(pub SqlOp);

impl ScoringFunction for SqlOpIs {
    fn score(&self, output: &LabelerOutput) -> f64 {
        matches!(output, LabelerOutput::Sql(s) if s.op == self.0) as u8 as f64
    }
}

/// Predicate: is the speaker male? (The paper's Common Voice selection and
/// fraction-male aggregation queries.)
#[derive(Debug, Clone, Copy)]
pub struct SpeechIsMale;

impl ScoringFunction for SpeechIsMale {
    fn score(&self, output: &LabelerOutput) -> f64 {
        matches!(
            output,
            LabelerOutput::Speech(s) if s.gender == tasti_labeler::Gender::Male
        ) as u8 as f64
    }
}

/// Adapts any closure into a [`ScoringFunction`] — the "custom proxy scores"
/// extension point of §4.2.
///
/// ```
/// use tasti_core::scoring::{FnScore, ScoringFunction};
/// use tasti_labeler::{Detection, LabelerOutput, ObjectClass};
/// // "Number of large objects" — a query no built-in covers, in 3 lines.
/// let large = FnScore(|o: &LabelerOutput| match o {
///     LabelerOutput::Detections(d) => d.iter().filter(|b| b.w > 0.1).count() as f64,
///     _ => 0.0,
/// });
/// let frame = LabelerOutput::Detections(vec![
///     Detection { class: ObjectClass::Bus, x: 0.5, y: 0.5, w: 0.2, h: 0.1 },
///     Detection { class: ObjectClass::Car, x: 0.2, y: 0.2, w: 0.05, h: 0.05 },
/// ]);
/// assert_eq!(large.score(&frame), 1.0);
/// ```
pub struct FnScore<F: Fn(&LabelerOutput) -> f64 + Send + Sync>(pub F);

impl<F: Fn(&LabelerOutput) -> f64 + Send + Sync> ScoringFunction for FnScore<F> {
    fn score(&self, output: &LabelerOutput) -> f64 {
        (self.0)(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasti_labeler::{Detection, Gender, SpeechAnnotation, SqlAnnotation};

    fn frame(boxes: &[(ObjectClass, f32)]) -> LabelerOutput {
        LabelerOutput::Detections(
            boxes
                .iter()
                .map(|&(class, x)| Detection {
                    class,
                    x,
                    y: 0.5,
                    w: 0.1,
                    h: 0.1,
                })
                .collect(),
        )
    }

    #[test]
    fn count_class_counts_only_matching() {
        let f = frame(&[
            (ObjectClass::Car, 0.1),
            (ObjectClass::Bus, 0.2),
            (ObjectClass::Car, 0.9),
        ]);
        assert_eq!(CountClass(ObjectClass::Car).score(&f), 2.0);
        assert_eq!(CountClass(ObjectClass::Bus).score(&f), 1.0);
    }

    #[test]
    fn has_class_is_binary() {
        let f = frame(&[(ObjectClass::Car, 0.4)]);
        assert_eq!(HasClass(ObjectClass::Car).score(&f), 1.0);
        assert_eq!(HasClass(ObjectClass::Bus).score(&f), 0.0);
        assert_eq!(HasClass(ObjectClass::Car).score(&frame(&[])), 0.0);
    }

    #[test]
    fn mean_x_averages_positions() {
        let f = frame(&[(ObjectClass::Car, 0.2), (ObjectClass::Car, 0.6)]);
        assert!((MeanXPosition(ObjectClass::Car).score(&f) - 0.4).abs() < 1e-6);
        assert_eq!(MeanXPosition(ObjectClass::Car).score(&frame(&[])), 0.5);
        // Other classes don't contribute.
        let g = frame(&[(ObjectClass::Car, 0.2), (ObjectClass::Bus, 0.9)]);
        assert!((MeanXPosition(ObjectClass::Car).score(&g) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn left_half_predicate_has_sharp_boundary() {
        let left = frame(&[(ObjectClass::Car, 0.49)]);
        let right = frame(&[(ObjectClass::Car, 0.51)]);
        assert_eq!(HasClassInLeftHalf(ObjectClass::Car).score(&left), 1.0);
        assert_eq!(HasClassInLeftHalf(ObjectClass::Car).score(&right), 0.0);
        assert_eq!(HasClassInLeftHalf(ObjectClass::Car).score(&frame(&[])), 0.0);
    }

    #[test]
    fn sql_scores() {
        let q = LabelerOutput::Sql(SqlAnnotation {
            op: SqlOp::Count,
            num_predicates: 3,
        });
        assert_eq!(SqlNumPredicates.score(&q), 3.0);
        assert_eq!(SqlOpIs(SqlOp::Count).score(&q), 1.0);
        assert_eq!(SqlOpIs(SqlOp::Select).score(&q), 0.0);
    }

    #[test]
    fn speech_scores() {
        let m = LabelerOutput::Speech(SpeechAnnotation {
            gender: Gender::Male,
            age_bucket: 1,
        });
        let f = LabelerOutput::Speech(SpeechAnnotation {
            gender: Gender::Female,
            age_bucket: 1,
        });
        assert_eq!(SpeechIsMale.score(&m), 1.0);
        assert_eq!(SpeechIsMale.score(&f), 0.0);
    }

    #[test]
    fn fn_score_adapts_closures() {
        let custom = FnScore(|o: &LabelerOutput| o.count_class(ObjectClass::Car) as f64 * 10.0);
        assert_eq!(custom.score(&frame(&[(ObjectClass::Car, 0.5)])), 10.0);
    }

    #[test]
    fn cross_modality_scores_are_neutral() {
        let q = LabelerOutput::Sql(SqlAnnotation {
            op: SqlOp::Avg,
            num_predicates: 1,
        });
        assert_eq!(CountClass(ObjectClass::Car).score(&q), 0.0);
        assert_eq!(MeanXPosition(ObjectClass::Car).score(&q), 0.5);
        assert_eq!(SpeechIsMale.score(&q), 0.0);
    }
}
