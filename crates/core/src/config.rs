//! Index construction configuration (the inputs of §2.2 and Algorithm 1).

use serde::{Deserialize, Serialize};
use tasti_cluster::{AssignStrategy, Metric, SelectionStrategy};
use tasti_nn::TripletConfig;

/// Configuration for building a [`crate::TastiIndex`].
///
/// Field names follow the paper: `n_train` is Algorithm 1's `N₁` (training
/// points mined for the triplet loss), `n_reps` is `N₂` (cluster
/// representatives, "buckets" in §6.8), `k` the number of distances retained
/// per record. The `mining` / `clustering` / `train_embedding` switches
/// implement the factor analysis and lesion study of §6.7: the paper's full
/// configuration is FPF mining + triplet training + FPF clustering with a
/// small random mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TastiConfig {
    /// Number of training records annotated for triplet mining (`N₁`).
    pub n_train: usize,
    /// Number of cluster representatives (`N₂`).
    pub n_reps: usize,
    /// Distances retained per record; §5.3: the default is `k = 5`.
    pub k: usize,
    /// Embedding dimension (the paper's default is 128).
    pub embedding_dim: usize,
    /// Train the embedding with the triplet loss (TASTI-T) or use the
    /// pre-trained embedding as-is (TASTI-PT).
    pub train_embedding: bool,
    /// How training records are mined (paper: FPF over pre-trained
    /// embeddings; ablation: random).
    pub mining: SelectionStrategy,
    /// How cluster representatives are selected (paper: FPF with a small
    /// random mix; ablation: random).
    pub clustering: SelectionStrategy,
    /// Triplet-training hyperparameters.
    #[serde(skip)]
    pub triplet: TripletConfig,
    /// Distance metric over embeddings.
    pub metric: Metric,
    /// Seed for all randomness in construction (weight init, triplet
    /// sampling, random representative mix).
    pub seed: u64,
    /// Worker threads for the distance/embedding kernels during
    /// construction (`0` = the machine's available parallelism). One knob
    /// governs the `mining`, `embed`, `cluster`, and `distances` stages;
    /// results are identical at any setting.
    #[serde(default)]
    pub threads: usize,
    /// How the `distances` stage assigns records to their `k` nearest
    /// representatives: exact blocked scan, IVF candidate stage with exact
    /// refinement, or size-based auto selection (the default; small builds
    /// stay bit-identical to exact). Configs serialized before the knob
    /// existed deserialize to `Auto`.
    #[serde(default)]
    pub assign_strategy: AssignStrategy,
}

impl Default for TastiConfig {
    fn default() -> Self {
        Self {
            n_train: 300,
            n_reps: 700,
            k: 5,
            embedding_dim: 32,
            train_embedding: true,
            mining: SelectionStrategy::Fpf,
            clustering: SelectionStrategy::FpfWithRandomMix {
                random_fraction: 0.1,
            },
            triplet: TripletConfig::default(),
            metric: Metric::L2,
            seed: 0x7A57,
            threads: 0,
            assign_strategy: AssignStrategy::Auto,
        }
    }
}

impl TastiConfig {
    /// The paper's full TASTI-T configuration scaled to a dataset of `n`
    /// records: the paper used `N₁ = 3000`, `N₂ = 7000` on ~10⁶-frame
    /// videos (§6.3); we keep the same ~0.3% / 0.7% ratios.
    pub fn scaled_to(n: usize) -> Self {
        Self {
            n_train: (n / 300).clamp(50, 3000),
            n_reps: (n / 130).clamp(100, 7000),
            ..Self::default()
        }
    }

    /// TASTI-PT: identical but without triplet training.
    pub fn pretrained_only(mut self) -> Self {
        self.train_embedding = false;
        self
    }

    /// Total labeler budget implied by this configuration (training points
    /// plus representatives; overlap reduces the realized count).
    pub fn labeler_budget(&self) -> usize {
        let train = if self.train_embedding {
            self.n_train
        } else {
            0
        };
        train + self.n_reps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let c = TastiConfig::default();
        assert_eq!(c.k, 5);
        assert!(c.train_embedding);
        assert!(matches!(c.mining, SelectionStrategy::Fpf));
        assert!(matches!(
            c.clustering,
            SelectionStrategy::FpfWithRandomMix { random_fraction } if random_fraction > 0.0
        ));
    }

    #[test]
    fn scaled_config_keeps_paper_ratios() {
        let c = TastiConfig::scaled_to(1_000_000);
        assert_eq!(c.n_train, 3000);
        assert_eq!(c.n_reps, 7000);
        let small = TastiConfig::scaled_to(30_000);
        assert_eq!(small.n_train, 100);
        assert!(small.n_reps >= 100);
    }

    #[test]
    fn threads_knob_defaults_to_auto_and_tolerates_legacy_configs() {
        let c = TastiConfig::default();
        assert_eq!(c.threads, 0);
        let json = serde_json::to_string(&c).unwrap();
        // Configs serialized before the knob existed lack the field; the
        // serde default must fill in 0 (= auto).
        let legacy = json
            .replace(",\"threads\":0", "")
            .replace("\"threads\":0,", "");
        let back: TastiConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.threads, 0);
    }

    #[test]
    fn assign_strategy_defaults_to_auto_and_tolerates_legacy_configs() {
        let c = TastiConfig::default();
        assert_eq!(c.assign_strategy, AssignStrategy::Auto);
        let json = serde_json::to_string(&c).unwrap();
        // Configs serialized before the knob existed lack the field.
        let legacy = json
            .replace(",\"assign_strategy\":\"Auto\"", "")
            .replace("\"assign_strategy\":\"Auto\",", "");
        assert!(!legacy.contains("assign_strategy"));
        let back: TastiConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.assign_strategy, AssignStrategy::Auto);
    }

    #[test]
    fn budget_excludes_training_when_pretrained() {
        let c = TastiConfig::default();
        let pt = c.clone().pretrained_only();
        assert_eq!(pt.labeler_budget() + c.n_train, c.labeler_budget());
    }
}
