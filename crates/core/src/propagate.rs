//! Score propagation (§4.3).
//!
//! TASTI executes the scoring function on the cluster representatives (their
//! target-labeler outputs are cached) and materializes approximate scores
//! for every other record: the **inverse-distance-weighted mean** of the `k`
//! nearest representatives for numeric scores, and the **distance-weighted
//! majority vote** for categorical scores. Records at (numerically) zero
//! distance from a representative — in particular the representatives
//! themselves — receive that representative's exact score.

use std::collections::HashMap;
use tasti_cluster::{MinKTable, Neighbor};

/// Distances below this are treated as "is the representative" → exact score.
const EXACT_EPS: f32 = 1e-9;
/// Regularizer keeping inverse-distance weights finite.
const WEIGHT_EPS: f64 = 1e-6;

/// Inverse-distance-weighted mean of the ≤ `k` nearest representatives'
/// scores for a single record.
pub fn weighted_mean(neighbors: &[Neighbor], rep_scores: &[f64], k: usize) -> f64 {
    let take = k.max(1).min(neighbors.len());
    let nearest = &neighbors[..take];
    // Exact on (numerically) zero distance.
    if nearest[0].dist <= EXACT_EPS {
        return rep_scores[nearest[0].rep as usize];
    }
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for n in nearest {
        // A NaN or infinite distance carries no weighting information (a
        // NaN weight would poison the whole mean); skip the neighbor.
        if !n.dist.is_finite() {
            continue;
        }
        let w = 1.0 / (n.dist as f64 + WEIGHT_EPS);
        num += w * rep_scores[n.rep as usize];
        den += w;
    }
    if den == 0.0 {
        // Every neighbor distance was non-finite: no usable weights, so
        // fall back to the nominal nearest representative's exact score.
        return rep_scores[nearest[0].rep as usize];
    }
    num / den
}

/// Distance-weighted majority vote over the ≤ `k` nearest representatives'
/// categories for a single record.
pub fn weighted_vote(neighbors: &[Neighbor], rep_categories: &[u32], k: usize) -> u32 {
    let take = k.max(1).min(neighbors.len());
    let nearest = &neighbors[..take];
    if nearest[0].dist <= EXACT_EPS {
        return rep_categories[nearest[0].rep as usize];
    }
    let mut tally: HashMap<u32, f64> = HashMap::new();
    for n in nearest {
        if !n.dist.is_finite() {
            continue;
        }
        let w = 1.0 / (n.dist as f64 + WEIGHT_EPS);
        *tally.entry(rep_categories[n.rep as usize]).or_insert(0.0) += w;
    }
    // Deterministic tie-break: highest weight, then smallest category id.
    // `total_cmp` keeps this a total order — the old
    // `partial_cmp(..).unwrap()` panicked the moment a NaN distance slipped
    // a NaN weight into the tally.
    tally
        .into_iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c)
        .unwrap_or_else(|| rep_categories[nearest[0].rep as usize])
}

/// Propagates numeric representative scores to every record (§4.3).
pub fn propagate_numeric(mink: &MinKTable, rep_scores: &[f64], k: usize) -> Vec<f64> {
    assert_eq!(
        rep_scores.len(),
        mink.n_reps(),
        "one score per representative required"
    );
    (0..mink.n_records())
        .map(|i| weighted_mean(mink.neighbors(i), rep_scores, k))
        .collect()
}

/// Propagates categorical representative labels to every record.
pub fn propagate_categorical(mink: &MinKTable, rep_categories: &[u32], k: usize) -> Vec<u32> {
    assert_eq!(
        rep_categories.len(),
        mink.n_reps(),
        "one category per representative required"
    );
    (0..mink.n_records())
        .map(|i| weighted_vote(mink.neighbors(i), rep_categories, k))
        .collect()
}

/// The limit-query scoring view (§6.3): `k = 1` score with ties broken by
/// the distance to the nearest representative. Returns `(score, distance)`
/// per record; rank descending by score, ascending by distance.
pub fn limit_scores(mink: &MinKTable, rep_scores: &[f64]) -> Vec<(f64, f32)> {
    assert_eq!(rep_scores.len(), mink.n_reps());
    (0..mink.n_records())
        .map(|i| {
            let n = mink.nearest(i);
            (rep_scores[n.rep as usize], n.dist)
        })
        .collect()
}

/// Descending on `f64` with NaN ordered last (a total order, so `sort_by`
/// can never panic or produce an inconsistent ranking).
fn desc_score_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Ascending on `f32` distances with NaN ordered last.
fn asc_dist_nan_last(a: f32, b: f32) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Ranks record indices for a limit query: descending score, ascending
/// distance tie-break (closest to a high-scoring representative first).
///
/// NaN keys sort **last** on both criteria: a NaN representative score (or
/// distance) carries no ranking information, so such records must never
/// claim a top rank — and the comparator stays a total order, where the old
/// `partial_cmp(..).unwrap_or(Equal)` was non-transitive in the presence of
/// NaN and could scramble the ranking arbitrarily.
pub fn limit_ranking(mink: &MinKTable, rep_scores: &[f64]) -> Vec<usize> {
    let scores = limit_scores(mink, rep_scores);
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        desc_score_nan_last(scores[a].0, scores[b].0)
            .then_with(|| asc_dist_nan_last(scores[a].1, scores[b].1))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasti_cluster::Metric;

    /// Records on a line at 0..6, reps at {0, 5} with scores {0, 10}.
    fn fixture() -> MinKTable {
        let records: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let reps = vec![0.0f32, 5.0];
        MinKTable::build(&records, &reps, 1, 2, Metric::L2)
    }

    #[test]
    fn representatives_receive_exact_scores() {
        let t = fixture();
        let scores = propagate_numeric(&t, &[0.0, 10.0], 2);
        assert_eq!(scores[0], 0.0);
        assert_eq!(scores[5], 10.0);
    }

    #[test]
    fn interpolation_is_monotone_between_reps() {
        let t = fixture();
        let scores = propagate_numeric(&t, &[0.0, 10.0], 2);
        for w in scores.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "scores should rise toward the high rep: {scores:?}"
            );
        }
        // Midpoint-ish record leans toward nearer rep.
        assert!(scores[1] < 5.0);
        assert!(scores[4] > 5.0);
    }

    #[test]
    fn k1_equals_nearest_rep_score() {
        let t = fixture();
        let scores = propagate_numeric(&t, &[0.0, 10.0], 1);
        assert_eq!(scores, vec![0.0, 0.0, 0.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn propagated_scores_stay_within_rep_score_range() {
        let t = fixture();
        let scores = propagate_numeric(&t, &[2.0, 7.0], 2);
        for s in scores {
            assert!(
                (2.0..=7.0).contains(&s),
                "convex combination out of range: {s}"
            );
        }
    }

    #[test]
    fn categorical_vote_matches_nearest_when_k1() {
        let t = fixture();
        let cats = propagate_categorical(&t, &[3, 9], 1);
        assert_eq!(cats, vec![3, 3, 3, 9, 9, 9]);
    }

    #[test]
    fn categorical_vote_weighted_by_distance() {
        let t = fixture();
        let cats = propagate_categorical(&t, &[3, 9], 2);
        // Record 1 is at d=1 from rep0, d=4 from rep1 → vote 3.
        assert_eq!(cats[1], 3);
        assert_eq!(cats[4], 9);
    }

    #[test]
    fn categorical_tie_breaks_deterministically() {
        // Record 0 equidistant from both reps.
        let records = vec![0.0f32];
        let reps = vec![-1.0f32, 1.0];
        let t = MinKTable::build(&records, &reps, 1, 2, Metric::L2);
        let a = propagate_categorical(&t, &[7, 2], 2);
        let b = propagate_categorical(&t, &[7, 2], 2);
        assert_eq!(a, b);
        // Equal weights → smaller category id wins.
        assert_eq!(a[0], 2);
    }

    #[test]
    fn limit_ranking_orders_by_score_then_distance() {
        let t = fixture();
        // rep0 (records 0..2) scores high.
        let order = limit_ranking(&t, &[10.0, 0.0]);
        // Among high-score records, nearest to rep first: 0 (d=0), 1, 2.
        assert_eq!(&order[..3], &[0, 1, 2]);
        assert_eq!(&order[3..], &[5, 4, 3]);
    }

    #[test]
    fn limit_ranking_sorts_nan_scores_last() {
        // Regression: the old non-total comparator could rank a NaN-scored
        // record anywhere (including first). NaN must always sort last.
        let t = fixture();
        // rep0 (records 0..2) has a NaN score, rep1 (records 3..5) scores 10.
        let order = limit_ranking(&t, &[f64::NAN, 10.0]);
        // High-score records first, nearest-to-rep first: 5 (d=0), 4, 3.
        assert_eq!(&order[..3], &[5, 4, 3]);
        // NaN-scored records last, still distance-ordered among themselves.
        assert_eq!(&order[3..], &[0, 1, 2]);
    }

    #[test]
    fn weighted_vote_survives_nan_distances() {
        // Regression: a NaN neighbor distance made the tally comparator's
        // `partial_cmp(..).unwrap()` panic. NaN neighbors are now skipped.
        let neighbors = vec![
            Neighbor {
                rep: 0,
                dist: f32::NAN,
            },
            Neighbor { rep: 1, dist: 1.0 },
            Neighbor { rep: 2, dist: 2.0 },
        ];
        let vote = weighted_vote(&neighbors, &[7, 4, 9], 3);
        // The NaN neighbor contributes nothing; rep 1 (closest finite) wins.
        assert_eq!(vote, 4);
    }

    #[test]
    fn weighted_vote_all_nan_falls_back_to_nearest_rep() {
        let neighbors = vec![
            Neighbor {
                rep: 1,
                dist: f32::NAN,
            },
            Neighbor {
                rep: 0,
                dist: f32::INFINITY,
            },
        ];
        // No finite weights at all: deterministic fallback to the nominal
        // nearest representative's category, never a panic.
        assert_eq!(weighted_vote(&neighbors, &[7, 4], 2), 4);
    }

    #[test]
    fn weighted_mean_skips_non_finite_distances() {
        let neighbors = vec![
            Neighbor {
                rep: 0,
                dist: f32::NAN,
            },
            Neighbor { rep: 1, dist: 1.0 },
            Neighbor {
                rep: 2,
                dist: f32::INFINITY,
            },
        ];
        let mean = weighted_mean(&neighbors, &[100.0, 5.0, 200.0], 3);
        // Only the finite neighbor contributes, so the mean is exactly its
        // score (and in particular finite — previously it was NaN).
        assert!((mean - 5.0).abs() < 1e-9, "got {mean}");
    }

    #[test]
    fn weighted_mean_all_non_finite_falls_back_to_nearest_rep() {
        let neighbors = vec![
            Neighbor {
                rep: 1,
                dist: f32::INFINITY,
            },
            Neighbor {
                rep: 0,
                dist: f32::NAN,
            },
        ];
        let mean = weighted_mean(&neighbors, &[3.0, 8.0], 2);
        assert_eq!(mean, 8.0);
    }

    #[test]
    #[should_panic(expected = "one score per representative")]
    fn rep_score_length_mismatch_panics() {
        let t = fixture();
        let _ = propagate_numeric(&t, &[1.0], 2);
    }

    #[test]
    fn k_larger_than_neighbor_list_is_clamped() {
        let t = fixture();
        let scores = propagate_numeric(&t, &[0.0, 10.0], 99);
        assert_eq!(scores.len(), 6);
    }
}
