//! Index persistence.
//!
//! A TASTI index is built once per dataset and amortized across queries and
//! sessions (Table 1's "no index" column is exactly the amortized view), so
//! it must survive process restarts — and the disks it lives on. The
//! on-disk format is a versioned JSON document carrying everything
//! [`TastiIndex`] needs to answer queries: embeddings, representative ids
//! and cached labeler outputs, and the min-k table. Cracked representatives
//! round-trip too.
//!
//! # Durability and integrity
//!
//! [`save`] is atomic *and* durable: the document is written to a sibling
//! temp file, fsync'd, renamed over the destination, and the parent
//! directory is fsync'd — so a crash at any instant leaves either the old
//! snapshot or the complete new one, never a durable name pointing at
//! non-durable bytes. The previous snapshot is rotated to a `.prev`
//! sibling (the *last-good* copy) before the rename.
//!
//! Streamed indexes (nonzero ingest watermark) are written as a format
//! version 3 *envelope*: a CRC32 over the whole version-2 body, so bit rot
//! anywhere in the file is detected at load instead of surfacing as a
//! wrong answer. Ingest-free indexes keep writing the bare version-1 body,
//! byte-identical to pre-ingest builds. [`load`] verifies the checksum and
//! reports damage as the typed [`PersistError::Corrupt`];
//! [`load_with_fallback`] additionally recovers from the last-good copy —
//! lossless for streamed indexes, whose ingest log replays everything
//! above the older snapshot's watermark.

use crate::index::TastiIndex;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use tasti_cluster::{AssignStrategy, Metric, MinKTable};
use tasti_ingest::crc32::crc32;
use tasti_ingest::vfs::{RealVfs, Vfs};
use tasti_labeler::{LabelerOutput, RecordId};
use tasti_nn::{Matrix, Mlp};

/// Current (maximum) *body* format version. Version 2 adds the ingest
/// watermark for streamed indexes; [`to_json`] still writes version 1 —
/// byte-identical to pre-ingest builds — whenever the index has never
/// ingested, and [`from_json`] accepts both.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest on-disk format version this build can load.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// File-level envelope version: a whole-body CRC32 wrapped around a
/// version-2 body. Written by [`save`] for streamed indexes, understood by
/// [`load`]; [`from_json`] deals in bodies only and does not accept it.
pub const ENVELOPE_VERSION: u32 = 3;

/// `skip_serializing_if` helper: elide the watermark when the index has
/// never ingested, keeping ingest-free snapshots on format version 1.
fn watermark_is_zero(v: &u64) -> bool {
    *v == 0
}

/// Serializable snapshot of a [`TastiIndex`].
#[derive(Serialize, Deserialize)]
struct IndexSnapshot {
    version: u32,
    embeddings: Matrix,
    metric: Metric,
    k: usize,
    reps: Vec<RecordId>,
    rep_outputs: Vec<LabelerOutput>,
    mink: MinKTable,
    /// Trained embedding model (None for TASTI-PT indexes).
    model: Option<Mlp>,
    /// Rep-assignment strategy for maintenance rebuilds. Defaulted so
    /// snapshots written before the field existed still load (as `Auto`,
    /// which is what those builds effectively ran).
    #[serde(default)]
    assign_strategy: AssignStrategy,
    /// Highest ingest-log sequence number folded into the snapshot
    /// (format version 2). A snapshot is the *base* of base + segment
    /// deltas: on restart the serving layer replays only log frames above
    /// this mark. Elided (and the snapshot stays version 1) when zero.
    #[serde(default, skip_serializing_if = "watermark_is_zero")]
    ingest_watermark: u64,
}

/// Errors raised when loading an index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The document is not a valid index snapshot.
    Format(serde_json::Error),
    /// The snapshot's format version is not supported by this build. Raised
    /// from a cheap header probe *before* the full typed parse, so a
    /// snapshot written by a newer build whose body no longer matches this
    /// build's schema is still reported as a version mismatch — the
    /// actionable error — rather than a generic format failure.
    Version(u32),
    /// The snapshot's bytes fail an integrity check: a version-3 envelope
    /// whose checksum does not match its body, or an envelope too garbled
    /// to parse. This is disk damage, not a format revision.
    Corrupt {
        /// The damaged snapshot file.
        path: PathBuf,
        /// Human-readable diagnosis.
        detail: String,
        /// Whether a last-good fallback copy was loaded in its place
        /// (only ever `true` inside a [`LoadReport`]; an `Err` means no
        /// fallback was available or it was damaged too).
        recovered: bool,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index I/O error: {e}"),
            PersistError::Format(e) => write!(f, "malformed index snapshot: {e}"),
            PersistError::Version(v) => {
                write!(
                    f,
                    "unsupported index format version {v} (supported: \
                     {MIN_FORMAT_VERSION}..={FORMAT_VERSION}); \
                     rebuild the index or load it with a matching build"
                )
            }
            PersistError::Corrupt {
                path,
                detail,
                recovered,
            } => {
                write!(f, "corrupt index snapshot {}: {detail}", path.display())?;
                if *recovered {
                    write!(f, " (recovered from the last-good copy)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
        recovered: false,
    }
}

/// Serializes the index to a JSON string (the snapshot *body*).
///
/// An index that has never ingested streamed records (watermark 0) is
/// written as format version 1, byte-identical to pre-ingest builds — so
/// existing snapshot diffing, caching, and older readers keep working
/// until streaming is actually used.
pub fn to_json(index: &TastiIndex) -> String {
    let version = if index.ingest_watermark() == 0 {
        MIN_FORMAT_VERSION
    } else {
        FORMAT_VERSION
    };
    let snapshot = IndexSnapshot {
        version,
        embeddings: index.embeddings().clone(),
        metric: index.metric(),
        k: index.k(),
        reps: index.reps().to_vec(),
        rep_outputs: (0..index.reps().len())
            .map(|i| index.rep_output(i).clone())
            .collect(),
        mink: index.mink().clone(),
        model: index.model().cloned(),
        assign_strategy: index.assign_strategy(),
        ingest_watermark: index.ingest_watermark(),
    };
    serde_json::to_string(&snapshot).expect("index serialization cannot fail")
}

/// Header probe: only the `version` field, every other field ignored. A
/// snapshot from any format revision deserializes into this as long as it
/// is a well-formed JSON object, which is what lets [`from_json`] report a
/// version mismatch instead of whatever body field happens to differ.
#[derive(Deserialize)]
struct VersionProbe {
    version: Option<u32>,
}

/// Deserializes an index from a JSON snapshot *body* (version 1 or 2 —
/// the version-3 file envelope is unwrapped by [`load`], not here).
///
/// The format version is checked **before** the body is parsed: a
/// well-formed snapshot carrying a different `version` is rejected with
/// [`PersistError::Version`] even if its body layout is incompatible with
/// this build's schema (a truncated or otherwise corrupt document is still
/// [`PersistError::Format`]).
///
/// # Errors
/// Returns [`PersistError`] on malformed input or version mismatch.
pub fn from_json(json: &str) -> Result<TastiIndex, PersistError> {
    let supported = MIN_FORMAT_VERSION..=FORMAT_VERSION;
    let probe: VersionProbe = serde_json::from_str(json)?;
    match probe.version {
        Some(v) if !supported.contains(&v) => return Err(PersistError::Version(v)),
        Some(_) => {}
        None => {
            // A JSON document with no version field is not a snapshot of
            // any revision — fall through to the typed parse for the
            // field-level error message.
        }
    }
    let snapshot: IndexSnapshot = serde_json::from_str(json)?;
    if !supported.contains(&snapshot.version) {
        return Err(PersistError::Version(snapshot.version));
    }
    let mut index = TastiIndex::new(
        snapshot.embeddings,
        snapshot.metric,
        snapshot.k,
        snapshot.reps,
        snapshot.rep_outputs,
        snapshot.mink,
    )
    .with_assign_strategy(snapshot.assign_strategy);
    if let Some(model) = snapshot.model {
        index = index.with_model(model);
    }
    index.set_ingest_watermark(snapshot.ingest_watermark);
    Ok(index)
}

/// The exact prefix [`save`] writes for a version-3 envelope; [`load`]
/// keys on it, so the layout is fixed, not merely conventional JSON.
const V3_PREFIX: &str = "{\"version\":3,\"crc32\":";

/// The document [`save`] writes: the bare version-1/2 body for ingest-free
/// indexes (byte-identity contract), the checksummed version-3 envelope
/// for streamed ones.
fn to_document(index: &TastiIndex) -> String {
    let body = to_json(index);
    if index.ingest_watermark() == 0 {
        return body;
    }
    let crc = crc32(body.as_bytes());
    format!("{{\"version\":3,\"crc32\":{crc},\"snapshot\":{body}}}")
}

/// Parses a snapshot document as read from `path`: unwraps and verifies a
/// version-3 envelope, or hands a bare body to [`from_json`].
fn parse_document(text: &str, path: &Path) -> Result<TastiIndex, PersistError> {
    let Some(rest) = text.strip_prefix(V3_PREFIX) else {
        return from_json(text);
    };
    let comma = rest
        .find(',')
        .ok_or_else(|| corrupt(path, "truncated version-3 envelope"))?;
    let stored: u32 = rest[..comma]
        .parse()
        .map_err(|_| corrupt(path, "malformed version-3 envelope checksum"))?;
    let body = rest[comma..]
        .strip_prefix(",\"snapshot\":")
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| corrupt(path, "malformed version-3 envelope layout"))?;
    let actual = crc32(body.as_bytes());
    if actual != stored {
        return Err(corrupt(
            path,
            format!(
                "snapshot checksum mismatch \
                 (stored {stored:#010x}, computed {actual:#010x})"
            ),
        ));
    }
    from_json(body)
}

/// The sibling path where [`save`] rotates the previous snapshot — the
/// *last-good* copy [`load_with_fallback`] recovers from: `{file}.prev`.
pub fn last_good_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".prev");
    path.with_file_name(name)
}

/// The directory whose entry table must be fsync'd for renames of `path`
/// to be durable.
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Writes the index to `path` as JSON — atomically and durably. See
/// [`save_with_vfs`].
///
/// # Errors
/// Propagates I/O failures. On failure the temporary file is removed and
/// any previous snapshot at `path` is left (or put back) in place.
pub fn save(index: &TastiIndex, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_with_vfs(index, path, &RealVfs)
}

/// [`save`] through an injectable [`Vfs`] (fault testing).
///
/// The snapshot is written to a sibling temporary file, **fsync'd**, and
/// renamed over `path`; the parent directory is fsync'd after the rename.
/// Without the first fsync a crash shortly after a "successful" save could
/// leave a durable name pointing at non-durable bytes; without the second
/// the rename itself could vanish. Any existing snapshot is first rotated
/// to the `.prev` last-good copy (see [`last_good_path`]), so a later
/// corruption of `path` can fall back to it.
///
/// # Errors
/// Propagates I/O failures. On failure the temporary file is removed and
/// the previous snapshot is left at (or restored to) `path` when possible.
pub fn save_with_vfs(
    index: &TastiIndex,
    path: impl AsRef<Path>,
    vfs: &dyn Vfs,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("index path has no file name: {}", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let prev = last_good_path(path);
    let document = to_document(index);
    let result = (|| -> io::Result<()> {
        let mut file = vfs.create(&tmp)?;
        file.write_all(document.as_bytes())?;
        // fsync before the rename: otherwise the rename can be durable
        // while the bytes are not.
        file.sync_data()?;
        drop(file);
        // Rotate the current snapshot to the last-good copy before
        // installing the new one.
        if vfs.exists(path) {
            vfs.rename(path, &prev)?;
        }
        vfs.rename(&tmp, path)?;
        // fsync the parent directory so both renames survive a crash.
        vfs.sync_dir(parent_dir(path))
    })();
    if let Err(e) = result {
        // If the install never completed, put the last-good copy back so
        // `path` keeps naming a valid snapshot.
        if !vfs.exists(path) && vfs.exists(&prev) {
            vfs.rename(&prev, path).ok();
        }
        vfs.remove_file(&tmp).ok();
        return Err(e.into());
    }
    Ok(())
}

/// Loads an index from `path` (bare body or version-3 envelope), with no
/// fallback: damage is reported, not repaired. Use [`load_with_fallback`]
/// where a last-good recovery is wanted.
///
/// # Errors
/// Returns [`PersistError`] on I/O failure, malformed input, checksum
/// mismatch, or version mismatch.
pub fn load(path: impl AsRef<Path>) -> Result<TastiIndex, PersistError> {
    load_document(path.as_ref(), &RealVfs)
}

fn load_document(path: &Path, vfs: &dyn Vfs) -> Result<TastiIndex, PersistError> {
    let bytes = vfs.read(path)?;
    let text =
        String::from_utf8(bytes).map_err(|_| corrupt(path, "snapshot is not valid UTF-8"))?;
    parse_document(&text, path)
}

/// A successful [`load_with_fallback`]: the index, plus how it was
/// obtained when the primary snapshot was unusable.
pub struct LoadReport {
    /// The loaded index.
    pub index: TastiIndex,
    /// `Some` when the primary snapshot was damaged (or missing mid-save)
    /// and the last-good copy was loaded instead. Callers surface this —
    /// a metric, a startup notice — so recovery is never silent.
    pub fallback: Option<FallbackInfo>,
}

/// Why and from where a fallback load happened.
#[derive(Debug, Clone)]
pub struct FallbackInfo {
    /// What was wrong with the primary snapshot.
    pub detail: String,
    /// The last-good copy that was loaded instead.
    pub fallback_path: PathBuf,
}

/// Loads an index from `path`, falling back to the `.prev` last-good copy
/// when the primary is damaged (checksum mismatch, garbled document) or
/// missing with a last-good present (a crash between `save`'s two
/// renames). For streamed indexes the fallback is lossless: the ingest
/// log replays everything above the older snapshot's watermark.
///
/// A [`PersistError::Version`] never falls back — a snapshot from a newer
/// build is not damage.
///
/// # Errors
/// The primary snapshot's error when no fallback is available or the
/// last-good copy is unusable too (`Corrupt.recovered` stays `false`).
pub fn load_with_fallback(path: impl AsRef<Path>) -> Result<LoadReport, PersistError> {
    load_with_fallback_vfs(path, &RealVfs)
}

/// [`load_with_fallback`] through an injectable [`Vfs`] (fault testing).
///
/// # Errors
/// See [`load_with_fallback`].
pub fn load_with_fallback_vfs(
    path: impl AsRef<Path>,
    vfs: &dyn Vfs,
) -> Result<LoadReport, PersistError> {
    let path = path.as_ref();
    let primary = match load_document(path, vfs) {
        Ok(index) => {
            return Ok(LoadReport {
                index,
                fallback: None,
            })
        }
        Err(e) => e,
    };
    let damaged = matches!(
        primary,
        PersistError::Corrupt { .. } | PersistError::Format(_)
    ) || matches!(&primary, PersistError::Io(e) if e.kind() == io::ErrorKind::NotFound);
    let prev = last_good_path(path);
    if !damaged || !vfs.exists(&prev) {
        return Err(primary);
    }
    match load_document(&prev, vfs) {
        Ok(index) => Ok(LoadReport {
            index,
            fallback: Some(FallbackInfo {
                detail: primary.to_string(),
                fallback_path: prev,
            }),
        }),
        // The last-good copy is unusable too: report the *primary*
        // failure (recovered stays false).
        Err(_) => Err(primary),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::CountClass;
    use tasti_ingest::vfs::{FaultScript, FaultVfs};
    use tasti_labeler::{Detection, ObjectClass};

    fn frame(n_cars: usize) -> LabelerOutput {
        LabelerOutput::Detections(
            (0..n_cars)
                .map(|i| Detection {
                    class: ObjectClass::Car,
                    x: 0.1 * (i + 1) as f32,
                    y: 0.5,
                    w: 0.1,
                    h: 0.1,
                })
                .collect(),
        )
    }

    fn tiny_index() -> TastiIndex {
        let embeddings = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32 * 0.5);
        let reps = vec![0usize, 5];
        let rep_outputs = vec![frame(0), frame(3)];
        let rep_emb: Vec<f32> = [embeddings.row(0), embeddings.row(5)].concat();
        let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 2, 2, Metric::L2);
        TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
    }

    fn streamed_index(watermark: u64) -> TastiIndex {
        let mut index = tiny_index();
        index.set_ingest_watermark(watermark);
        index
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tasti-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn faulty(script: &str) -> FaultVfs {
        FaultVfs::scripted(FaultScript::parse(script).unwrap())
    }

    #[test]
    fn assign_strategy_round_trips_and_defaults_for_legacy_snapshots() {
        use tasti_cluster::IvfParams;
        let index = tiny_index().with_assign_strategy(AssignStrategy::Ivf(IvfParams {
            nprobe: 3,
            ..IvfParams::default()
        }));
        let json = to_json(&index);
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.assign_strategy(), index.assign_strategy());

        // A snapshot written before the field existed loads as Auto.
        // `assign_strategy` is the last snapshot field, so strip it with
        // its leading comma.
        let encoded = serde_json::to_string(&index.assign_strategy()).unwrap();
        let legacy = json.replace(&format!(",\"assign_strategy\":{encoded}"), "");
        assert!(!legacy.contains("assign_strategy"), "field not stripped");
        let restored = from_json(&legacy).unwrap();
        assert_eq!(restored.assign_strategy(), AssignStrategy::Auto);
    }

    #[test]
    fn round_trip_preserves_query_behavior() {
        let index = tiny_index();
        let restored = from_json(&to_json(&index)).unwrap();
        assert_eq!(restored.reps(), index.reps());
        assert_eq!(restored.k(), index.k());
        assert_eq!(restored.embeddings(), index.embeddings());
        let score = CountClass(ObjectClass::Car);
        assert_eq!(restored.propagate(&score), index.propagate(&score));
        assert_eq!(restored.limit_ranking(&score), index.limit_ranking(&score));
    }

    #[test]
    fn cracked_reps_survive_round_trip() {
        let mut index = tiny_index();
        index.crack(3, frame(2));
        let restored = from_json(&to_json(&index)).unwrap();
        assert!(restored.is_rep(3));
        assert_eq!(restored.rep_output(2), &frame(2));
        let score = CountClass(ObjectClass::Car);
        assert_eq!(restored.propagate(&score)[3], 2.0);
    }

    #[test]
    fn file_round_trip() {
        let index = tiny_index();
        let dir = scratch("roundtrip");
        let path = dir.join("index.json");
        save(&index, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.reps(), index.reps());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_is_a_format_error() {
        // A snapshot cut off mid-document (what a non-atomic writer could
        // leave behind after a crash) must surface as `Format`, not a panic
        // or a silently-wrong index.
        let json = to_json(&tiny_index());
        for cut in [1, json.len() / 4, json.len() / 2, json.len() - 1] {
            assert!(
                matches!(from_json(&json[..cut]), Err(PersistError::Format(_))),
                "truncation at {cut} bytes not rejected"
            );
        }
        // And through the file path too.
        let dir = scratch("truncated");
        let path = dir.join("truncated.json");
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Format(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let index = tiny_index();
        let dir = scratch("atomic");
        let path = dir.join("index.json");
        // Seed the destination with garbage; a successful save must fully
        // replace it.
        std::fs::write(&path, "garbage from a previous crash").unwrap();
        save(&index, &path).unwrap();
        // Byte-compare rather than deserialize: the snapshot at `path` must
        // be exactly the complete document, never a partial write.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), to_json(&index));
        // No temporary sibling survives a successful save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_to_unwritable_path_fails_without_touching_destination() {
        let index = tiny_index();
        assert!(matches!(
            save(&index, "/nonexistent-dir/index.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            from_json("not json"),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(from_json("{}"), Err(PersistError::Format(_))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut json = to_json(&tiny_index());
        json = json.replace("\"version\":1", "\"version\":999");
        assert!(matches!(from_json(&json), Err(PersistError::Version(999))));
    }

    #[test]
    fn wrong_version_wins_over_incompatible_body() {
        // A snapshot body from a hypothetical future format revision: the
        // header says version 9 and the body no longer matches this build's
        // schema (fields renamed/removed). The version probe must fire
        // *first* so the user sees the actionable "version mismatch" error,
        // not a generic missing-field format error. (Version 3 is taken:
        // it is the file-level envelope, unwrapped by `load`.)
        let json = r#"{"version":9,"embeddings_v9":"opaque-blob","reps":[0]}"#;
        match from_json(json) {
            Err(PersistError::Version(9)) => {}
            other => panic!("expected Version(9), got {other:?}"),
        }
        // The display message names the offending and supported versions.
        let msg = from_json(json).unwrap_err().to_string();
        assert!(
            msg.contains('9') && msg.contains('1') && msg.contains('2'),
            "message: {msg}"
        );
    }

    #[test]
    fn ingest_free_snapshot_stays_version_1() {
        // Byte-compat contract: until an index actually ingests, its
        // snapshot is indistinguishable from a pre-ingest build's.
        let json = to_json(&tiny_index());
        assert!(json.contains("\"version\":1"), "{json}");
        assert!(!json.contains("ingest_watermark"), "{json}");
    }

    #[test]
    fn ingest_watermark_bumps_to_version_2_and_round_trips() {
        let index = streamed_index(42);
        let json = to_json(&index);
        assert!(json.contains("\"version\":2"), "{json}");
        assert!(json.contains("\"ingest_watermark\":42"), "{json}");
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.ingest_watermark(), 42);
        // Query behavior is untouched by the version bump.
        let score = CountClass(ObjectClass::Car);
        assert_eq!(restored.propagate(&score), index.propagate(&score));
    }

    #[test]
    fn version_2_snapshot_without_watermark_loads() {
        // A hand-rolled v2 header over a v1 body (e.g. a tool that bumped
        // the version without writing the optional field) still loads,
        // defaulting the watermark to zero.
        let json = to_json(&tiny_index()).replace("\"version\":1", "\"version\":2");
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.ingest_watermark(), 0);
    }

    #[test]
    fn hand_mangled_header_is_a_version_error_through_the_file_path() {
        let index = tiny_index();
        let dir = scratch("mangled");
        let path = dir.join("mangled.json");
        let mangled = to_json(&index).replace("\"version\":1", "\"version\":7");
        std::fs::write(&path, mangled).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Version(7))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_field_absent_is_a_format_error() {
        // No version field at all: not a snapshot of any revision.
        assert!(matches!(
            from_json(r#"{"reps":[0,5]}"#),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load("/nonexistent/path/index.json"),
            Err(PersistError::Io(_))
        ));
    }

    // ------------------------------------------------------------------
    // Version-3 envelope, durability, last-good fallback
    // ------------------------------------------------------------------

    #[test]
    fn streamed_snapshot_is_a_checksummed_envelope_and_round_trips() {
        let index = streamed_index(7);
        let dir = scratch("envelope");
        let path = dir.join("index.json");
        save(&index, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(V3_PREFIX), "{text}");
        assert!(text.contains("\"version\":2"), "inner body is version 2");
        let restored = load(&path).unwrap();
        assert_eq!(restored.ingest_watermark(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_free_save_still_writes_the_bare_body() {
        // The envelope is streamed-only: ingest-free snapshot files stay
        // byte-identical to pre-envelope builds.
        assert_eq!(to_document(&tiny_index()), to_json(&tiny_index()));
    }

    #[test]
    fn flipped_byte_in_envelope_is_typed_corruption() {
        let dir = scratch("bitrot");
        let path = dir.join("index.json");
        save(&streamed_index(7), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match load(&path) {
            Err(PersistError::Corrupt {
                detail, recovered, ..
            }) => {
                assert!(!recovered);
                assert!(
                    detail.contains("checksum") || detail.contains("envelope"),
                    "{detail}"
                );
            }
            other => panic!(
                "expected Corrupt, got {:?}",
                other.map(|i| i.ingest_watermark())
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_rotates_a_last_good_copy() {
        let dir = scratch("rotate");
        let path = dir.join("index.json");
        save(&streamed_index(1), &path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        save(&streamed_index(2), &path).unwrap();
        let prev = last_good_path(&path);
        assert_eq!(
            std::fs::read_to_string(&prev).unwrap(),
            first,
            "the previous snapshot is kept as the last-good copy"
        );
        assert_eq!(load(&path).unwrap().ingest_watermark(), 2);
        assert_eq!(load(&prev).unwrap().ingest_watermark(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_recovers_to_last_good() {
        let dir = scratch("fallback");
        let path = dir.join("index.json");
        save(&streamed_index(1), &path).unwrap();
        save(&streamed_index(2), &path).unwrap();
        // Damage the current snapshot three ways; each must fall back.
        let good = std::fs::read(&path).unwrap();
        let mutations: Vec<Vec<u8>> = vec![
            {
                // Flipped byte.
                let mut b = good.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x40;
                b
            },
            // Truncation.
            good[..good.len() / 3].to_vec(),
            // Garbage.
            b"not a snapshot at all".to_vec(),
        ];
        for (i, bytes) in mutations.into_iter().enumerate() {
            std::fs::write(&path, &bytes).unwrap();
            let report = load_with_fallback(&path).unwrap_or_else(|e| {
                panic!("mutation {i} did not recover: {e}");
            });
            assert_eq!(
                report.index.ingest_watermark(),
                1,
                "mutation {i} recovered the last-good snapshot"
            );
            let info = report.fallback.expect("fallback must be reported");
            assert_eq!(info.fallback_path, last_good_path(&path));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_primary_with_last_good_recovers() {
        // The crash window between save's two renames: the old snapshot
        // is already rotated to .prev, the new one not yet installed.
        let dir = scratch("mid-save");
        let path = dir.join("index.json");
        save(&streamed_index(1), &path).unwrap();
        save(&streamed_index(2), &path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let report = load_with_fallback(&path).unwrap();
        assert_eq!(report.index.ingest_watermark(), 1);
        assert!(report.fallback.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_fallback_without_a_last_good_copy() {
        let dir = scratch("no-prev");
        let path = dir.join("index.json");
        save(&streamed_index(1), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // First save never rotates (nothing to rotate): corruption with no
        // .prev surfaces as the typed error, never a silent wrong answer.
        assert!(matches!(
            load_with_fallback(&path),
            Err(PersistError::Corrupt {
                recovered: false,
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_never_falls_back() {
        // A snapshot from a newer build is not damage; falling back to an
        // older copy would silently serve stale data.
        let dir = scratch("version-no-fallback");
        let path = dir.join("index.json");
        save(&streamed_index(1), &path).unwrap();
        save(&streamed_index(2), &path).unwrap();
        let mangled = to_json(&tiny_index()).replace("\"version\":1", "\"version\":7");
        std::fs::write(&path, mangled).unwrap();
        assert!(matches!(
            load_with_fallback(&path),
            Err(PersistError::Version(7))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_syncs_the_temp_file_before_the_rename() {
        // Regression test for the durability bug: without the temp-file
        // fsync, no sync op would ever fire during save and a scripted
        // sync fault could not make it fail.
        let dir = scratch("sync-regression");
        let path = dir.join("index.json");
        save(&streamed_index(1), &path).unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        let vfs = faulty("sync:1=eio");
        let err = save_with_vfs(&streamed_index(2), &path, &vfs).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
        assert_eq!(vfs.fired(), ["sync:1=eio"], "save fsyncs the temp file");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            before,
            "failed save leaves the previous snapshot untouched"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_fsyncs_the_parent_directory_after_the_rename() {
        let dir = scratch("dirsync-regression");
        let path = dir.join("index.json");
        let vfs = faulty("syncdir:1=eio");
        let err = save_with_vfs(&streamed_index(1), &path, &vfs).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
        assert_eq!(vfs.fired(), ["syncdir:1=eio"], "save fsyncs the directory");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_install_rename_restores_the_last_good_copy() {
        let dir = scratch("rename-restore");
        let path = dir.join("index.json");
        save(&streamed_index(1), &path).unwrap();
        // The 1st rename (rotation) succeeds, the 2nd (install) fails:
        // save must put the rotated copy back so `path` stays valid.
        let vfs = faulty("rename:2=eio");
        assert!(save_with_vfs(&streamed_index(2), &path, &vfs).is_err());
        assert_eq!(
            load(&path).unwrap().ingest_watermark(),
            1,
            "previous snapshot restored after the failed install"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
