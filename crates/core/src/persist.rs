//! Index persistence.
//!
//! A TASTI index is built once per dataset and amortized across queries and
//! sessions (Table 1's "no index" column is exactly the amortized view), so
//! it must survive process restarts. The on-disk format is a versioned JSON
//! document carrying everything [`TastiIndex`] needs to answer queries:
//! embeddings, representative ids and cached labeler outputs, and the min-k
//! table. Cracked representatives round-trip too.

use crate::index::TastiIndex;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;
use tasti_cluster::{AssignStrategy, Metric, MinKTable};
use tasti_labeler::{LabelerOutput, RecordId};
use tasti_nn::{Matrix, Mlp};

/// Current (maximum) on-disk format version. Version 2 adds the ingest
/// watermark for streamed indexes; [`to_json`] still writes version 1 —
/// byte-identical to pre-ingest builds — whenever the index has never
/// ingested, and [`from_json`] accepts both.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest on-disk format version this build can load.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// `skip_serializing_if` helper: elide the watermark when the index has
/// never ingested, keeping ingest-free snapshots on format version 1.
fn watermark_is_zero(v: &u64) -> bool {
    *v == 0
}

/// Serializable snapshot of a [`TastiIndex`].
#[derive(Serialize, Deserialize)]
struct IndexSnapshot {
    version: u32,
    embeddings: Matrix,
    metric: Metric,
    k: usize,
    reps: Vec<RecordId>,
    rep_outputs: Vec<LabelerOutput>,
    mink: MinKTable,
    /// Trained embedding model (None for TASTI-PT indexes).
    model: Option<Mlp>,
    /// Rep-assignment strategy for maintenance rebuilds. Defaulted so
    /// snapshots written before the field existed still load (as `Auto`,
    /// which is what those builds effectively ran).
    #[serde(default)]
    assign_strategy: AssignStrategy,
    /// Highest ingest-log sequence number folded into the snapshot
    /// (format version 2). A snapshot is the *base* of base + segment
    /// deltas: on restart the serving layer replays only log frames above
    /// this mark. Elided (and the snapshot stays version 1) when zero.
    #[serde(default, skip_serializing_if = "watermark_is_zero")]
    ingest_watermark: u64,
}

/// Errors raised when loading an index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The document is not a valid index snapshot.
    Format(serde_json::Error),
    /// The snapshot's format version is not supported by this build. Raised
    /// from a cheap header probe *before* the full typed parse, so a
    /// snapshot written by a newer build whose body no longer matches this
    /// build's schema is still reported as a version mismatch — the
    /// actionable error — rather than a generic format failure.
    Version(u32),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index I/O error: {e}"),
            PersistError::Format(e) => write!(f, "malformed index snapshot: {e}"),
            PersistError::Version(v) => {
                write!(
                    f,
                    "unsupported index format version {v} (supported: \
                     {MIN_FORMAT_VERSION}..={FORMAT_VERSION}); \
                     rebuild the index or load it with a matching build"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serializes the index to a JSON string.
///
/// An index that has never ingested streamed records (watermark 0) is
/// written as format version 1, byte-identical to pre-ingest builds — so
/// existing snapshot diffing, caching, and older readers keep working
/// until streaming is actually used.
pub fn to_json(index: &TastiIndex) -> String {
    let version = if index.ingest_watermark() == 0 {
        MIN_FORMAT_VERSION
    } else {
        FORMAT_VERSION
    };
    let snapshot = IndexSnapshot {
        version,
        embeddings: index.embeddings().clone(),
        metric: index.metric(),
        k: index.k(),
        reps: index.reps().to_vec(),
        rep_outputs: (0..index.reps().len())
            .map(|i| index.rep_output(i).clone())
            .collect(),
        mink: index.mink().clone(),
        model: index.model().cloned(),
        assign_strategy: index.assign_strategy(),
        ingest_watermark: index.ingest_watermark(),
    };
    serde_json::to_string(&snapshot).expect("index serialization cannot fail")
}

/// Header probe: only the `version` field, every other field ignored. A
/// snapshot from any format revision deserializes into this as long as it
/// is a well-formed JSON object, which is what lets [`from_json`] report a
/// version mismatch instead of whatever body field happens to differ.
#[derive(Deserialize)]
struct VersionProbe {
    version: Option<u32>,
}

/// Deserializes an index from a JSON string.
///
/// The format version is checked **before** the body is parsed: a
/// well-formed snapshot carrying a different `version` is rejected with
/// [`PersistError::Version`] even if its body layout is incompatible with
/// this build's schema (a truncated or otherwise corrupt document is still
/// [`PersistError::Format`]).
///
/// # Errors
/// Returns [`PersistError`] on malformed input or version mismatch.
pub fn from_json(json: &str) -> Result<TastiIndex, PersistError> {
    let supported = MIN_FORMAT_VERSION..=FORMAT_VERSION;
    let probe: VersionProbe = serde_json::from_str(json)?;
    match probe.version {
        Some(v) if !supported.contains(&v) => return Err(PersistError::Version(v)),
        Some(_) => {}
        None => {
            // A JSON document with no version field is not a snapshot of
            // any revision — fall through to the typed parse for the
            // field-level error message.
        }
    }
    let snapshot: IndexSnapshot = serde_json::from_str(json)?;
    if !supported.contains(&snapshot.version) {
        return Err(PersistError::Version(snapshot.version));
    }
    let mut index = TastiIndex::new(
        snapshot.embeddings,
        snapshot.metric,
        snapshot.k,
        snapshot.reps,
        snapshot.rep_outputs,
        snapshot.mink,
    )
    .with_assign_strategy(snapshot.assign_strategy);
    if let Some(model) = snapshot.model {
        index = index.with_model(model);
    }
    index.set_ingest_watermark(snapshot.ingest_watermark);
    Ok(index)
}

/// Writes the index to `path` as JSON, atomically.
///
/// The snapshot is first written to a sibling temporary file in the same
/// directory and then renamed over `path`, so a crash mid-write can never
/// leave a truncated snapshot at `path`: readers see either the old index
/// or the complete new one. (The rename is atomic only within a
/// filesystem, which the sibling placement guarantees.)
///
/// # Errors
/// Propagates I/O failures. On failure the temporary file is removed and
/// any previous snapshot at `path` is left untouched.
pub fn save(index: &TastiIndex, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("index path has no file name: {}", path.display()),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let write_then_rename = (|| {
        fs::write(&tmp, to_json(index))?;
        fs::rename(&tmp, path)
    })();
    if let Err(e) = write_then_rename {
        fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    Ok(())
}

/// Loads an index from `path`.
///
/// # Errors
/// Returns [`PersistError`] on I/O failure, malformed input, or version
/// mismatch.
pub fn load(path: impl AsRef<Path>) -> Result<TastiIndex, PersistError> {
    from_json(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::CountClass;
    use tasti_labeler::{Detection, ObjectClass};

    fn frame(n_cars: usize) -> LabelerOutput {
        LabelerOutput::Detections(
            (0..n_cars)
                .map(|i| Detection {
                    class: ObjectClass::Car,
                    x: 0.1 * (i + 1) as f32,
                    y: 0.5,
                    w: 0.1,
                    h: 0.1,
                })
                .collect(),
        )
    }

    fn tiny_index() -> TastiIndex {
        let embeddings = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32 * 0.5);
        let reps = vec![0usize, 5];
        let rep_outputs = vec![frame(0), frame(3)];
        let rep_emb: Vec<f32> = [embeddings.row(0), embeddings.row(5)].concat();
        let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 2, 2, Metric::L2);
        TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink)
    }

    #[test]
    fn assign_strategy_round_trips_and_defaults_for_legacy_snapshots() {
        use tasti_cluster::IvfParams;
        let index = tiny_index().with_assign_strategy(AssignStrategy::Ivf(IvfParams {
            nprobe: 3,
            ..IvfParams::default()
        }));
        let json = to_json(&index);
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.assign_strategy(), index.assign_strategy());

        // A snapshot written before the field existed loads as Auto.
        // `assign_strategy` is the last snapshot field, so strip it with
        // its leading comma.
        let encoded = serde_json::to_string(&index.assign_strategy()).unwrap();
        let legacy = json.replace(&format!(",\"assign_strategy\":{encoded}"), "");
        assert!(!legacy.contains("assign_strategy"), "field not stripped");
        let restored = from_json(&legacy).unwrap();
        assert_eq!(restored.assign_strategy(), AssignStrategy::Auto);
    }

    #[test]
    fn round_trip_preserves_query_behavior() {
        let index = tiny_index();
        let restored = from_json(&to_json(&index)).unwrap();
        assert_eq!(restored.reps(), index.reps());
        assert_eq!(restored.k(), index.k());
        assert_eq!(restored.embeddings(), index.embeddings());
        let score = CountClass(ObjectClass::Car);
        assert_eq!(restored.propagate(&score), index.propagate(&score));
        assert_eq!(restored.limit_ranking(&score), index.limit_ranking(&score));
    }

    #[test]
    fn cracked_reps_survive_round_trip() {
        let mut index = tiny_index();
        index.crack(3, frame(2));
        let restored = from_json(&to_json(&index)).unwrap();
        assert!(restored.is_rep(3));
        assert_eq!(restored.rep_output(2), &frame(2));
        let score = CountClass(ObjectClass::Car);
        assert_eq!(restored.propagate(&score)[3], 2.0);
    }

    #[test]
    fn file_round_trip() {
        let index = tiny_index();
        let dir = std::env::temp_dir().join("tasti-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        save(&index, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.reps(), index.reps());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_is_a_format_error() {
        // A snapshot cut off mid-document (what a non-atomic writer could
        // leave behind after a crash) must surface as `Format`, not a panic
        // or a silently-wrong index.
        let json = to_json(&tiny_index());
        for cut in [1, json.len() / 4, json.len() / 2, json.len() - 1] {
            assert!(
                matches!(from_json(&json[..cut]), Err(PersistError::Format(_))),
                "truncation at {cut} bytes not rejected"
            );
        }
        // And through the file path too.
        let dir = std::env::temp_dir().join("tasti-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.json");
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let index = tiny_index();
        let dir = std::env::temp_dir().join("tasti-persist-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        // Seed the destination with garbage; a successful save must fully
        // replace it.
        std::fs::write(&path, "garbage from a previous crash").unwrap();
        save(&index, &path).unwrap();
        // Byte-compare rather than deserialize: the snapshot at `path` must
        // be exactly the complete document, never a partial write.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), to_json(&index));
        // No temporary sibling survives a successful save.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_to_unwritable_path_fails_without_touching_destination() {
        let index = tiny_index();
        assert!(matches!(
            save(&index, "/nonexistent-dir/index.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            from_json("not json"),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(from_json("{}"), Err(PersistError::Format(_))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut json = to_json(&tiny_index());
        json = json.replace("\"version\":1", "\"version\":999");
        assert!(matches!(from_json(&json), Err(PersistError::Version(999))));
    }

    #[test]
    fn wrong_version_wins_over_incompatible_body() {
        // A snapshot from a hypothetical future format revision: the header
        // says version 3 and the body no longer matches this build's schema
        // (fields renamed/removed). The version probe must fire *first* so
        // the user sees the actionable "version mismatch" error, not a
        // generic missing-field format error.
        let json = r#"{"version":3,"embeddings_v3":"opaque-blob","reps":[0]}"#;
        match from_json(json) {
            Err(PersistError::Version(3)) => {}
            other => panic!("expected Version(3), got {other:?}"),
        }
        // The display message names the offending and supported versions.
        let msg = from_json(json).unwrap_err().to_string();
        assert!(
            msg.contains('3') && msg.contains('1') && msg.contains('2'),
            "message: {msg}"
        );
    }

    #[test]
    fn ingest_free_snapshot_stays_version_1() {
        // Byte-compat contract: until an index actually ingests, its
        // snapshot is indistinguishable from a pre-ingest build's.
        let json = to_json(&tiny_index());
        assert!(json.contains("\"version\":1"), "{json}");
        assert!(!json.contains("ingest_watermark"), "{json}");
    }

    #[test]
    fn ingest_watermark_bumps_to_version_2_and_round_trips() {
        let mut index = tiny_index();
        index.set_ingest_watermark(42);
        let json = to_json(&index);
        assert!(json.contains("\"version\":2"), "{json}");
        assert!(json.contains("\"ingest_watermark\":42"), "{json}");
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.ingest_watermark(), 42);
        // Query behavior is untouched by the version bump.
        let score = CountClass(ObjectClass::Car);
        assert_eq!(restored.propagate(&score), index.propagate(&score));
    }

    #[test]
    fn version_2_snapshot_without_watermark_loads() {
        // A hand-rolled v2 header over a v1 body (e.g. a tool that bumped
        // the version without writing the optional field) still loads,
        // defaulting the watermark to zero.
        let json = to_json(&tiny_index()).replace("\"version\":1", "\"version\":2");
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.ingest_watermark(), 0);
    }

    #[test]
    fn hand_mangled_header_is_a_version_error_through_the_file_path() {
        let index = tiny_index();
        let dir = std::env::temp_dir().join("tasti-persist-version-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mangled.json");
        let mangled = to_json(&index).replace("\"version\":1", "\"version\":7");
        std::fs::write(&path, mangled).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Version(7))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_field_absent_is_a_format_error() {
        // No version field at all: not a snapshot of any revision.
        assert!(matches!(
            from_json(r#"{"reps":[0,5]}"#),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load("/nonexistent/path/index.json"),
            Err(PersistError::Io(_))
        ));
    }
}
