//! Degenerate-input tests for score propagation and limit ranking.
//!
//! Representative scores come from the target labeler via an arbitrary
//! scoring function, so nothing upstream guarantees they are finite. The
//! contract: propagation never panics, and `limit_ranking` produces a
//! total, deterministic permutation with NaN-scored records ranked last —
//! a non-total comparator here used to make the order (and therefore the
//! limit query's cost) implementation-defined.
//!
//! Build with `--features quick-proptest` for a reduced case count.

use proptest::prelude::*;
use tasti_cluster::{Metric, MinKTable};
use tasti_core::propagate::{limit_ranking, limit_scores, propagate_numeric};

#[cfg(feature = "quick-proptest")]
const CASES: u32 = 16;
#[cfg(not(feature = "quick-proptest"))]
const CASES: u32 = 64;

fn rep_score() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -100.0..100.0f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

/// A 1-D dataset with `n_records` points and `n_reps` representatives
/// drawn from the same range, plus one (possibly non-finite) score per rep.
fn instance() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<f64>)> {
    (2usize..24, 1usize..6).prop_flat_map(|(n_records, n_reps)| {
        (
            prop::collection::vec(-50.0..50.0f32, n_records),
            prop::collection::vec(-50.0..50.0f32, n_reps),
            prop::collection::vec(rep_score(), n_reps),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn limit_ranking_is_a_permutation_with_nans_last(
        (records, reps, scores) in instance()
    ) {
        let k = 2.min(reps.len());
        let t = MinKTable::build(&records, &reps, 1, k, Metric::L2);
        let order = limit_ranking(&t, &scores);

        // A permutation of all records.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..records.len()).collect::<Vec<_>>());

        // NaN-propagated records all rank strictly after non-NaN records.
        let propagated = limit_scores(&t, &scores);
        let nan_positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, &r)| propagated[r].0.is_nan())
            .map(|(pos, _)| pos)
            .collect();
        let n_nan = nan_positions.len();
        let n = order.len();
        prop_assert!(
            nan_positions.iter().all(|&pos| pos >= n - n_nan),
            "NaN-scored records must occupy the ranking's tail: {nan_positions:?} of {n}"
        );

        // Deterministic: same inputs, same order.
        prop_assert_eq!(limit_ranking(&t, &scores), order);
    }

    #[test]
    fn propagation_never_panics_on_non_finite_rep_scores(
        (records, reps, scores) in instance()
    ) {
        let k = 2.min(reps.len());
        let t = MinKTable::build(&records, &reps, 1, k, Metric::L2);
        let propagated = propagate_numeric(&t, &scores, k);
        prop_assert_eq!(propagated.len(), records.len());
        // Finite rep scores propagate to finite record scores.
        if scores.iter().all(|s| s.is_finite()) {
            prop_assert!(propagated.iter().all(|s| s.is_finite()));
        }
    }
}

#[test]
fn nan_scores_do_not_shadow_real_candidates() {
    // Regression for the limit-query starvation mode: two reps, the nearer
    // one carrying a NaN score. Under the old non-total comparator the NaN
    // could float to the head of the ranking, spending the scan budget on
    // hopeless records. With a total NaN-last order the real candidates
    // (near the score-10 rep at position 5) lead.
    let records: Vec<f32> = (0..6).map(|i| i as f32).collect();
    let reps = vec![0.0f32, 5.0];
    let t = MinKTable::build(&records, &reps, 1, 2, Metric::L2);
    let order = limit_ranking(&t, &[f64::NAN, 10.0]);
    assert_eq!(&order[..3], &[5, 4, 3], "clean records first: {order:?}");
}
