//! Snapshot corruption recovery: whatever damage the primary snapshot
//! takes — a flipped byte, a torn tail, wholesale garbage, or the file
//! vanishing between `save`'s two renames — `load_with_fallback` must
//! recover the `.prev` last-good copy, report the damage in a typed
//! `FallbackInfo`, and never panic or return a silently-wrong index.
//!
//! The fallback is lossless for streamed indexes because the last-good
//! copy carries an older (or equal) ingest watermark: the segment log
//! replays everything above it (`crates/serve/tests/storage_chaos.rs`
//! asserts that end to end over the wire; here we pin the watermark
//! ordering that makes it possible).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use tasti_cluster::{Metric, MinKTable};
use tasti_core::persist::{self, PersistError};
use tasti_core::scoring::CountClass;
use tasti_core::TastiIndex;
use tasti_labeler::{Detection, LabelerOutput, ObjectClass};
use tasti_nn::Matrix;

#[cfg(feature = "quick-proptest")]
const CASES: u32 = 24;
#[cfg(not(feature = "quick-proptest"))]
const CASES: u32 = 96;

/// Fresh scratch directory per proptest case.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tasti-persist-rec-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn frame(n_cars: usize) -> LabelerOutput {
    LabelerOutput::Detections(
        (0..n_cars)
            .map(|i| Detection {
                class: ObjectClass::Car,
                x: 0.1 * (i + 1) as f32,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            })
            .collect(),
    )
}

/// A 6-record index whose snapshot format depends on `watermark`
/// (0 → v1 bare body, >0 → the checksummed v3 envelope).
fn tiny_index(watermark: u64) -> TastiIndex {
    let embeddings = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32 * 0.5);
    let reps = vec![0usize, 5];
    let rep_outputs = vec![frame(0), frame(3)];
    let rep_emb: Vec<f32> = [embeddings.row(0), embeddings.row(5)].concat();
    let mink = MinKTable::build(embeddings.as_slice(), &rep_emb, 2, 2, Metric::L2);
    let mut index = TastiIndex::new(embeddings, Metric::L2, 2, reps, rep_outputs, mink);
    index.set_ingest_watermark(watermark);
    index
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Save watermark `w1`, then `w2 >= w1` (rotating the first snapshot
    /// to `.prev`), corrupt the primary arbitrarily, and load. Recovery
    /// must yield exactly the `w1` state with a fallback report — never a
    /// panic, never a quietly-wrong index.
    #[test]
    fn corrupted_primary_always_recovers_to_last_good(
        w1 in 1u64..500,
        growth in 0u64..500,
        mode in 0usize..4,
        pos_sel in 0u64..u64::MAX,
        mask_sel in 1u64..256,
    ) {
        let dir = scratch("corrupt");
        let path = dir.join("index.json");
        let w2 = w1 + growth;

        persist::save(&tiny_index(w1), &path).unwrap();
        persist::save(&tiny_index(w2), &path).unwrap();
        prop_assert!(dir.join("index.json.prev").exists(), "save must rotate last-good");

        let bytes = fs::read(&path).unwrap();
        let pos = (pos_sel % bytes.len() as u64) as usize;
        let mask = mask_sel as u8;
        match mode {
            // A flipped byte anywhere (bit rot, torn sector).
            0 => {
                let mut b = bytes.clone();
                b[pos] ^= mask;
                fs::write(&path, b).unwrap();
            }
            // A torn tail (crash mid-write on a non-atomic copy).
            1 => fs::write(&path, &bytes[..pos]).unwrap(),
            // Wholesale garbage.
            2 => fs::write(&path, b"not a snapshot at all").unwrap(),
            // The primary vanished between save's two renames.
            _ => fs::remove_file(&path).unwrap(),
        }

        let report = persist::load_with_fallback(&path)
            .map_err(|e| TestCaseError::fail(format!("recovery failed: {e}")))?;
        let fb = report.fallback.as_ref();
        prop_assert!(fb.is_some(), "damage must be reported, not papered over");
        prop_assert_eq!(
            report.index.ingest_watermark(), w1,
            "recovered index must be exactly the last-good state"
        );
        // The recovered watermark never exceeds the lost one, so an
        // ingest-log replay from it re-applies the gap (losslessness).
        prop_assert!(report.index.ingest_watermark() <= w2);
        // And the recovered index answers queries like the w1 original.
        let score = CountClass(ObjectClass::Car);
        prop_assert_eq!(report.index.propagate(&score), tiny_index(w1).propagate(&score));
    }

    /// With both the primary and the last-good damaged, recovery reports
    /// the typed `Corrupt { recovered: false }` error — still no panic.
    #[test]
    fn double_corruption_is_a_typed_error(
        w in 1u64..500,
        mask_sel in 1u64..256,
    ) {
        let dir = scratch("double");
        let path = dir.join("index.json");
        persist::save(&tiny_index(w), &path).unwrap();
        persist::save(&tiny_index(w + 1), &path).unwrap();
        let mask = mask_sel as u8;
        for p in [path.clone(), dir.join("index.json.prev")] {
            let mut b = fs::read(&p).unwrap();
            let mid = b.len() / 2;
            b[mid] ^= mask;
            fs::write(&p, b).unwrap();
        }
        match persist::load_with_fallback(&path) {
            Err(PersistError::Corrupt { recovered, .. }) => {
                prop_assert!(!recovered, "nothing good was left to recover");
            }
            Ok(_) => prop_assert!(false, "corrupt snapshot loaded"),
            Err(other) => prop_assert!(false, "wrong error type: {other}"),
        }
    }
}

/// v1 (pre-ingest) snapshots carry no checksum envelope; a corrupt one
/// with no last-good sibling is a plain typed error, and an intact one
/// loads byte-identically through the fallback API (byte-compat pin).
#[test]
fn v1_snapshot_without_last_good_stays_typed() {
    let dir = scratch("v1");
    let path = dir.join("index.json");
    persist::save(&tiny_index(0), &path).unwrap();
    let report = persist::load_with_fallback(&path).unwrap();
    assert!(report.fallback.is_none());
    assert_eq!(report.index.ingest_watermark(), 0);

    fs::write(&path, "garbage").unwrap();
    assert!(persist::load_with_fallback(&path).is_err());
}
