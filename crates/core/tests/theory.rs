//! Numerical validation of the paper's theoretical analysis (§5, Appendix A).
//!
//! The theorems bound the *query loss gap* of propagated (k = 1) proxy
//! scores by the triplet loss and the clustering density:
//!
//! * **Theorem 1 (zero loss)** — if the embedding achieves zero population
//!   triplet loss `L(φ; M, m) = 0` and every record is within embedding
//!   distance `m` of its representative, then
//!   `E[ℓ_Q(x, f̂(x))] ≤ E[ℓ_Q(x, f(x))] + M·K_Q`.
//! * **Theorem 2 (non-zero loss)** — with triplet loss `α` the gap grows by
//!   `C·sup|B̄_M|·α / m`.
//! * **Lemma 1** — zero triplet loss plus embedding gap < m implies true
//!   distance < M (the embedding recovers the metric's neighborhoods).
//!
//! The tests build finite metric spaces where every quantity in the
//! theorem statements is computable exactly, then check the inequalities.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tasti_cluster::{fpf, Metric, MinKTable};
use tasti_core::propagate::propagate_numeric;
use tasti_nn::loss::triplet_example;

/// A finite metric space: points in ℝ², metric = Euclidean.
struct Space {
    points: Vec<[f32; 2]>,
}

impl Space {
    /// Well-separated clusters: intra-cluster diameter ≤ `diameter`,
    /// inter-cluster gap ≥ `gap`. With `diameter < M ≤ gap` the population
    /// triplet loss of a scaled-identity embedding is exactly zero.
    fn clustered(
        n_clusters: usize,
        per_cluster: usize,
        diameter: f32,
        gap: f32,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut points = Vec::new();
        for c in 0..n_clusters {
            // Centers on a coarse grid with spacing ≥ gap + diameter.
            let spacing = gap + diameter;
            let cx = (c % 4) as f32 * spacing;
            let cy = (c / 4) as f32 * spacing;
            for _ in 0..per_cluster {
                let r = diameter / 2.0;
                points.push([cx + rng.gen_range(-r..r), cy + rng.gen_range(-r..r)]);
            }
        }
        Space { points }
    }

    fn d(&self, i: usize, j: usize) -> f32 {
        let a = self.points[i];
        let b = self.points[j];
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
    }

    /// Embedding φ(x) = scale·x (+ optional noise), flattened row-major.
    fn embed(&self, scale: f32, noise: f32, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        self.points
            .iter()
            .flat_map(|p| {
                [
                    p[0] * scale
                        + if noise > 0.0 {
                            rng.gen_range(-noise..noise)
                        } else {
                            0.0
                        },
                    p[1] * scale
                        + if noise > 0.0 {
                            rng.gen_range(-noise..noise)
                        } else {
                            0.0
                        },
                ]
            })
            .collect()
    }
}

/// Empirical population triplet loss `L(φ; M, m)`: mean over all valid
/// (a, p, n) triples with `d(a,p) < M ≤ d(a,n)`.
fn population_triplet_loss(space: &Space, emb: &[f32], big_m: f32, margin: f32) -> f32 {
    let n = space.points.len();
    let row = |i: usize| &emb[i * 2..i * 2 + 2];
    let mut total = 0.0f64;
    let mut count = 0u64;
    // Subsample anchors for speed; triples are exhaustive per anchor pair.
    for a in (0..n).step_by(3) {
        for p in 0..n {
            if p == a || space.d(a, p) >= big_m {
                continue;
            }
            for nn in (0..n).step_by(2) {
                if space.d(a, nn) < big_m {
                    continue;
                }
                total += triplet_example(row(a), row(p), row(nn), margin) as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        (total / count as f64) as f32
    }
}

/// A 1-Lipschitz function of the space (distance to an anchor point).
fn lipschitz_fn(space: &Space, anchor: [f32; 2]) -> Vec<f64> {
    space
        .points
        .iter()
        .map(|p| (((p[0] - anchor[0]).powi(2) + (p[1] - anchor[1]).powi(2)) as f64).sqrt())
        .collect()
}

/// Runs the k = 1 query procedure of the analysis: exact scores on FPF
/// representatives, nearest-representative propagation elsewhere.
/// Returns (per-record propagated scores, max embedding gap to the rep).
fn propagate_k1(emb: &[f32], n_reps: usize, scores: &[f64]) -> (Vec<f64>, f32) {
    let sel = fpf(emb, 2, n_reps, Metric::L2, 0);
    let rep_emb: Vec<f32> = sel
        .selected
        .iter()
        .flat_map(|&r| emb[r * 2..r * 2 + 2].to_vec())
        .collect();
    let mink = MinKTable::build(emb, &rep_emb, 2, 1, Metric::L2);
    let rep_scores: Vec<f64> = sel.selected.iter().map(|&r| scores[r]).collect();
    (
        propagate_numeric(&mink, &rep_scores, 1),
        mink.max_nearest_distance(),
    )
}

#[test]
fn lemma1_zero_loss_embedding_recovers_neighborhoods() {
    // diameter 0.4 < M = 1.0 ≤ gap 2.0; φ = 3·x ⇒ embedding gap m wherever
    // |φ(x)−φ(x')| < m := 3·(M−diameter) implies d < M.
    let space = Space::clustered(8, 20, 0.4, 2.0, 1);
    let scale = 3.0;
    let emb = space.embed(scale, 0.0, 0);
    let margin = 1.0;
    let loss = population_triplet_loss(&space, &emb, 1.0, margin);
    assert_eq!(
        loss, 0.0,
        "separated clusters under scaled identity give zero triplet loss"
    );

    // Lemma 1: |φ(xi) − φ(xr)| < m ⇒ d(xi, xr) < M.
    let n = space.points.len();
    for i in (0..n).step_by(5) {
        for j in (0..n).step_by(7) {
            let e = Metric::L2.distance(&emb[i * 2..i * 2 + 2], &emb[j * 2..j * 2 + 2]);
            if e < margin {
                assert!(
                    space.d(i, j) < 1.0,
                    "embedding-close pair ({i},{j}) must be metric-close"
                );
            }
        }
    }
}

#[test]
fn theorem1_zero_loss_bound_holds() {
    // Tight clusters (diameter 0.2 → max scaled intra-distance ≈ 0.85 < m)
    // so one representative per cluster satisfies the density condition.
    let space = Space::clustered(8, 25, 0.2, 2.0, 2);
    let emb = space.embed(3.0, 0.0, 0);
    let big_m = 1.0f32;
    let margin = 1.0f32;
    assert_eq!(population_triplet_loss(&space, &emb, big_m, margin), 0.0);

    // ℓ_Q(x, y) = (K_Q/2)·|h(x) − y| with h 1-Lipschitz and f = h:
    // E[ℓ_Q(x, f(x))] = 0, so the bound reads E[ℓ_Q(x, f̂(x))] ≤ M·K_Q.
    let k_q = 2.0f64;
    for anchor in [[0.0f32, 0.0], [3.0, 1.0], [-1.0, 4.0]] {
        let h = lipschitz_fn(&space, anchor);
        // One representative per cluster suffices for gap < m; 8 clusters.
        let (propagated, gap) = propagate_k1(&emb, 8, &h);
        assert!(
            gap < margin,
            "clustering must be dense enough: gap {gap} ≥ m {margin}"
        );
        let mean_loss: f64 = propagated
            .iter()
            .zip(&h)
            .map(|(fh, f)| (k_q / 2.0) * (fh - f).abs())
            .sum::<f64>()
            / h.len() as f64;
        let bound = big_m as f64 * k_q;
        assert!(
            mean_loss <= bound,
            "Theorem 1 violated for anchor {anchor:?}: {mean_loss} > {bound}"
        );
    }
}

#[test]
fn theorem1_bound_is_not_vacuous() {
    // Sanity: with far too few representatives (gap ≥ m, assumption broken)
    // the same quantity can exceed the bound — the theorem's density
    // condition is load-bearing.
    let space = Space::clustered(8, 25, 0.4, 2.0, 3);
    let emb = space.embed(3.0, 0.0, 0);
    let h = lipschitz_fn(&space, [0.0, 0.0]);
    let (propagated, gap) = propagate_k1(&emb, 2, &h); // 2 reps for 8 clusters
    assert!(gap > 1.0, "with 2 reps the density assumption must fail");
    let k_q = 2.0f64;
    let mean_loss: f64 = propagated
        .iter()
        .zip(&h)
        .map(|(fh, f)| (k_q / 2.0) * (fh - f).abs())
        .sum::<f64>()
        / h.len() as f64;
    assert!(
        mean_loss > 1.0f64 * k_q / 4.0,
        "under-clustered index should suffer visible loss ({mean_loss})"
    );
}

#[test]
fn theorem2_nonzero_loss_bound_holds() {
    // Perturb the embedding so the triplet loss α > 0, then check
    // E[ℓ_Q(x, f̂)] ≤ E[ℓ_Q(x, f)] + M·K_Q + C·sup|B̄_M|·α/m.
    let space = Space::clustered(8, 25, 0.4, 2.0, 4);
    let big_m = 1.0f32;
    let margin = 1.0f32;
    let k_q = 2.0f64;
    let n = space.points.len();

    for noise in [0.05f32, 0.2, 0.5] {
        let emb = space.embed(3.0, noise, 7);
        let alpha = population_triplet_loss(&space, &emb, big_m, margin) as f64;
        let h = lipschitz_fn(&space, [1.0, 1.0]);
        let (propagated, _gap) = propagate_k1(&emb, 8, &h);
        let mean_loss: f64 = propagated
            .iter()
            .zip(&h)
            .map(|(fh, f)| (k_q / 2.0) * (fh - f).abs())
            .sum::<f64>()
            / n as f64;
        // C = max ℓ_Q value; sup|B̄_M| ≤ n (finite-sample count).
        let c_max = propagated
            .iter()
            .zip(&h)
            .map(|(fh, f)| (k_q / 2.0) * (fh - f).abs())
            .fold(0.0f64, f64::max)
            .max(k_q / 2.0 * 10.0);
        let bound = big_m as f64 * k_q + c_max * n as f64 * alpha / margin as f64;
        assert!(
            mean_loss <= bound,
            "Theorem 2 violated at noise {noise}: {mean_loss} > {bound} (α = {alpha})"
        );
    }
}

#[test]
fn loss_gap_grows_with_triplet_loss() {
    // The qualitative content of Theorem 2: worse embeddings (higher
    // triplet loss) yield worse propagated scores, monotonically on average.
    let space = Space::clustered(8, 25, 0.4, 2.0, 5);
    let h = lipschitz_fn(&space, [2.0, 0.5]);
    let mut losses = Vec::new();
    let mut gaps = Vec::new();
    for noise in [0.0f32, 2.0, 8.0] {
        let emb = space.embed(3.0, noise, 11);
        let alpha = population_triplet_loss(&space, &emb, 1.0, 1.0) as f64;
        let (propagated, _) = propagate_k1(&emb, 8, &h);
        let mean_loss: f64 = propagated
            .iter()
            .zip(&h)
            .map(|(fh, f)| (fh - f).abs())
            .sum::<f64>()
            / h.len() as f64;
        losses.push(alpha);
        gaps.push(mean_loss);
    }
    assert!(
        losses[0] <= losses[1] && losses[1] <= losses[2],
        "α must grow with noise: {losses:?}"
    );
    assert!(
        gaps[2] > gaps[0] * 1.5,
        "query loss should degrade from clean to very noisy embeddings: {gaps:?}"
    );
}
