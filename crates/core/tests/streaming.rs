//! Streaming ingest: new records appended to a live index get proxy scores
//! immediately and can be cracked like any original record. This extends
//! the paper's cracking story (§3.3) to growing datasets — the trained
//! embedding model is part of the persisted index, so frames captured after
//! construction are embedded with the same φ.

use tasti_core::build::build_index;
use tasti_core::persist;
use tasti_core::scoring::{CountClass, ScoringFunction};
use tasti_core::TastiConfig;
use tasti_data::video::night_street;
use tasti_data::{OracleLabeler, PretrainedEmbedder};
use tasti_labeler::{MeteredLabeler, ObjectClass, VideoCloseness};
use tasti_nn::metrics::rho_squared;
use tasti_nn::{Matrix, TripletConfig};

/// Simulates a live camera: one long video, whose prefix builds the index
/// and whose suffix arrives later as the stream. Returns (full dataset,
/// index over the first `n_index` frames, stream features, stream offset).
fn setup(
    n_index: usize,
    n_stream: usize,
    seed: u64,
) -> (tasti_data::Dataset, tasti_core::TastiIndex, Matrix) {
    let p = night_street(n_index + n_stream, seed);
    let full = p.dataset;
    // Index is built over the prefix only.
    let prefix_rows: Vec<usize> = (0..n_index).collect();
    let prefix_features = full.features.select_rows(&prefix_rows);
    let prefix_truth: Vec<_> = (0..n_index).map(|i| full.ground_truth(i).clone()).collect();
    let prefix = tasti_data::Dataset::new(
        "night-street-prefix",
        prefix_features,
        prefix_truth,
        full.schema.clone(),
    );
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(prefix.truth_handle()));
    let config = TastiConfig {
        n_train: 150,
        n_reps: 250,
        embedding_dim: 16,
        triplet: TripletConfig {
            steps: 150,
            batch_size: 24,
            margin: 0.3,
            ..Default::default()
        },
        seed,
        ..TastiConfig::default()
    };
    let mut pt = PretrainedEmbedder::new(prefix.feature_dim(), config.embedding_dim, 9);
    let pretrained = pt.embed_all(&prefix.features);
    let (index, _) = build_index(
        &prefix.features,
        &pretrained,
        &labeler,
        &VideoCloseness::default(),
        &config,
    )
    .unwrap();
    let stream_rows: Vec<usize> = (n_index..n_index + n_stream).collect();
    let stream_features = full.features.select_rows(&stream_rows);
    (full, index, stream_features)
}

#[test]
fn appended_records_get_meaningful_proxy_scores() {
    let (full, mut index, stream_features) = setup(2_000, 800, 91);
    assert!(
        index.model().is_some(),
        "TASTI-T build must carry its model"
    );

    let range = index.append_records(&stream_features);
    assert_eq!(range, 2_000..2_800);
    assert_eq!(index.n_records(), 2_800);

    let score = CountClass(ObjectClass::Car);
    let proxy = index.propagate(&score);
    assert_eq!(proxy.len(), 2_800);
    // The appended frames' scores must correlate with their ground truth —
    // they come from the same camera, so the index generalizes.
    let new_proxy = &proxy[2_000..];
    let new_truth: Vec<f64> = (2_000..2_800)
        .map(|i| score.score(full.ground_truth(i)))
        .collect();
    let rho2 = rho_squared(new_proxy, &new_truth);
    assert!(
        rho2 > 0.3,
        "streamed records should score meaningfully: ρ² = {rho2}"
    );
}

#[test]
fn appended_records_can_be_cracked() {
    let (full, mut index, stream_features) = setup(1_500, 300, 92);
    let range = index.append_records(&stream_features);

    // Crack a streamed record with its (query-time) labeler output.
    let rec = range.start + 7;
    let out = full.ground_truth(rec).clone();
    assert!(index.crack(rec, out.clone()));
    let score = CountClass(ObjectClass::Car);
    let proxy = index.propagate(&score);
    assert_eq!(
        proxy[rec],
        score.score(&out),
        "cracked streamed record scores exactly"
    );
}

#[test]
fn append_survives_persistence_round_trip() {
    let (_, index, stream_features) = setup(1_200, 100, 93);
    let json = persist::to_json(&index);
    let mut restored = persist::from_json(&json).unwrap();
    assert!(restored.model().is_some(), "model must persist");
    let range = restored.append_records(&stream_features);
    assert_eq!(range.len(), 100);
    assert_eq!(restored.n_records(), index.n_records() + 100);
}

#[test]
fn append_embedded_serves_the_pt_path() {
    let (_, mut index, _) = setup(1_200, 10, 94);
    // Build a PT-style append: external embeddings with the right dim.
    let dim = index.embedding_dim();
    let external = Matrix::from_fn(50, dim, |r, c| ((r * dim + c) as f32 * 0.1).sin());
    let range = index.append_embedded(&external);
    assert_eq!(range.len(), 50);
}

#[test]
#[should_panic(expected = "append_records requires an embedding model")]
fn append_without_model_panics() {
    let p = night_street(500, 95);
    let dataset = p.dataset;
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
    let config = TastiConfig {
        n_train: 50,
        n_reps: 80,
        embedding_dim: 8,
        ..TastiConfig::default()
    }
    .pretrained_only();
    let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 9);
    let pretrained = pt.embed_all(&dataset.features);
    let (mut index, _) = build_index(
        &dataset.features,
        &pretrained,
        &labeler,
        &VideoCloseness::default(),
        &config,
    )
    .unwrap();
    let _ = index.append_records(&dataset.features);
}

#[test]
#[should_panic(expected = "feature dimension mismatch")]
fn append_rejects_wrong_feature_dim() {
    let (_, mut index, _) = setup(600, 10, 96);
    let wrong = Matrix::zeros(5, 3);
    let _ = index.append_records(&wrong);
}
