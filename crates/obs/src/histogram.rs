//! Log₂-bucketed histograms for latency-style values.

/// A histogram over `u64` values (microseconds, byte counts, …) with one
/// bucket per power of two.
///
/// Recording is O(1) and allocation-free; quantiles are resolved to the
/// upper bound of the containing bucket, i.e. within 2× of the true value —
/// the usual precision trade of log-bucketed latency histograms, and plenty
/// for "did the oracle get slower" style questions.
///
/// ```
/// use tasti_obs::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// assert!(h.quantile(0.5) >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; 65],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; 65],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 → bucket 0
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile (`q ∈ [0, 1]`),
    /// clamped to the observed min/max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if bucket == 0 {
                    0
                } else if bucket >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bucket) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// A serializable summary of the distribution.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_one_bucket() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 = 500; bucket upper bound is 511.
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(h.quantile(1.0) >= 1000 || h.quantile(1.0) == h.max());
        assert_eq!(h.quantile(0.0).max(1), 1);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn summary_reflects_distribution() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 100_000);
        assert!(s.p50 < 100, "median stays near the mode: {}", s.p50);
        assert!(s.p99 >= 10);
    }
}
