//! A minimal JSON layer so telemetry and the serving wire protocol work
//! without external dependencies.
//!
//! Two halves:
//!
//! * **Writer helpers** ([`push_escaped`], [`fmt_f64`]) — what the telemetry
//!   records have always used to serialize themselves.
//! * **[`JsonValue`]** — a small dynamically-typed JSON document with a
//!   recursive-descent parser, used by `tasti-serve` to parse wire requests
//!   and by its loopback client to parse responses. The parser is meant for
//!   *trusted-ish* line-delimited protocol messages: it is strict (no
//!   trailing garbage, no comments), rejects documents nested deeper than
//!   [`MAX_DEPTH`] (a network-facing parser must not be stack-overflowable),
//!   and keeps object keys in document order (no hashing, deterministic
//!   re-serialization).

use std::fmt;

/// Appends `s` to `out` with JSON string escaping.
pub fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number, or `null` when non-finite.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, so the output parses back as a float.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Maximum nesting depth [`JsonValue::parse`] accepts.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
///
/// Numbers are kept as `f64` (every JSON number the protocol uses — ids,
/// budgets, thresholds — fits exactly); object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, keys in document order.
    Object(Vec<(String, JsonValue)>),
}

/// Error from [`JsonValue::parse`]: a message and the byte offset it refers
/// to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return self.err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => self.err(format!("unexpected byte 0x{b:02x}")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return self.err("invalid low surrogate");
                                    }
                                    let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(cp)
                                } else {
                                    return self.err("unpaired surrogate");
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            // hex4 advanced past the digits; compensate for
                            // the shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a valid &str");
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| JsonError {
            message: "invalid \\u escape".into(),
            offset: self.pos,
        })?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError {
            message: "invalid \\u escape".into(),
            offset: self.pos,
        })?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Number(v)),
            _ => self.err(format!("invalid number '{text}'")),
        }
    }
}

impl JsonValue {
    /// Parses a complete JSON document (rejects trailing non-whitespace).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after document");
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes back to compact JSON (deterministic: keys keep document
    /// order, floats round-trip via the writer helpers).
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(v) => {
                // Integral values print without a trailing `.0` so counters
                // and ids look like integers on the wire.
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&fmt_f64(*v));
                }
            }
            JsonValue::String(s) => {
                out.push('"');
                push_escaped(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_escaped(out, k);
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_escaped(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escaped("a\"b"), "a\\\"b");
        assert_eq!(escaped("a\\b"), "a\\\\b");
        assert_eq!(escaped("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escaped("\u{1}"), "\\u0001");
        assert_eq!(escaped("plain"), "plain");
    }

    #[test]
    fn floats_round_trip_or_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.0), "0.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        let v = 0.1 + 0.2;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(
            JsonValue::parse("-1.25e2").unwrap(),
            JsonValue::Number(-125.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn parses_nested_structures_and_preserves_key_order() {
        let v = JsonValue::parse(r#"{"b":[1,2,{"x":null}],"a":{"k":"v"}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().get("k").unwrap().as_str().unwrap(), "v");
        match &v {
            JsonValue::Object(fields) => {
                assert_eq!(fields[0].0, "b");
                assert_eq!(fields[1].0, "a");
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\" tab\t back\\slash unicode é 🚗";
        let mut doc = String::from("\"");
        push_escaped(&mut doc, original);
        doc.push('"');
        assert_eq!(
            JsonValue::parse(&doc).unwrap(),
            JsonValue::String(original.into())
        );
    }

    #[test]
    fn unicode_escapes_including_surrogate_pairs() {
        assert_eq!(
            JsonValue::parse(r#""Aé""#).unwrap(),
            JsonValue::String("Aé".into())
        );
        // 🚗 is U+1F697 = surrogate pair d83d/de97.
        assert_eq!(
            JsonValue::parse(r#""🚗""#).unwrap(),
            JsonValue::String("🚗".into())
        );
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "nul",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting_without_overflow() {
        let deep = "[".repeat(MAX_DEPTH + 10) + &"]".repeat(MAX_DEPTH + 10);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
        // At the limit it still parses.
        let ok = "[".repeat(MAX_DEPTH - 1) + "1" + &"]".repeat(MAX_DEPTH - 1);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn write_round_trips_through_parse() {
        let doc = r#"{"op":"ebs_aggregate","id":7,"params":{"error":0.05,"flags":[true,false,null]},"name":"night\nstreet"}"#;
        let v = JsonValue::parse(doc).unwrap();
        let rewritten = v.to_json();
        assert_eq!(JsonValue::parse(&rewritten).unwrap(), v);
        // Integral numbers keep an integer wire shape.
        assert!(rewritten.contains("\"id\":7"));
        assert!(rewritten.contains("0.05"));
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let v = JsonValue::parse(r#"{"n":1.5,"s":"x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("k"), None);
        assert_eq!(JsonValue::parse("3").unwrap().as_u64(), Some(3));
    }
}
