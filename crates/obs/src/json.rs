//! A minimal JSON writer so telemetry serializes without external
//! dependencies. Only what the telemetry records need: escaped strings and
//! floats with `null` for non-finite values (serde_json's convention).

/// Appends `s` to `out` with JSON string escaping.
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number, or `null` when non-finite.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, so the output parses back as a float.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_escaped(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escaped("a\"b"), "a\\\"b");
        assert_eq!(escaped("a\\b"), "a\\\\b");
        assert_eq!(escaped("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escaped("\u{1}"), "\\u0001");
        assert_eq!(escaped("plain"), "plain");
    }

    #[test]
    fn floats_round_trip_or_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.0), "0.0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        let v = 0.1 + 0.2;
        assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
    }
}
