//! # tasti-obs
//!
//! Lightweight, dependency-free observability for the TASTI reproduction.
//!
//! The paper's single cost metric is *target-labeler invocations* (§3.4,
//! Table 1, Figures 4–6). Before this crate existed each query algorithm
//! counted them its own way (`oracle_calls`, `samples`, `invocations`) with
//! no cross-check against the metered labeler; this crate is the one
//! audited convention every layer now reports through:
//!
//! * [`Counter`] — a shareable atomic event counter.
//! * [`Histogram`] — a log₂-bucketed value histogram (latencies in µs).
//! * [`Stopwatch`] / [`StageRecorder`] — wall-clock span timers; the
//!   recorder produces the per-stage build telemetry of Algorithm 1.
//! * [`QueryTelemetry`] — the uniform record every query algorithm and
//!   baseline emits: algorithm name, exact labeler-invocation count (tested
//!   equal to the `MeteredLabeler` delta), wall-clock, whether the result
//!   is statistically *certified*, and how many degenerate proxy inputs
//!   were sanitized on entry.
//! * [`BuildTelemetry`] — per-stage wall-clock + invocation spans for index
//!   construction (mine → embed → FPF → min-k).
//! * [`IngestTelemetry`] / [`DriftGauge`] — streaming-ingest accounting:
//!   durable records/batches/replays plus a per-cluster radius and
//!   score-variance drift signal that decides when incremental rep
//!   assignment must escalate to a full re-selection.
//!
//! Every record serializes to JSON through a built-in writer (no serde
//! required); enabling the `serde` feature additionally derives
//! `serde::Serialize` so the bench harness can embed records in its own
//! result files. The [`json`] module also exposes [`JsonValue`], a small
//! dependency-free parsed-JSON document used by the `tasti-serve` wire
//! protocol (requests in, responses out) and its loopback client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod ingest;
pub mod json;
pub mod telemetry;
pub mod timer;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSummary};
pub use ingest::{DriftGauge, IngestTelemetry};
pub use json::{JsonError, JsonValue};
pub use telemetry::{AssignTelemetry, BuildTelemetry, QueryTelemetry, StageTelemetry};
pub use timer::{StageRecorder, Stopwatch};
