//! The unified telemetry records: one per query execution, one per index
//! build.
//!
//! # The invocation-accounting convention
//!
//! Exactly one number is the cost of an operation: **distinct target-labeler
//! invocations**, as metered by `MeteredLabeler` (cache hits are free,
//! repeated draws of the same record are free). Every query algorithm
//! reports that number in [`QueryTelemetry::invocations`], every build
//! stage in [`StageTelemetry::labeler_invocations`], and the test suites
//! assert the reported values equal the meter's before/after delta — no
//! algorithm keeps a private convention.

use crate::json::{fmt_f64, push_escaped};

/// One timed pipeline stage (build-side accounting).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct StageTelemetry {
    /// Stage name (`mining`, `annotate-train`, `triplet-train`, `embed`,
    /// `cluster`, `annotate-reps`, `distances`).
    pub name: String,
    /// Wall-clock seconds spent in the stage (of *our* pipeline; labeler
    /// execution is accounted separately through the cost model).
    pub seconds: f64,
    /// Target-labeler invocations incurred by the stage.
    pub labeler_invocations: u64,
}

impl StageTelemetry {
    /// Writes the stage as a JSON object into `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        push_escaped(out, &self.name);
        out.push_str("\",\"seconds\":");
        out.push_str(&fmt_f64(self.seconds));
        out.push_str(",\"labeler_invocations\":");
        out.push_str(&self.labeler_invocations.to_string());
        out.push('}');
    }
}

/// Accounting for the rep-assignment (`distances`) stage: which strategy
/// ran, how big the candidate pools were, and what the recall audit saw.
/// Mirrors the cluster crate's `AssignStats` without depending on it —
/// obs stays dependency-free and the bridge lives in the core crate.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct AssignTelemetry {
    /// Resolved strategy label (`exact`, `ivf`, `ivf-full-probe`,
    /// `ivf-exact-fallback`).
    pub strategy: String,
    /// Records assigned.
    pub n_records: u64,
    /// Representatives assigned against.
    pub n_reps: u64,
    /// Coarse cells in the router (0 on the exact path).
    pub n_cells: u64,
    /// Effective base probe count (0 on the exact path).
    pub nprobe: u64,
    /// Quantization codec used for candidate scoring (`none` on exact).
    pub quant: String,
    /// Mean per-record candidate-pool size (equals `n_reps` on exact).
    pub candidate_mean: f64,
    /// Smallest per-record candidate pool.
    pub candidate_min: u64,
    /// Largest per-record candidate pool.
    pub candidate_max: u64,
    /// Probe-widening events across all records.
    pub probe_widenings: u64,
    /// True when the recall audit failed and the build fell back to exact.
    pub exact_fallback: bool,
    /// Records in the recall-audit sample (0 on the exact path).
    pub audited_records: u64,
    /// Measured recall@k over the audit sample before any fallback.
    pub audited_recall: f64,
    /// Wall-clock seconds in the assignment stage.
    pub seconds: f64,
}

impl AssignTelemetry {
    /// Writes the record as a JSON object into `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"strategy\":\"");
        push_escaped(out, &self.strategy);
        out.push_str("\",\"n_records\":");
        out.push_str(&self.n_records.to_string());
        out.push_str(",\"n_reps\":");
        out.push_str(&self.n_reps.to_string());
        out.push_str(",\"n_cells\":");
        out.push_str(&self.n_cells.to_string());
        out.push_str(",\"nprobe\":");
        out.push_str(&self.nprobe.to_string());
        out.push_str(",\"quant\":\"");
        push_escaped(out, &self.quant);
        out.push_str("\",\"candidate_mean\":");
        out.push_str(&fmt_f64(self.candidate_mean));
        out.push_str(",\"candidate_min\":");
        out.push_str(&self.candidate_min.to_string());
        out.push_str(",\"candidate_max\":");
        out.push_str(&self.candidate_max.to_string());
        out.push_str(",\"probe_widenings\":");
        out.push_str(&self.probe_widenings.to_string());
        out.push_str(",\"exact_fallback\":");
        out.push_str(if self.exact_fallback { "true" } else { "false" });
        out.push_str(",\"audited_records\":");
        out.push_str(&self.audited_records.to_string());
        out.push_str(",\"audited_recall\":");
        out.push_str(&fmt_f64(self.audited_recall));
        out.push_str(",\"seconds\":");
        out.push_str(&fmt_f64(self.seconds));
        out.push('}');
    }
}

/// Per-stage wall-clock and invocation accounting for one index build.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct BuildTelemetry {
    /// The stages in execution order.
    pub stages: Vec<StageTelemetry>,
    /// Sum of stage wall-clock seconds.
    pub total_seconds: f64,
    /// Sum of stage labeler invocations.
    pub total_invocations: u64,
    /// Rep-assignment accounting, when the build recorded it. Elided from
    /// JSON when absent so pre-ANN output is byte-identical.
    #[cfg_attr(feature = "serde", serde(skip_serializing_if = "Option::is_none"))]
    pub assign: Option<AssignTelemetry>,
}

impl BuildTelemetry {
    /// Builds totals from a stage list.
    pub fn from_stages(stages: Vec<StageTelemetry>) -> Self {
        let total_seconds = stages.iter().map(|s| s.seconds).sum();
        let total_invocations = stages.iter().map(|s| s.labeler_invocations).sum();
        Self {
            stages,
            total_seconds,
            total_invocations,
            assign: None,
        }
    }

    /// Attaches rep-assignment accounting.
    pub fn with_assign(mut self, assign: AssignTelemetry) -> Self {
        self.assign = Some(assign);
        self
    }

    /// Invocations of a named stage (0 if absent).
    pub fn stage_invocations(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.labeler_invocations)
            .sum()
    }

    /// Serializes to a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.write_json(&mut out);
        }
        out.push_str("],\"total_seconds\":");
        out.push_str(&fmt_f64(self.total_seconds));
        out.push_str(",\"total_invocations\":");
        out.push_str(&self.total_invocations.to_string());
        if let Some(a) = &self.assign {
            out.push_str(",\"assign\":");
            a.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// The uniform record emitted by every query algorithm and baseline.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct QueryTelemetry {
    /// Algorithm name (`ebs_aggregate`, `supg_recall_target`, …).
    pub algorithm: String,
    /// Distinct target-labeler invocations consumed — the paper's cost
    /// metric, by definition equal to the `MeteredLabeler` delta across the
    /// call (asserted in the telemetry-audit test suites).
    pub invocations: u64,
    /// Wall-clock seconds inside the algorithm (excludes the caller's
    /// proxy-score materialization).
    pub wall_seconds: f64,
    /// Whether the returned answer carries its statistical guarantee. False
    /// means the algorithm fell back to a conservative default (e.g. SUPG
    /// certifying no threshold, a limit query exhausting its scan budget)
    /// and diagnostic estimates describe that fallback, not a certified
    /// result.
    pub certified: bool,
    /// Non-finite proxy scores sanitized on entry (see the query crate's
    /// documented NaN policy). Zero on clean inputs.
    pub sanitized_inputs: u64,
    /// Unrecoverable oracle faults observed during the query (after any
    /// retrying below the algorithm). Zero on the fault-free path.
    pub oracle_faults: u64,
    /// True when the algorithm abandoned its oracle-backed plan because of
    /// an oracle fault and returned a proxy-only (degraded) answer. A
    /// degraded answer is never certified.
    pub degraded: bool,
}

impl QueryTelemetry {
    /// A record with the given algorithm name and all counters zeroed;
    /// callers fill the rest at return time.
    pub fn new(algorithm: &str) -> Self {
        Self {
            algorithm: algorithm.to_string(),
            invocations: 0,
            wall_seconds: 0.0,
            certified: true,
            sanitized_inputs: 0,
            oracle_faults: 0,
            degraded: false,
        }
    }

    /// Serializes to a JSON object (no external dependencies). Non-finite
    /// floats become `null`, matching serde_json's behaviour. The fault
    /// fields are emitted only when set, so fault-free output is
    /// byte-identical to what pre-fault-model versions produced.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"algorithm\":\"");
        push_escaped(&mut out, &self.algorithm);
        out.push_str("\",\"invocations\":");
        out.push_str(&self.invocations.to_string());
        out.push_str(",\"wall_seconds\":");
        out.push_str(&fmt_f64(self.wall_seconds));
        out.push_str(",\"certified\":");
        out.push_str(if self.certified { "true" } else { "false" });
        out.push_str(",\"sanitized_inputs\":");
        out.push_str(&self.sanitized_inputs.to_string());
        if self.oracle_faults > 0 {
            out.push_str(",\"oracle_faults\":");
            out.push_str(&self.oracle_faults.to_string());
        }
        if self.degraded {
            out.push_str(",\"degraded\":true");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_totals_and_stage_lookup() {
        let b = BuildTelemetry::from_stages(vec![
            StageTelemetry {
                name: "mining".into(),
                seconds: 0.5,
                labeler_invocations: 0,
            },
            StageTelemetry {
                name: "annotate-reps".into(),
                seconds: 1.5,
                labeler_invocations: 120,
            },
        ]);
        assert_eq!(b.total_invocations, 120);
        assert!((b.total_seconds - 2.0).abs() < 1e-12);
        assert_eq!(b.stage_invocations("annotate-reps"), 120);
        assert_eq!(b.stage_invocations("absent"), 0);
    }

    #[test]
    fn query_telemetry_json_shape() {
        let t = QueryTelemetry {
            algorithm: "supg_recall_target".into(),
            invocations: 500,
            wall_seconds: 0.25,
            certified: false,
            sanitized_inputs: 3,
            oracle_faults: 0,
            degraded: false,
        };
        let j = t.to_json();
        assert!(j.contains("\"algorithm\":\"supg_recall_target\""));
        assert!(j.contains("\"invocations\":500"));
        assert!(j.contains("\"certified\":false"));
        assert!(j.contains("\"sanitized_inputs\":3"));
        assert!(j.starts_with('{') && j.ends_with('}'));
        // Fault fields are elided on the fault-free path so the wire shape
        // is unchanged from pre-fault-model output.
        assert!(!j.contains("oracle_faults"));
        assert!(!j.contains("degraded"));
    }

    #[test]
    fn fault_fields_are_emitted_only_when_set() {
        let mut t = QueryTelemetry::new("ebs_aggregate");
        t.oracle_faults = 2;
        t.degraded = true;
        let j = t.to_json();
        assert!(j.contains("\"oracle_faults\":2"));
        assert!(j.contains("\"degraded\":true"));
    }

    #[test]
    fn build_telemetry_json_contains_stages() {
        let b = BuildTelemetry::from_stages(vec![StageTelemetry {
            name: "embed".into(),
            seconds: 0.125,
            labeler_invocations: 0,
        }]);
        let j = b.to_json();
        assert!(j.contains("\"stages\":[{\"name\":\"embed\""));
        assert!(j.contains("\"total_invocations\":0"));
    }

    #[test]
    fn assign_telemetry_is_elided_when_absent() {
        let b = BuildTelemetry::from_stages(vec![]);
        assert!(!b.to_json().contains("assign"));

        let j = b
            .with_assign(AssignTelemetry {
                strategy: "ivf".into(),
                n_records: 1000,
                n_reps: 64,
                n_cells: 8,
                nprobe: 2,
                quant: "int8".into(),
                candidate_mean: 17.5,
                candidate_min: 12,
                candidate_max: 40,
                probe_widenings: 3,
                exact_fallback: false,
                audited_records: 128,
                audited_recall: 0.9975,
                seconds: 0.02,
            })
            .to_json();
        assert!(j.contains("\"assign\":{\"strategy\":\"ivf\""));
        assert!(j.contains("\"quant\":\"int8\""));
        assert!(j.contains("\"probe_widenings\":3"));
        assert!(j.contains("\"exact_fallback\":false"));
        assert!(j.contains("\"audited_recall\":0.9975"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut t = QueryTelemetry::new("x");
        t.wall_seconds = f64::NAN;
        assert!(t.to_json().contains("\"wall_seconds\":null"));
    }

    #[test]
    fn algorithm_names_are_escaped() {
        let t = QueryTelemetry::new("we\"ird\\name");
        let j = t.to_json();
        assert!(j.contains("we\\\"ird\\\\name"));
    }
}
