//! Wall-clock span timers.

use crate::telemetry::{BuildTelemetry, StageTelemetry};
use std::time::Instant;

/// A started wall-clock timer.
///
/// ```
/// use tasti_obs::Stopwatch;
/// let sw = Stopwatch::start();
/// let seconds = sw.elapsed_seconds();
/// assert!(seconds >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a timer now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Microseconds elapsed, saturating at `u64::MAX` (for [`crate::Histogram`]).
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// Records a sequence of named pipeline stages, each with a wall-clock span
/// and a labeler-invocation delta — the per-stage accounting behind the
/// paper's Figure 2 construction breakdown.
///
/// The caller supplies the current invocation total (from the metered
/// labeler) at `start` and `finish`; the recorder stores the delta so the
/// stage list sums exactly to the meter's total.
///
/// ```
/// use tasti_obs::StageRecorder;
/// let mut rec = StageRecorder::new();
/// rec.start("mining", 0);
/// rec.finish(0);
/// rec.start("annotate", 0);
/// rec.finish(60);
/// let build = rec.into_telemetry();
/// assert_eq!(build.total_invocations, 60);
/// assert_eq!(build.stages[1].labeler_invocations, 60);
/// ```
#[derive(Debug, Default)]
pub struct StageRecorder {
    stages: Vec<StageTelemetry>,
    open: Option<(String, Instant, u64)>,
}

impl StageRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a stage. Panics if the previous stage was never finished —
    /// overlapping stages would double-count both time and invocations.
    pub fn start(&mut self, name: impl Into<String>, invocations_now: u64) {
        assert!(
            self.open.is_none(),
            "StageRecorder::start before finishing the previous stage"
        );
        self.open = Some((name.into(), Instant::now(), invocations_now));
    }

    /// Closes the open stage, recording its wall-clock span and the labeler
    /// invocations incurred since `start`. Panics if no stage is open.
    pub fn finish(&mut self, invocations_now: u64) {
        let (name, started, inv0) = self
            .open
            .take()
            .expect("StageRecorder::finish without an open stage");
        self.stages.push(StageTelemetry {
            name,
            seconds: started.elapsed().as_secs_f64(),
            labeler_invocations: invocations_now.saturating_sub(inv0),
        });
    }

    /// Stages recorded so far.
    pub fn stages(&self) -> &[StageTelemetry] {
        &self.stages
    }

    /// Consumes the recorder into the stage list.
    pub fn into_stages(self) -> Vec<StageTelemetry> {
        assert!(self.open.is_none(), "unfinished stage at into_stages");
        self.stages
    }

    /// Consumes the recorder into a [`BuildTelemetry`] with totals.
    pub fn into_telemetry(self) -> BuildTelemetry {
        BuildTelemetry::from_stages(self.into_stages())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        std::hint::black_box(0u64);
        assert!(sw.elapsed_seconds() >= 0.0);
        assert!(sw.elapsed_micros() < 60_000_000, "sanity: under a minute");
    }

    #[test]
    fn recorder_tracks_deltas_per_stage() {
        let mut rec = StageRecorder::new();
        rec.start("a", 10);
        rec.finish(14);
        rec.start("b", 14);
        rec.finish(14);
        let stages = rec.into_stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "a");
        assert_eq!(stages[0].labeler_invocations, 4);
        assert_eq!(stages[1].labeler_invocations, 0);
        assert!(stages.iter().all(|s| s.seconds >= 0.0));
    }

    #[test]
    fn telemetry_totals_sum_over_stages() {
        let mut rec = StageRecorder::new();
        rec.start("x", 0);
        rec.finish(3);
        rec.start("y", 3);
        rec.finish(8);
        let t = rec.into_telemetry();
        assert_eq!(t.total_invocations, 8);
        assert!((t.total_seconds - t.stages.iter().map(|s| s.seconds).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before finishing")]
    fn overlapping_stages_panic() {
        let mut rec = StageRecorder::new();
        rec.start("a", 0);
        rec.start("b", 0);
    }

    #[test]
    #[should_panic(expected = "without an open stage")]
    fn finish_without_start_panics() {
        StageRecorder::new().finish(0);
    }
}
