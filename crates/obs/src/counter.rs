//! Atomic event counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shareable monotonic event counter.
///
/// Relaxed ordering is sufficient: counters are statistics, not
/// synchronization primitives; readers only need an eventually-consistent
/// total, and every test reads after the counted work has joined.
///
/// ```
/// use tasti_obs::Counter;
/// let c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// assert_eq!(c.delta_since(2), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Increments by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Difference against an earlier reading (saturating, so a caller
    /// racing a concurrent `reset` reports 0 instead of wrapping).
    pub fn delta_since(&self, earlier: u64) -> u64 {
        self.get().saturating_sub(earlier)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_deltas() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.delta_since(4), 6);
        assert_eq!(c.delta_since(11), 0, "saturating, never wraps");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn shared_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn clone_snapshots_value() {
        let c = Counter::new();
        c.add(7);
        let d = c.clone();
        c.incr();
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }
}
