//! Streaming-ingest observability: drift gauges and the ingest telemetry
//! record.
//!
//! TASTI's propagation quality rests on the cluster structure the FPF
//! pass froze at build time: every record's proxy score is interpolated
//! from its nearest representatives. Streamed records erode that
//! structure when the data distribution moves — new points land ever
//! farther from their assigned representatives, and the distance spread
//! widens. [`DriftGauge`] quantifies both effects against a baseline
//! captured from the index itself, and the serving layer escalates from
//! cheap incremental appends to a full assignment refresh when
//! [`DriftGauge::drift`] crosses the configured threshold.
//!
//! Like the rest of this crate, everything here is dependency-free and
//! mirrors index-side types by value (the bridge lives in `tasti-serve`).

use crate::json::fmt_f64;
use crate::telemetry::AssignTelemetry;

/// Floor for relative comparisons against degenerate baselines.
const EPS: f64 = 1e-12;

/// Per-cluster radius / score-variance drift gauge.
///
/// Anchored on a baseline taken from the live index: the mean
/// nearest-representative distance of each cluster (its *radius* proxy)
/// and the global variance of nearest distances. Every ingested record
/// reports its assigned cluster and nearest distance via
/// [`DriftGauge::observe`]; [`DriftGauge::drift`] is then the larger of
///
/// * **radius drift** — the observation-weighted average, over clusters
///   that received new records, of how far each cluster's observed mean
///   distance exceeds its baseline radius, in units of the global
///   baseline mean radius (so a degenerate zero-radius cluster cannot
///   blow the ratio up);
/// * **variance drift** — the relative change of the observed
///   nearest-distance variance against the baseline variance.
///
/// 0.0 means "new records look exactly like the indexed distribution";
/// 1.0 means clusters have grown by (or variance has shifted by) about
/// one baseline radius — well past the point where propagation quality
/// is suspect. After an escalation the gauge is re-anchored with
/// [`DriftGauge::reset`].
#[derive(Debug, Clone)]
pub struct DriftGauge {
    baseline_radius: Vec<f64>,
    baseline_mean_radius: f64,
    baseline_variance: f64,
    obs_count: Vec<u64>,
    obs_sum: Vec<f64>,
    global_count: u64,
    global_sum: f64,
    global_sumsq: f64,
}

impl DriftGauge {
    /// Anchors a gauge: `baseline_radius[c]` is cluster `c`'s mean
    /// nearest-rep distance, `baseline_variance` the global variance of
    /// nearest distances at anchor time.
    pub fn new(baseline_radius: Vec<f64>, baseline_variance: f64) -> Self {
        let n = baseline_radius.len();
        let mean = if n == 0 {
            0.0
        } else {
            baseline_radius.iter().sum::<f64>() / n as f64
        };
        Self {
            baseline_radius,
            baseline_mean_radius: mean,
            baseline_variance,
            obs_count: vec![0; n],
            obs_sum: vec![0.0; n],
            global_count: 0,
            global_sum: 0.0,
            global_sumsq: 0.0,
        }
    }

    /// Records one ingested record: its assigned cluster and the distance
    /// to that cluster's representative. Non-finite distances and unknown
    /// cluster ids still feed the global spread statistics but no
    /// per-cluster radius (the caller may have cracked a rep the gauge
    /// has not seen yet).
    pub fn observe(&mut self, cluster: usize, dist: f64) {
        if !dist.is_finite() {
            return;
        }
        self.global_count += 1;
        self.global_sum += dist;
        self.global_sumsq += dist * dist;
        if cluster < self.obs_count.len() {
            self.obs_count[cluster] += 1;
            self.obs_sum[cluster] += dist;
        }
    }

    /// Total observations folded in since the last anchor.
    pub fn observations(&self) -> u64 {
        self.global_count
    }

    /// The current drift score (see the type docs). 0.0 with no
    /// observations.
    pub fn drift(&self) -> f64 {
        if self.global_count == 0 {
            return 0.0;
        }
        let unit = self.baseline_mean_radius.max(EPS);
        let mut weighted_excess = 0.0;
        let mut weighted_obs = 0u64;
        for c in 0..self.obs_count.len() {
            let n = self.obs_count[c];
            if n == 0 {
                continue;
            }
            let mean = self.obs_sum[c] / n as f64;
            let excess = (mean - self.baseline_radius[c]).max(0.0) / unit;
            weighted_excess += excess * n as f64;
            weighted_obs += n;
        }
        let radius_drift = if weighted_obs == 0 {
            0.0
        } else {
            weighted_excess / weighted_obs as f64
        };
        let mean = self.global_sum / self.global_count as f64;
        let var = (self.global_sumsq / self.global_count as f64 - mean * mean).max(0.0);
        let variance_drift = (var - self.baseline_variance).abs() / self.baseline_variance.max(EPS);
        radius_drift.max(variance_drift)
    }

    /// Re-anchors the gauge on a fresh baseline (after an escalation
    /// rebuilt the assignment) and clears all observations.
    pub fn reset(&mut self, baseline_radius: Vec<f64>, baseline_variance: f64) {
        *self = DriftGauge::new(baseline_radius, baseline_variance);
    }
}

/// Serving-side accounting of one index's streaming-ingest lifecycle:
/// what arrived, what replay did, what the drift gauge says, and how
/// maintenance split between incremental cracks and full rebuilds.
/// Serialized into the `metrics` reply (and the cost ledger) only when
/// ingest actually happened, so ingest-free output stays byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct IngestTelemetry {
    /// Records durably ingested (acknowledged batches, summed).
    pub records_ingested: u64,
    /// Acknowledged ingest batches.
    pub batches: u64,
    /// Log frames re-applied at startup (base + segment-delta replay).
    pub replayed_frames: u64,
    /// Current drift-gauge reading.
    pub drift: f64,
    /// Threshold at which ingest escalates to a full assignment refresh.
    pub drift_threshold: f64,
    /// Drift-triggered full-refresh escalations.
    pub escalations: u64,
    /// Escalated refreshes completed off the request path by the serving
    /// layer's background maintenance thread. Elided from JSON while zero
    /// so pre-background-refresh output stays byte-identical.
    #[cfg_attr(feature = "serde", serde(skip_serializing_if = "u64_is_zero"))]
    pub background_refreshes: u64,
    /// Maintenance cracks that stayed on the incremental append path.
    pub crack_incremental: u64,
    /// Maintenance cracks that escalated to a full assignment rebuild
    /// (the previously silent reps-grown-by-⅛ heuristic, now audited).
    pub crack_rebuilds: u64,
    /// Telemetry of the most recent assignment rebuild, when one ran.
    #[cfg_attr(feature = "serde", serde(skip_serializing_if = "Option::is_none"))]
    pub last_assign: Option<AssignTelemetry>,
}

/// serde `skip_serializing_if` helper: elide zero-valued counters that
/// post-date the wire format (keeps old output byte-identical).
#[cfg(feature = "serde")]
fn u64_is_zero(v: &u64) -> bool {
    *v == 0
}

impl IngestTelemetry {
    /// True when nothing ingest-related has happened — callers elide the
    /// whole record from their output to preserve byte-compatibility.
    pub fn is_idle(&self) -> bool {
        self.records_ingested == 0
            && self.batches == 0
            && self.replayed_frames == 0
            && self.escalations == 0
            && self.crack_rebuilds == 0
    }

    /// Writes the record as a JSON object into `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"records_ingested\":");
        out.push_str(&self.records_ingested.to_string());
        out.push_str(",\"batches\":");
        out.push_str(&self.batches.to_string());
        out.push_str(",\"replayed_frames\":");
        out.push_str(&self.replayed_frames.to_string());
        out.push_str(",\"drift\":");
        out.push_str(&fmt_f64(self.drift));
        out.push_str(",\"drift_threshold\":");
        out.push_str(&fmt_f64(self.drift_threshold));
        out.push_str(",\"escalations\":");
        out.push_str(&self.escalations.to_string());
        if self.background_refreshes > 0 {
            out.push_str(",\"background_refreshes\":");
            out.push_str(&self.background_refreshes.to_string());
        }
        out.push_str(",\"crack_incremental\":");
        out.push_str(&self.crack_incremental.to_string());
        out.push_str(",\"crack_rebuilds\":");
        out.push_str(&self.crack_rebuilds.to_string());
        if let Some(a) = &self.last_assign {
            out.push_str(",\"last_assign\":");
            a.write_json(out);
        }
        out.push('}');
    }

    /// Serializes to a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_observations_is_zero_drift() {
        let g = DriftGauge::new(vec![1.0, 2.0], 0.5);
        assert_eq!(g.drift(), 0.0);
        assert_eq!(g.observations(), 0);
    }

    #[test]
    fn in_distribution_records_stay_near_zero() {
        // Observations matching the baseline radii and spread: no drift.
        let mut g = DriftGauge::new(vec![1.0, 1.0], 0.0);
        for _ in 0..50 {
            g.observe(0, 1.0);
            g.observe(1, 1.0);
        }
        assert!(g.drift() < 1e-9, "drift = {}", g.drift());
    }

    #[test]
    fn growing_cluster_radius_raises_drift() {
        let mut g = DriftGauge::new(vec![1.0, 1.0], 0.0);
        // New records land twice as far out as the baseline radius.
        for _ in 0..50 {
            g.observe(0, 2.0);
        }
        let d = g.drift();
        // Excess = (2 - 1) / mean_radius(1) = 1.0.
        assert!((d - 1.0).abs() < 1e-9, "drift = {d}");
    }

    #[test]
    fn drift_is_observation_weighted() {
        let mut g = DriftGauge::new(vec![1.0, 1.0], 0.3);
        // 90 in-distribution, 10 far out: radius drift is diluted to 0.2
        // (an unweighted per-cluster mean would read 1.0). The observed
        // global variance (0.36) sits near the 0.3 baseline, so the
        // variance arm stays below the radius arm.
        for _ in 0..90 {
            g.observe(0, 1.0);
        }
        for _ in 0..10 {
            g.observe(1, 3.0);
        }
        let d = g.drift();
        assert!(d > 0.1 && d < 0.5, "drift = {d}");
    }

    #[test]
    fn variance_shift_raises_drift_even_with_stable_radii() {
        // Mean distance stays 1.0 but the spread explodes: the variance
        // arm must catch it.
        let mut g = DriftGauge::new(vec![1.0], 0.01);
        for i in 0..100 {
            g.observe(0, if i % 2 == 0 { 0.0 } else { 2.0 });
        }
        assert!(g.drift() > 10.0, "drift = {}", g.drift());
    }

    #[test]
    fn shrinking_clusters_do_not_count_as_radius_drift() {
        // Records landing closer than baseline are good news; only the
        // variance arm may react.
        let mut g = DriftGauge::new(vec![2.0, 2.0], 0.0);
        for _ in 0..20 {
            g.observe(0, 0.5);
            g.observe(1, 0.5);
        }
        // Radius excess clamps at 0; variance of constant 0.5 is 0 = base.
        assert!(g.drift() < 1e-9, "drift = {}", g.drift());
    }

    #[test]
    fn unknown_clusters_and_nonfinite_distances_are_safe() {
        let mut g = DriftGauge::new(vec![1.0], 0.0);
        g.observe(99, 5.0); // cracked rep the gauge has not seen
        g.observe(0, f64::NAN);
        g.observe(0, f64::INFINITY);
        assert_eq!(g.observations(), 1);
        let d = g.drift();
        assert!(d.is_finite(), "drift = {d}");
    }

    #[test]
    fn reset_reanchors_and_clears() {
        let mut g = DriftGauge::new(vec![1.0], 0.0);
        for _ in 0..10 {
            g.observe(0, 4.0);
        }
        assert!(g.drift() > 1.0);
        g.reset(vec![4.0], 0.0);
        assert_eq!(g.observations(), 0);
        assert_eq!(g.drift(), 0.0);
        g.observe(0, 4.0);
        assert!(g.drift() < 1e-9, "re-anchored baseline absorbs the shift");
    }

    #[test]
    fn degenerate_zero_radius_baseline_stays_finite() {
        let mut g = DriftGauge::new(vec![0.0, 0.0], 0.0);
        g.observe(0, 1.0);
        let d = g.drift();
        assert!(d.is_finite(), "drift = {d}");
    }

    #[test]
    fn telemetry_json_shape_and_elision() {
        let t = IngestTelemetry {
            records_ingested: 40,
            batches: 2,
            replayed_frames: 1,
            drift: 0.125,
            drift_threshold: 0.5,
            escalations: 0,
            background_refreshes: 0,
            crack_incremental: 3,
            crack_rebuilds: 1,
            last_assign: None,
        };
        let j = t.to_json();
        assert!(j.contains("\"records_ingested\":40"));
        assert!(j.contains("\"batches\":2"));
        assert!(j.contains("\"drift\":0.125"));
        assert!(j.contains("\"drift_threshold\":0.5"));
        assert!(j.contains("\"crack_incremental\":3"));
        assert!(j.contains("\"crack_rebuilds\":1"));
        assert!(!j.contains("last_assign"), "elided when absent: {j}");
        assert!(
            !j.contains("background_refreshes"),
            "elided while zero: {j}"
        );
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn background_refreshes_appear_once_one_completes() {
        let t = IngestTelemetry {
            background_refreshes: 2,
            ..IngestTelemetry::default()
        };
        assert!(t.to_json().contains("\"background_refreshes\":2"));
    }

    #[test]
    fn idle_telemetry_is_detectable() {
        assert!(IngestTelemetry::default().is_idle());
        let mut t = IngestTelemetry {
            drift_threshold: 0.5, // config alone does not make it active
            ..IngestTelemetry::default()
        };
        assert!(t.is_idle());
        t.batches = 1;
        assert!(!t.is_idle());
    }

    #[test]
    fn last_assign_is_attached_when_present() {
        let mut t = IngestTelemetry::default();
        t.last_assign = Some(AssignTelemetry {
            strategy: "ivf".into(),
            n_records: 100,
            n_reps: 16,
            n_cells: 4,
            nprobe: 2,
            quant: "none".into(),
            candidate_mean: 8.0,
            candidate_min: 4,
            candidate_max: 16,
            probe_widenings: 0,
            exact_fallback: false,
            audited_records: 32,
            audited_recall: 1.0,
            seconds: 0.01,
        });
        let j = t.to_json();
        assert!(j.contains("\"last_assign\":{\"strategy\":\"ivf\""));
    }
}
