//! Serving a persisted index: build once, answer many queries concurrently.
//!
//! Session 1 builds an index over a video and saves it. Session 2 is a
//! *server process*: it loads the index (zero labeler calls), starts
//! `tasti-serve` on an ephemeral loopback port, and four concurrent
//! clients each run a different query type against it over TCP. The
//! labels those queries pay for are folded back into the index between
//! requests (cracking), and a final snapshot persists the enriched index.
//!
//! The same server is reachable from outside the process:
//!
//! ```sh
//! cargo run --release -- serve --index idx.json --dataset night-street
//! cargo run --release -- probe agg --addr 127.0.0.1:PORT --class car
//! ```
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use tasti::index::persist;
use tasti::prelude::*;
use tasti::serve::{Client, Op, Request, ScoreSpec, ServeConfig, Server, TastiService};

fn main() {
    let video = tasti::data::video::night_street(4_000, 11);
    let dataset = &video.dataset;
    let path = std::env::temp_dir().join("tasti_serving_example.json");

    // ── Session 1: build and persist the index.
    {
        let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
        let config = TastiConfig {
            n_train: 200,
            n_reps: 400,
            embedding_dim: 24,
            ..TastiConfig::default()
        };
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let (index, report) = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .expect("construction within budget");
        persist::save(&index, &path).expect("save index");
        println!(
            "built index ({} labeler calls), saved to {}",
            report.total_invocations,
            path.display()
        );
    }

    // ── Session 2: the server. Loading pays zero labeler invocations.
    let index = persist::load(&path).expect("load index");
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
    let config = ServeConfig {
        workers: 4,
        snapshot_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let service = Arc::new(TastiService::new(index, labeler, config));
    let server = Server::start(service).expect("bind loopback");
    let addr = server.local_addr();
    println!(
        "serving on {addr} with {} reps",
        server.service().index().reps().len()
    );

    // ── Four concurrent clients, one query type each.
    let mut requests = Vec::new();

    let mut agg = Request::new(Op::EbsAggregate);
    agg.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
    agg.error_target = Some(0.2);
    agg.seed = Some(1);
    requests.push(("avg cars/frame (EBS)", agg));

    let mut supg = Request::new(Op::SupgRecallTarget);
    supg.score = Some(ScoreSpec::HasAtLeast(ObjectClass::Car, 2));
    supg.recall_target = Some(0.9);
    supg.budget = Some(400);
    supg.seed = Some(2);
    requests.push(("frames with ≥2 cars (SUPG recall)", supg));

    let mut limit = Request::new(Op::LimitQuery);
    limit.score = Some(ScoreSpec::HasClass(ObjectClass::Bus));
    limit.k_matches = Some(5);
    requests.push(("5 bus frames (limit)", limit));

    let mut pred = Request::new(Op::PredicateAggregate);
    pred.predicate = Some(ScoreSpec::HasClass(ObjectClass::Bus));
    pred.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
    pred.budget = Some(300);
    pred.seed = Some(3);
    requests.push(("avg cars among bus frames (predicate agg)", pred));

    let handles: Vec<_> = requests
        .into_iter()
        .map(|(what, req)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client.call(req).expect("round trip");
                (what, reply)
            })
        })
        .collect();
    for h in handles {
        let (what, reply) = h.join().expect("client thread");
        assert!(reply.ok, "{what}: {:?}", reply.error_message);
        println!("{what}: {}", reply.result.to_json());
    }

    // ── Admin surface: metrics, snapshot of the cracked index, drain.
    let mut admin = Client::connect(addr).expect("connect admin");
    let stats = admin.index_stats().expect("stats");
    println!("index after cracking: {}", stats.result.to_json());
    let snap = admin.snapshot().expect("snapshot");
    println!("snapshot: {}", snap.result.to_json());
    admin.shutdown().expect("shutdown request");
    let folded = server.join();
    println!("drained; final fold-in added {folded} reps");

    let reloaded = persist::load(&path).expect("reload snapshot");
    println!("snapshot reloads with {} reps", reloaded.reps().len());
    std::fs::remove_file(&path).ok();
}
