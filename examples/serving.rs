//! Serving persisted indexes: build once, answer many queries concurrently.
//!
//! Session 1 builds two indexes over a video — the trained TASTI and a
//! cheaper pretrained-only variant — and saves them. Session 2 is a
//! *server process*: it loads the trained index as the default, registers
//! the variant as a named co-tenant (`pretrained`), starts `tasti-serve`
//! on an ephemeral loopback port, and four concurrent clients each run a
//! different query type against the default while a fifth routes to the
//! named index via the request's `"index"` field. The labels those queries
//! pay for are folded back into each index between requests (cracking,
//! metered per index), and a final snapshot persists the enriched default.
//!
//! The same shape is reachable from outside the process:
//!
//! ```sh
//! cargo run --release -- serve --index idx.json --index pt=idx2.json \
//!     --dataset night-street
//! cargo run --release -- probe agg --addr 127.0.0.1:PORT --class car
//! cargo run --release -- probe agg --addr 127.0.0.1:PORT --class car --index pt
//! cargo run --release -- probe index-list --addr 127.0.0.1:PORT
//! ```
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;

use tasti::index::persist;
use tasti::prelude::*;
use tasti::serve::{Client, Op, Request, ScoreSpec, ServeConfig, ServeCore, Server, TastiService};

fn main() {
    let video = tasti::data::video::night_street(4_000, 11);
    let dataset = &video.dataset;
    let path = std::env::temp_dir().join("tasti_serving_example.json");
    let pt_path = std::env::temp_dir().join("tasti_serving_example_pt.json");

    // ── Session 1: build and persist both indexes.
    {
        let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
        let config = TastiConfig {
            n_train: 200,
            n_reps: 400,
            embedding_dim: 24,
            ..TastiConfig::default()
        };
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
        let pretrained = pt.embed_all(&dataset.features);
        let (index, report) = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .expect("construction within budget");
        persist::save(&index, &path).expect("save index");
        println!(
            "built trained index ({} labeler calls), saved to {}",
            report.total_invocations,
            path.display()
        );
        // The co-tenant: same dataset, no embedding training (TASTI-PT).
        let (pt_index, pt_report) = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config.clone().pretrained_only(),
        )
        .expect("construction within budget");
        persist::save(&pt_index, &pt_path).expect("save pt index");
        println!(
            "built pretrained-only index ({} labeler calls), saved to {}",
            pt_report.total_invocations,
            pt_path.display()
        );
    }

    // ── Session 2: the server. Loading pays zero labeler invocations.
    // The trained index is the default route; the pretrained-only variant
    // serves as the named co-tenant "pretrained" with its own meter.
    let index = persist::load(&path).expect("load index");
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
    let config = ServeConfig {
        // The evented reactor is the default core: connections live on one
        // event-loop thread, the 4 workers only run query/oracle compute.
        // `ServeCore::Threaded` (or `tasti_cli serve --serve-core threaded`)
        // is the escape hatch back to the worker-pool front end.
        core: ServeCore::Evented,
        workers: 4,
        snapshot_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let service = Arc::new(TastiService::new(index, labeler, config));
    service
        .insert_index(
            "pretrained",
            persist::load(&pt_path).expect("load pt index"),
            MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle())),
            None,
            Some(pt_path.clone()),
        )
        .expect("register co-tenant");
    let server = Server::start(service).expect("bind loopback");
    let addr = server.local_addr();
    println!(
        "serving (evented core) on {addr} with {} reps (default) + co-tenant 'pretrained'",
        server.service().index().reps().len()
    );

    // ── Four concurrent clients, one query type each.
    let mut requests = Vec::new();

    let mut agg = Request::new(Op::EbsAggregate);
    agg.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
    agg.error_target = Some(0.2);
    agg.seed = Some(1);
    requests.push(("avg cars/frame (EBS)", agg));

    let mut supg = Request::new(Op::SupgRecallTarget);
    supg.score = Some(ScoreSpec::HasAtLeast(ObjectClass::Car, 2));
    supg.recall_target = Some(0.9);
    supg.budget = Some(400);
    supg.seed = Some(2);
    requests.push(("frames with ≥2 cars (SUPG recall)", supg));

    let mut limit = Request::new(Op::LimitQuery);
    limit.score = Some(ScoreSpec::HasClass(ObjectClass::Bus));
    limit.k_matches = Some(5);
    requests.push(("5 bus frames (limit)", limit));

    let mut pred = Request::new(Op::PredicateAggregate);
    pred.predicate = Some(ScoreSpec::HasClass(ObjectClass::Bus));
    pred.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
    pred.budget = Some(300);
    pred.seed = Some(3);
    requests.push(("avg cars among bus frames (predicate agg)", pred));

    // The fifth client routes to the named co-tenant: same wire protocol,
    // plus an "index" field; its oracle labels are metered separately.
    let mut routed = Request::new(Op::EbsAggregate);
    routed.score = Some(ScoreSpec::CountClass(ObjectClass::Car));
    routed.error_target = Some(0.2);
    routed.seed = Some(4);
    routed.index = Some("pretrained".to_string());
    requests.push(("avg cars/frame on 'pretrained' (EBS)", routed));

    let handles: Vec<_> = requests
        .into_iter()
        .map(|(what, req)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client.call(req).expect("round trip");
                (what, reply)
            })
        })
        .collect();
    for h in handles {
        let (what, reply) = h.join().expect("client thread");
        assert!(reply.ok, "{what}: {:?}", reply.error_message);
        println!("{what}: {}", reply.result.to_json());
    }

    // ── Admin surface: registry listing, metrics, snapshot of the cracked
    // default index, drain.
    let mut admin = Client::connect(addr).expect("connect admin");
    let listing = admin.call(Request::new(Op::IndexList)).expect("index_list");
    println!("registry: {}", listing.result.to_json());
    let stats = admin.index_stats().expect("stats");
    println!("default index after cracking: {}", stats.result.to_json());
    let snap = admin.snapshot().expect("snapshot");
    println!("snapshot: {}", snap.result.to_json());
    admin.shutdown().expect("shutdown request");
    let folded = server.join();
    println!("drained; final fold-in added {folded} reps");

    let reloaded = persist::load(&path).expect("reload snapshot");
    println!("snapshot reloads with {} reps", reloaded.reps().len());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&pt_path).ok();
}
