//! Quickstart: build one TASTI index over a video and answer all three
//! query types from it — no per-query model training.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tasti::prelude::*;

fn main() {
    // ── A "video": 8,000 synthetic traffic-camera frames whose ground
    // truth is hidden behind an expensive, metered target labeler
    // (Mask R-CNN priced at 3 fps).
    let video = tasti::data::video::night_street(8_000, 42);
    let dataset = &video.dataset;
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
    println!("dataset: {dataset:?}");

    // ── Build the index (Algorithm 1): mine diverse training frames with
    // FPF, fine-tune an embedding with the triplet loss, select cluster
    // representatives, annotate them once.
    let config = TastiConfig {
        n_train: 300,
        n_reps: 800,
        embedding_dim: 32,
        ..TastiConfig::default()
    };
    let mut pretrained = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 7);
    let embeddings = pretrained.embed_all(&dataset.features);
    let (index, report) = build_index(
        &dataset.features,
        &embeddings,
        &labeler,
        &VideoCloseness::default(),
        &config,
    )
    .expect("construction within budget");
    println!(
        "index built: {} reps, {} labeler invocations, {:.2}s wall clock",
        index.reps().len(),
        report.total_invocations,
        report.total_seconds()
    );

    // ── Query 1: "average number of cars per frame" with a ±0.05 error
    // guarantee at 95% confidence (BlazeIt-style EBS with the TASTI proxy
    // scores as a control variate).
    let proxy = index.propagate(&CountClass(ObjectClass::Car));
    let agg_config = AggregationConfig {
        error_target: 0.05,
        stopping: StoppingRule::Clt,
        ..Default::default()
    };
    let agg = ebs_aggregate(
        &proxy,
        &mut |r| labeler.label(r).count_class(ObjectClass::Car) as f64,
        &agg_config,
    );
    println!(
        "\n[aggregation] avg cars/frame ≈ {:.3} after {} labeler calls (ρ² = {:.3})",
        agg.estimate, agg.samples, agg.rho_squared
    );

    // ── Query 2: "return ≥90% of frames with ≥2 cars, 95% confidence,
    // within a 400-call budget" (SUPG recall-target selection).
    let sel_proxy = index.propagate(&HasAtLeast(ObjectClass::Car, 2));
    let supg_config = SupgConfig {
        budget: 400,
        ..Default::default()
    };
    let supg = supg_recall_target(
        &sel_proxy,
        &mut |r| labeler.label(r).count_class(ObjectClass::Car) >= 2,
        &supg_config,
    );
    println!(
        "[selection]  returned {} frames at threshold {:.3} using {} labeler calls",
        supg.returned.len(),
        supg.threshold,
        supg.oracle_calls
    );

    // ── Query 3: "find 5 frames with at least 5 cars" (limit query, k = 1
    // ranking with distance tie-breaks).
    let ranking = index.limit_ranking(&CountClass(ObjectClass::Car));
    let limit = limit_query(
        &ranking,
        &mut |r| labeler.label(r).count_class(ObjectClass::Car) >= 5,
        5,
        dataset.len(),
    );
    println!(
        "[limit]      found {:?} after scanning {} frames",
        limit.found, limit.invocations
    );

    // ── The meter shows the total oracle spend across everything above.
    let cost = labeler.total_cost();
    println!(
        "\ntotal target-labeler invocations: {} (simulated {:.0}s of Mask R-CNN time; exhaustive would be {:.0}s)",
        labeler.invocations(),
        cost.seconds,
        CostModel::mask_rcnn().target.times(dataset.len() as u64).seconds
    );
}
