//! Video-analytics session: many queries over one index, with cracking.
//!
//! Mirrors the workload the paper's introduction motivates — an analyst
//! iteratively querying a traffic camera: counting cars, counting buses
//! (same index, different class), selecting busy frames, hunting rare
//! events, and asking a position query no per-query proxy system supports.
//! Between queries the index is *cracked*: every target-labeler output a
//! query paid for becomes a new cluster representative, so later queries
//! get better proxy scores for free (§3.3).
//!
//! ```sh
//! cargo run --release --example video_analytics
//! ```

use tasti::prelude::*;

fn main() {
    let video = tasti::data::video::taipei(10_000, 99);
    let dataset = &video.dataset;
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));

    // One index for the whole session: the taipei dataset carries two
    // object classes (cars common, buses rare) and the paper uses a single
    // set of embeddings for both (§6.3).
    let config = TastiConfig {
        n_train: 400,
        n_reps: 1000,
        embedding_dim: 32,
        ..TastiConfig::default()
    };
    let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 5);
    let pretrained = pt.embed_all(&dataset.features);
    let (mut index, report) = build_index(
        &dataset.features,
        &pretrained,
        &labeler,
        &VideoCloseness::default(),
        &config,
    )
    .expect("construction within budget");
    println!(
        "index: {} reps from {} labeler calls\n",
        index.reps().len(),
        report.total_invocations
    );

    let agg_cfg = AggregationConfig {
        error_target: 0.05,
        stopping: StoppingRule::Clt,
        ..Default::default()
    };

    // ── Query 1: average cars per frame.
    let proxy = index.propagate(&CountClass(ObjectClass::Car));
    let res = ebs_aggregate(
        &proxy,
        &mut |r| labeler.label(r).count_class(ObjectClass::Car) as f64,
        &agg_cfg,
    );
    println!(
        "[1] avg cars/frame  ≈ {:.3}  ({} calls, ρ²={:.2})",
        res.estimate, res.samples, res.rho_squared
    );

    // Crack: the frames query 1 labeled become representatives.
    let added = crack_from_labeler(&mut index, &labeler);
    println!("    cracked {added} new representatives into the index");

    // ── Query 2: average buses per frame — same index, different class,
    // and it benefits from query 1's cracked representatives.
    let proxy = index.propagate(&CountClass(ObjectClass::Bus));
    let res = ebs_aggregate(
        &proxy,
        &mut |r| labeler.label(r).count_class(ObjectClass::Bus) as f64,
        &agg_cfg,
    );
    println!(
        "[2] avg buses/frame ≈ {:.3}  ({} calls, ρ²={:.2})",
        res.estimate, res.samples, res.rho_squared
    );
    crack_from_labeler(&mut index, &labeler);

    // ── Query 3: SUPG — return ≥90% of frames containing a bus.
    let proxy = index.propagate(&HasClass(ObjectClass::Bus));
    let supg = supg_recall_target(
        &proxy,
        &mut |r| labeler.label(r).count_class(ObjectClass::Bus) > 0,
        &SupgConfig {
            budget: 400,
            ..Default::default()
        },
    );
    println!(
        "[3] bus frames: returned {} candidates ({} calls)",
        supg.returned.len(),
        supg.oracle_calls
    );
    crack_from_labeler(&mut index, &labeler);

    // ── Query 4: limit — find 5 frames with ≥6 cars (rare bursts).
    let ranking = index.limit_ranking(&CountClass(ObjectClass::Car));
    let limit = limit_query(
        &ranking,
        &mut |r| labeler.label(r).count_class(ObjectClass::Car) >= 6,
        5,
        dataset.len(),
    );
    println!(
        "[4] burst frames {:?} after {} scans",
        limit.found, limit.invocations
    );
    crack_from_labeler(&mut index, &labeler);

    // ── Query 5: average x-position of cars — a regression query that
    // defeats per-query proxy training (Figure 8) but is just another
    // scoring function for TASTI.
    let proxy = index.propagate(&MeanXPosition(ObjectClass::Car));
    let res = ebs_aggregate(
        &proxy,
        &mut |r| MeanXPosition(ObjectClass::Car).score(&labeler.label(r)),
        &AggregationConfig {
            error_target: 0.01,
            stopping: StoppingRule::Clt,
            ..Default::default()
        },
    );
    println!(
        "[5] avg car x-pos   ≈ {:.3}  ({} calls)",
        res.estimate, res.samples
    );

    println!(
        "\nsession total: {} labeler invocations across 5 queries + index ({}% of exhaustive)",
        labeler.invocations(),
        100 * labeler.invocations() as usize / dataset.len()
    );
}
