//! Text analytics with a *human* target labeler and a dollar budget.
//!
//! The WikiSQL scenario of §6.1: natural-language questions whose SQL
//! parse must be crowd-annotated (~$0.07/label). The index is built under a
//! hard annotation budget; queries then run against it and the example
//! prints what the same answers would have cost with exhaustive annotation.
//!
//! ```sh
//! cargo run --release --example text_analytics
//! ```

use tasti::prelude::*;
use tasti_labeler::{Schema, SqlOp};

fn main() {
    let text = tasti::data::text::wikisql(6_000, 11);
    let dataset = &text.dataset;

    // A human labeler with a hard budget of 2,500 annotations (~$175):
    // enough for the index plus the session's queries, a fraction of the
    // $420 exhaustive annotation would cost.
    let labeler = MeteredLabeler::with_budget(
        OracleLabeler::human(dataset.truth_handle(), Schema::wikisql()),
        2_500,
    );

    let config = TastiConfig {
        n_train: 500,
        n_reps: 500,
        embedding_dim: 32,
        ..TastiConfig::default()
    };
    let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 3);
    let pretrained = pt.embed_all(&dataset.features);
    let (index, report) = match build_index(
        &dataset.features,
        &pretrained,
        &labeler,
        &SqlCloseness,
        &config,
    ) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("annotation budget too small for this configuration: {e}");
            return;
        }
    };
    let index_cost = labeler.total_cost();
    println!(
        "index: {} reps, {} annotations, ${:.2} of crowd work",
        index.reps().len(),
        report.total_invocations,
        index_cost.dollars
    );

    // ── "What is the average number of WHERE predicates per question?"
    let proxy = index.propagate(&SqlNumPredicates);
    let res = ebs_aggregate(
        &proxy,
        &mut |r| SqlNumPredicates.score(&labeler.label(r)),
        &AggregationConfig {
            error_target: 0.05,
            stopping: StoppingRule::Clt,
            ..Default::default()
        },
    );
    println!(
        "\navg predicates/question ≈ {:.3} ({} extra annotations, ρ²={:.2})",
        res.estimate, res.samples, res.rho_squared
    );

    // ── "Return ≥90% of the plain-SELECT questions" (SUPG).
    let proxy = index.propagate(&SqlOpIs(SqlOp::Select));
    let supg = supg_recall_target(
        &proxy,
        &mut |r| SqlOpIs(SqlOp::Select).score(&labeler.label(r)) >= 0.5,
        &SupgConfig {
            budget: 300,
            ..Default::default()
        },
    );
    println!(
        "SELECT questions: {} returned at threshold {:.3} ({} annotations)",
        supg.returned.len(),
        supg.threshold,
        supg.oracle_calls
    );

    // ── "Show me 5 four-predicate questions" (limit).
    let ranking = index.limit_ranking(&SqlNumPredicates);
    let limit = limit_query(
        &ranking,
        &mut |r| SqlNumPredicates.score(&labeler.label(r)) >= 4.0,
        5,
        dataset.len(),
    );
    println!(
        "four-predicate questions {:?} after {} annotations",
        limit.found, limit.invocations
    );

    let total = labeler.total_cost();
    let exhaustive = CostModel::human().target.times(dataset.len() as u64);
    println!(
        "\ntotal crowd spend: ${:.2} (index ${:.2} + queries ${:.2}); exhaustive annotation: ${:.2}",
        total.dollars,
        index_cost.dollars,
        total.dollars - index_cost.dollars,
        exhaustive.dollars
    );
}
