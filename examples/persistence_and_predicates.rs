//! Index persistence across sessions, and predicate-aggregation queries.
//!
//! Session 1 builds an index over a video and saves it to disk. Session 2
//! loads it back — paying zero target-labeler invocations — and answers a
//! *predicate aggregation* query ("average cars per frame, among frames
//! containing a bus"), the query type the paper's §2.2 notes follow-up work
//! built on TASTI.
//!
//! ```sh
//! cargo run --release --example persistence_and_predicates
//! ```

use tasti::index::persist;
use tasti::prelude::*;
use tasti::query::{predicate_aggregate, PredicateAggConfig};

fn main() {
    let video = tasti::data::video::taipei(8_000, 55);
    let dataset = &video.dataset;
    let path = std::env::temp_dir().join("tasti_taipei_index.json");

    // ── Session 1: build and save.
    {
        let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
        let config = TastiConfig {
            n_train: 300,
            n_reps: 800,
            embedding_dim: 32,
            ..TastiConfig::default()
        };
        let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 2);
        let pretrained = pt.embed_all(&dataset.features);
        let (index, report) = build_index(
            &dataset.features,
            &pretrained,
            &labeler,
            &VideoCloseness::default(),
            &config,
        )
        .expect("construction within budget");
        persist::save(&index, &path).expect("save index");
        println!(
            "session 1: built ({} labeler calls) and saved to {}",
            report.total_invocations,
            path.display()
        );
    }

    // ── Session 2: load and query. No labeler calls to restore the index.
    let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(dataset.truth_handle()));
    let index = persist::load(&path).expect("load index");
    println!(
        "session 2: loaded index with {} reps, cover radius {:.3}",
        index.reps().len(),
        index.cover_radius()
    );

    // Predicate aggregation: "average cars per frame, among frames with a
    // bus". The bus-presence proxy drives importance sampling; one labeler
    // call per sampled frame answers both the predicate and the value.
    let bus_proxy = index.propagate(&HasClass(ObjectClass::Bus));
    let result = predicate_aggregate(
        &bus_proxy,
        &mut |r| {
            let out = labeler.label(r);
            if out.count_class(ObjectClass::Bus) > 0 {
                Some(out.count_class(ObjectClass::Car) as f64)
            } else {
                None
            }
        },
        &PredicateAggConfig {
            budget: 600,
            ..Default::default()
        },
    );
    println!(
        "avg cars/frame among bus frames ≈ {:.3} ± {:.3} ({} labeler calls, {} bus frames sampled)",
        result.estimate, result.ci_half_width, result.oracle_calls, result.matches_sampled
    );

    // Ground truth for comparison (evaluation only).
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..dataset.len() {
        let out = dataset.ground_truth(i);
        if out.count_class(ObjectClass::Bus) > 0 {
            sum += out.count_class(ObjectClass::Car) as f64;
            count += 1;
        }
    }
    println!(
        "ground truth: {:.3} over {count} bus frames",
        sum / count.max(1) as f64
    );

    std::fs::remove_file(&path).ok();
}
