//! Extending TASTI with custom scoring functions (§4.2).
//!
//! The paper's extension API is a single function from the target labeler's
//! output to a score — "these functions can be implemented in few lines of
//! code". This example defines two custom queries over the speech dataset
//! (Common Voice-style): a categorical age-bucket prediction propagated by
//! weighted majority vote, and a composite "young female speaker" predicate
//! built with [`FnScore`], then answers them from one index.
//!
//! ```sh
//! cargo run --release --example custom_scoring
//! ```

use tasti::prelude::*;
use tasti_labeler::{Gender, Schema};

fn main() {
    let dataset = tasti::data::speech::common_voice(6_000, 23);
    let labeler = MeteredLabeler::new(OracleLabeler::human(
        dataset.truth_handle(),
        Schema::common_voice(),
    ));

    let config = TastiConfig {
        n_train: 500,
        n_reps: 500,
        embedding_dim: 24,
        ..TastiConfig::default()
    };
    let mut pt = PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, 9);
    let pretrained = pt.embed_all(&dataset.features);
    let (index, _) = build_index(
        &dataset.features,
        &pretrained,
        &labeler,
        &SpeechCloseness,
        &config,
    )
    .expect("construction within budget");

    // ── Custom query 1: fraction of male speakers (built-in scoring fn).
    let proxy = index.propagate(&SpeechIsMale);
    let res = ebs_aggregate(
        &proxy,
        &mut |r| SpeechIsMale.score(&labeler.label(r)),
        &AggregationConfig {
            error_target: 0.03,
            stopping: StoppingRule::Clt,
            ..Default::default()
        },
    );
    println!(
        "fraction male ≈ {:.3} ({} annotations)",
        res.estimate, res.samples
    );

    // ── Custom query 2: categorical age-bucket prediction for every
    // snippet via distance-weighted majority vote (§4.3's categorical
    // propagation), evaluated against ground truth.
    let predicted = index.propagate_categorical(
        |o| match o {
            LabelerOutput::Speech(s) => s.age_bucket as u32,
            _ => 0,
        },
        5,
    );
    let correct = (0..dataset.len())
        .filter(|&i| match dataset.ground_truth(i) {
            LabelerOutput::Speech(s) => predicted[i] == s.age_bucket as u32,
            _ => false,
        })
        .count();
    println!(
        "age-bucket majority vote accuracy: {:.1}% over {} snippets",
        100.0 * correct as f64 / dataset.len() as f64,
        dataset.len()
    );

    // ── Custom query 3: a composite predicate written as a closure —
    // "female speaker under 30" — exactly the few-lines extension the
    // paper's API sketch describes.
    let young_female = FnScore(|o: &LabelerOutput| match o {
        LabelerOutput::Speech(s) => (s.gender == Gender::Female && s.age_bucket <= 1) as u8 as f64,
        _ => 0.0,
    });
    let proxy = index.propagate(&young_female);
    let supg = supg_recall_target(
        &proxy,
        &mut |r| young_female.score(&labeler.label(r)) >= 0.5,
        &SupgConfig {
            budget: 800,
            ..Default::default()
        },
    );
    println!(
        "young female speakers: {} candidates returned ({} annotations)",
        supg.returned.len(),
        supg.oracle_calls
    );

    println!("\ntotal annotations: {}", labeler.invocations());
}
