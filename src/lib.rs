//! # TASTI — Trainable Semantic Indexes for ML-based Queries over Unstructured Data
//!
//! A from-scratch Rust reproduction of *"Semantic Indexes for Machine
//! Learning-based Queries over Unstructured Data"* (Kang, Guibas, Bailis,
//! Hashimoto, Zaharia — SIGMOD 2022, arXiv:2009.04540).
//!
//! TASTI replaces the per-query proxy models of BlazeIt / NoScope / SUPG /
//! probabilistic predicates with **one semantic index per dataset**: an
//! embedding trained with a triplet loss over the target labeler's induced
//! schema, a set of furthest-point-first cluster representatives annotated
//! once by the expensive labeler, and a min-k distance table. Any query's
//! proxy scores are derived by propagating exact representative scores —
//! no per-query training.
//!
//! ## Crate map
//!
//! | facade module | crate | contents |
//! |---|---|---|
//! | [`index`] | `tasti-core` | the index: Algorithm 1, propagation, scoring API, cracking |
//! | [`query`] | `tasti-query` | EBS aggregation, SUPG selection, limit ranking |
//! | [`labeler`] | `tasti-labeler` | target labelers, schemas, closeness functions, cost model |
//! | [`cluster`] | `tasti-cluster` | FPF, distance kernels, min-k tables |
//! | [`nn`] | `tasti-nn` | MLPs, triplet loss, optimizers, metrics |
//! | [`data`] | `tasti-data` | the five synthetic evaluation datasets |
//! | [`baselines`] | `tasti-baselines` | per-query proxies, TMAS, no-proxy, exhaustive |
//! | [`serve`] | `tasti-serve` | concurrent TCP query service over a persisted index |
//!
//! ## Quickstart
//!
//! ```
//! use tasti::prelude::*;
//!
//! // 1. A dataset and its expensive target labeler.
//! let video = tasti::data::video::night_street(2_000, 7);
//! let labeler = MeteredLabeler::new(OracleLabeler::mask_rcnn(video.dataset.truth_handle()));
//!
//! // 2. Build the index once (Algorithm 1).
//! let config = TastiConfig {
//!     n_train: 80,
//!     n_reps: 150,
//!     embedding_dim: 16,
//!     ..TastiConfig::default()
//! };
//! let mut pretrained =
//!     PretrainedEmbedder::new(video.dataset.feature_dim(), config.embedding_dim, 1);
//! let embeddings = pretrained.embed_all(&video.dataset.features);
//! let (index, report) = build_index(
//!     &video.dataset.features,
//!     &embeddings,
//!     &labeler,
//!     &VideoCloseness::default(),
//!     &config,
//! ).unwrap();
//! assert!(report.total_invocations <= 230);
//!
//! // 3. Proxy scores for any query over the induced schema — no retraining.
//! let cars_per_frame = index.propagate(&CountClass(ObjectClass::Car));
//! assert_eq!(cars_per_frame.len(), 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tasti_baselines as baselines;
pub use tasti_cluster as cluster;
pub use tasti_core as index;
pub use tasti_data as data;
pub use tasti_labeler as labeler;
pub use tasti_nn as nn;
pub use tasti_query as query;
pub use tasti_serve as serve;

/// The most common imports, bundled.
pub mod prelude {
    pub use tasti_cluster::{AssignStrategy, IvfParams, Metric, SelectionStrategy};
    pub use tasti_core::{
        build_index, crack::crack_from_labeler, try_build_index, BuildError, CountClass, FnScore,
        HasAtLeast, HasClass, MeanXPosition, ScoringFunction, SpeechIsMale, SqlNumPredicates,
        SqlOpIs, TastiConfig, TastiIndex,
    };
    pub use tasti_data::{OracleLabeler, PretrainedEmbedder};
    pub use tasti_labeler::{
        BatchTargetLabeler, ClosenessFn, CostModel, FallibleTargetLabeler, FaultInjectingLabeler,
        FaultKind, FaultPlan, LabelerFault, LabelerOutput, MeteredLabeler, ObjectClass,
        ResilientLabeler, SpeechCloseness, SqlCloseness, TargetLabeler, VideoCloseness,
    };
    pub use tasti_query::{
        ebs_aggregate, ebs_aggregate_batch, limit_query, limit_query_batch, supg_recall_target,
        supg_recall_target_batch, try_ebs_aggregate_batch, try_limit_query_batch,
        try_supg_recall_target_batch, AggregationConfig, QueryOutcome, StoppingRule, SupgConfig,
    };
}
