//! `tasti` command-line interface.
//!
//! Builds, inspects, and queries TASTI indexes over the built-in synthetic
//! datasets from the shell. Datasets are regenerated deterministically from
//! `(name, n, seed)`, so pass the same dataset flags to `build` and `query`.
//!
//! ```sh
//! tasti_cli build --dataset night-street --n 12000 --seed 42 --out /tmp/ns.json
//! tasti_cli info  --index /tmp/ns.json
//! tasti_cli query agg   --index /tmp/ns.json --dataset night-street --n 12000 --seed 42 --class car --error 0.05
//! tasti_cli query supg  --index /tmp/ns.json --dataset night-street --n 12000 --seed 42 --class car --min-count 2 --budget 500
//! tasti_cli query limit --index /tmp/ns.json --dataset night-street --n 12000 --seed 42 --class car --min-count 6 --matches 10
//! ```

use std::collections::HashMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use tasti::index::persist;
use tasti::prelude::*;
use tasti::query::{StoppingRule, SupgConfig};
use tasti::serve::{
    Client, FaultScript, FaultVfs, LabelerFactory, Op as ServeOp, Reply, Request as ServeRequest,
    ScoreSpec, ServeConfig, ServeCore, Server, TastiService, Vfs, DEFAULT_INDEX_NAME,
};
use tasti_labeler::Schema;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    /// Build an index and save it.
    Build(BuildArgs),
    /// Print index metadata.
    Info { index: String },
    /// Run a query against a saved index.
    Query(QueryArgs),
    /// Serve a saved index over TCP until an admin `shutdown` request.
    Serve(ServeArgs),
    /// Send one wire-protocol request to a running server.
    Probe(ProbeArgs),
    /// Print usage.
    Help,
}

#[derive(Debug, Clone, PartialEq)]
struct BuildArgs {
    dataset: String,
    n: usize,
    seed: u64,
    n_train: usize,
    n_reps: usize,
    dim: usize,
    out: String,
    pretrained_only: bool,
    /// Rep-assignment strategy: `exact`, `ivf`, or `auto`.
    assign: String,
    /// IVF probe width (0 = auto); only meaningful with `--assign ivf`.
    nprobe: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct ServeArgs {
    /// Path of the default index (the unnamed `--index` value).
    index: String,
    /// Extra named indexes to preload: `--index name=path`, repeatable.
    /// All of them answer against the same `--dataset` oracle.
    preload: Vec<(String, String)>,
    dataset: String,
    n: usize,
    seed: u64,
    addr: String,
    /// Front-end architecture: the evented reactor (default) or the
    /// worker-pool escape hatch (`--serve-core threaded`, kept for one
    /// release while the reactor beds in).
    core: ServeCore,
    workers: usize,
    queue_depth: usize,
    snapshot: Option<String>,
    snapshot_on_shutdown: bool,
    label_budget: Option<u64>,
    no_crack: bool,
    /// Reject fault-degraded queries with `labeler_unavailable` instead of
    /// answering with the proxy-only partial result.
    no_degraded: bool,
    /// Injected fault rates (chaos testing; 0 = off). When any rate is
    /// positive the oracle is wrapped in `FaultInjectingLabeler` +
    /// `ResilientLabeler`, so retries and the circuit breaker are live.
    fault_transient: f64,
    fault_timeout: f64,
    fault_corrupt: f64,
    fault_fatal: f64,
    fault_seed: u64,
    /// Directory of the durable ingest segment log; absent → the `ingest`
    /// op is rejected.
    ingest_dir: Option<String>,
    /// Drift level at which ingest escalates to a full assignment refresh.
    drift_threshold: f64,
    /// Scripted disk-fault injection for the storage layer (segment log +
    /// snapshots): `op:nth=kind,...`. Absent (and rate 0) → real
    /// filesystem.
    storage_fault_script: Option<String>,
    /// Seeded random disk-fault rate (0 = off), deterministic under
    /// `storage_fault_seed`.
    storage_fault_rate: f64,
    storage_fault_seed: u64,
}

#[derive(Debug, Clone, PartialEq)]
struct ProbeArgs {
    /// agg | supg | supg-precision | limit | predicate | stats | metrics
    /// | health | index-list | index-load | index-unload | snapshot
    /// | shutdown | ingest
    op: String,
    addr: String,
    class: String,
    min_count: usize,
    error: f64,
    budget: usize,
    matches: usize,
    seed: u64,
    /// Route the request to a named index (`index-load`/`index-unload`
    /// name the index to add or drop); absent → the default index.
    index: Option<String>,
    /// Snapshot file for `index-load`.
    path: Option<String>,
    /// Per-index label budget for `index-load`.
    label_budget: Option<usize>,
    /// Row source for `ingest`: regenerate this dataset (with `--n`/
    /// `--seed`) and send features `[offset, offset+count)`.
    dataset: Option<String>,
    n: Option<usize>,
    offset: usize,
    count: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct QueryArgs {
    kind: String, // agg | supg | limit
    index: String,
    dataset: String,
    n: usize,
    seed: u64,
    class: String,
    min_count: usize,
    error: f64,
    budget: usize,
    matches: usize,
}

const USAGE: &str = "tasti — trainable semantic indexes (SIGMOD 2022 reproduction)

USAGE:
  tasti_cli build --dataset <name> --n <records> [--seed S] [--train N1] [--reps N2]
                  [--dim D] [--pretrained-only] [--assign exact|ivf|auto]
                  [--nprobe P] --out <index.json>
  tasti_cli info  --index <index.json>
  tasti_cli query <agg|supg|limit> --index <index.json>
                  --dataset <name> --n <records> [--seed S]
                  [--class car|bus] [--min-count K] [--error E]
                  [--budget B] [--matches M]
  tasti_cli serve --index [name=]<index.json> [--index name=path]...
                  --dataset <name> --n <records> [--seed S]
                  [--addr 127.0.0.1:0] [--serve-core evented|threaded]
                  [--workers W] [--queue-depth Q]
                  [--snapshot <path>] [--snapshot-on-shutdown]
                  [--label-budget B] [--no-crack] [--no-degraded]
                  [--fault-transient R] [--fault-timeout R]
                  [--fault-corrupt R] [--fault-fatal R] [--fault-seed S]
                  [--ingest-dir DIR] [--drift-threshold T]
                  [--storage-fault-script 'op:nth=kind,...']
                  [--storage-fault-rate R] [--storage-fault-seed S]
  tasti_cli probe <agg|supg|supg-precision|limit|predicate|stats|metrics|health|index-list|index-load|index-unload|snapshot|shutdown|ingest>
                  --addr HOST:PORT [--index NAME] [--path FILE]
                  [--label-budget B] [--class car|bus] [--min-count K]
                  [--error E] [--budget B] [--matches M] [--seed S]
                  [--dataset NAME --n RECORDS --offset O --count C]

DATASETS: night-street, taipei, amsterdam, wikisql, common-voice
QUERIES over video use --class/--min-count; wikisql aggregates predicate
counts and selects SELECT-questions; common-voice aggregates/selects male
speakers.

serve answers the line-delimited JSON wire protocol (see tasti-serve) and
drains gracefully on an admin shutdown request: `tasti_cli probe shutdown
--addr HOST:PORT`. probe prints the raw response line.

serve hosts one default index plus any number of named indexes (repeat
--index name=path); each gets its own oracle meter and label budget. probe
--index NAME routes a request to a named index, and index-list /
index-load / index-unload manage the registry at runtime (index-load needs
--index NAME --path FILE and takes an optional --label-budget). All hosted
indexes answer against the same --dataset oracle.

serve --fault-* rates inject deterministic oracle faults behind the full
resilience stack (retry/backoff + circuit breaker): transient and timeout
faults are retried, corrupt and fatal faults degrade their query to the
proxy-only answer (or a typed labeler_unavailable error with
--no-degraded). `probe health` reports breaker state and fault counters.

serve --ingest-dir DIR enables streaming ingest: `probe ingest` batches are
fsync'd to a crash-safe segment log before they are acknowledged, then
folded into the index incrementally (escalating to a full rep-assignment
refresh past --drift-threshold). On restart the log replays, so an
acknowledged batch survives kill -9. `probe ingest` regenerates --dataset
with --n/--seed and sends feature rows [--offset, --offset+--count); serve
accepts a --n larger than the index so ingested records keep oracle
coverage.

serve --storage-fault-* flags inject deterministic *disk* faults under the
segment log and snapshot writer (storage chaos testing). A script names
exact operations ('sync:2=eio,write:1=short'; kinds eio, enospc, short,
torn); a rate draws faults from a seeded schedule. After an fsync failure
the open segment is poisoned, the batch is NOT acknowledged, and ingest
degrades to read-only (typed ingest_rejected with read_only:true) while
queries keep serving; `probe health` gains a storage section. A damaged
snapshot falls back to its .prev last-good copy at startup and on
index-load, with the gap replayed from the ingest log.";

fn parse_flags(args: &[String]) -> Result<HashMap<String, Vec<String>>, String> {
    let mut flags: HashMap<String, Vec<String>> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if [
                "pretrained-only",
                "snapshot-on-shutdown",
                "no-crack",
                "no-degraded",
            ]
            .contains(&name)
            {
                flags
                    .entry(name.to_string())
                    .or_default()
                    .push("true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags
                    .entry(name.to_string())
                    .or_default()
                    .push(value.clone());
                i += 2;
            }
        } else {
            return Err(format!("unexpected argument '{a}'"));
        }
    }
    Ok(flags)
}

/// Scalar flag lookup; a repeated flag takes its last value.
fn get<T: std::str::FromStr>(
    flags: &HashMap<String, Vec<String>>,
    key: &str,
    default: Option<T>,
) -> Result<T, String> {
    match flags.get(key).and_then(|values| values.last()) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: '{v}'")),
        None => default.ok_or_else(|| format!("missing required flag --{key}")),
    }
}

/// Optional scalar flag lookup (last value wins, `None` when absent).
fn get_opt<T: std::str::FromStr>(
    flags: &HashMap<String, Vec<String>>,
    key: &str,
) -> Result<Option<T>, String> {
    match flags.get(key).and_then(|values| values.last()) {
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value for --{key}: '{v}'")),
        None => Ok(None),
    }
}

/// Splits the repeatable `serve --index [name=]path` values into the
/// default index path plus the named preload list.
///
/// Exactly one value must designate the default index — a bare path or the
/// explicit `default=path` spelling. Every other value must be `name=path`
/// with a unique name; those indexes are preloaded into the registry and
/// reachable via the wire protocol's `"index"` field.
fn parse_serve_indexes(values: &[String]) -> Result<(String, Vec<(String, String)>), String> {
    if values.is_empty() {
        return Err("missing required flag --index".to_string());
    }
    let mut default_path: Option<String> = None;
    let mut preload: Vec<(String, String)> = Vec::new();
    for value in values {
        let (name, path) = match value.split_once('=') {
            Some(pair) => pair,
            None => ("default", value.as_str()),
        };
        if name.is_empty() || path.is_empty() {
            return Err(format!(
                "invalid --index value '{value}' (expected [name=]path)"
            ));
        }
        if name == "default" {
            if default_path.is_some() {
                return Err(
                    "only one --index may be the default (a bare path or default=path)".to_string(),
                );
            }
            default_path = Some(path.to_string());
        } else {
            if preload.iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate --index name '{name}'"));
            }
            preload.push((name.to_string(), path.to_string()));
        }
    }
    let default_path = default_path.ok_or_else(|| {
        "one --index must be the default index (a bare path or default=path)".to_string()
    })?;
    Ok((default_path, preload))
}

fn parse(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("build") => {
            let flags = parse_flags(&args[1..])?;
            Ok(Command::Build(BuildArgs {
                dataset: get(&flags, "dataset", None)?,
                n: get(&flags, "n", None)?,
                seed: get(&flags, "seed", Some(42))?,
                n_train: get(&flags, "train", Some(400))?,
                n_reps: get(&flags, "reps", Some(1200))?,
                dim: get(&flags, "dim", Some(32))?,
                out: get(&flags, "out", None)?,
                pretrained_only: flags.contains_key("pretrained-only"),
                assign: {
                    let v = get(&flags, "assign", Some("auto".to_string()))?;
                    if !["exact", "ivf", "auto"].contains(&v.as_str()) {
                        return Err(format!(
                            "invalid value for --assign: '{v}' (exact|ivf|auto)"
                        ));
                    }
                    v
                },
                nprobe: get(&flags, "nprobe", Some(0))?,
            }))
        }
        Some("info") => {
            let flags = parse_flags(&args[1..])?;
            Ok(Command::Info {
                index: get(&flags, "index", None)?,
            })
        }
        Some("query") => {
            let kind = args
                .get(1)
                .cloned()
                .ok_or("query needs a kind: agg|supg|limit")?;
            if !["agg", "supg", "limit"].contains(&kind.as_str()) {
                return Err(format!("unknown query kind '{kind}' (agg|supg|limit)"));
            }
            let flags = parse_flags(&args[2..])?;
            Ok(Command::Query(QueryArgs {
                kind,
                index: get(&flags, "index", None)?,
                dataset: get(&flags, "dataset", None)?,
                n: get(&flags, "n", None)?,
                seed: get(&flags, "seed", Some(42))?,
                class: get(&flags, "class", Some("car".to_string()))?,
                min_count: get(&flags, "min-count", Some(1))?,
                error: get(&flags, "error", Some(0.05))?,
                budget: get(&flags, "budget", Some(500))?,
                matches: get(&flags, "matches", Some(10))?,
            }))
        }
        Some("serve") => {
            let flags = parse_flags(&args[1..])?;
            let (index, preload) =
                parse_serve_indexes(flags.get("index").map(Vec::as_slice).unwrap_or(&[]))?;
            Ok(Command::Serve(ServeArgs {
                index,
                preload,
                dataset: get(&flags, "dataset", None)?,
                n: get(&flags, "n", None)?,
                seed: get(&flags, "seed", Some(42))?,
                addr: get(&flags, "addr", Some("127.0.0.1:0".to_string()))?,
                core: get(&flags, "serve-core", Some(ServeCore::default()))?,
                workers: get(&flags, "workers", Some(4))?,
                queue_depth: get(&flags, "queue-depth", Some(16))?,
                snapshot: get_opt(&flags, "snapshot")?,
                snapshot_on_shutdown: flags.contains_key("snapshot-on-shutdown"),
                label_budget: get_opt(&flags, "label-budget")?,
                no_crack: flags.contains_key("no-crack"),
                no_degraded: flags.contains_key("no-degraded"),
                fault_transient: get(&flags, "fault-transient", Some(0.0))?,
                fault_timeout: get(&flags, "fault-timeout", Some(0.0))?,
                fault_corrupt: get(&flags, "fault-corrupt", Some(0.0))?,
                fault_fatal: get(&flags, "fault-fatal", Some(0.0))?,
                fault_seed: get(&flags, "fault-seed", Some(0x5EED))?,
                ingest_dir: get_opt(&flags, "ingest-dir")?,
                drift_threshold: get(&flags, "drift-threshold", Some(0.5))?,
                storage_fault_script: get_opt(&flags, "storage-fault-script")?,
                storage_fault_rate: get(&flags, "storage-fault-rate", Some(0.0))?,
                storage_fault_seed: get(&flags, "storage-fault-seed", Some(0xD15C))?,
            }))
        }
        Some("probe") => {
            let op = args
                .get(1)
                .cloned()
                .ok_or("probe needs an op: agg|supg|supg-precision|limit|predicate|stats|metrics|health|index-list|index-load|index-unload|snapshot|shutdown|ingest")?;
            if probe_op(&op).is_none() {
                return Err(format!("unknown probe op '{op}'"));
            }
            let flags = parse_flags(&args[2..])?;
            Ok(Command::Probe(ProbeArgs {
                op,
                addr: get(&flags, "addr", None)?,
                class: get(&flags, "class", Some("car".to_string()))?,
                min_count: get(&flags, "min-count", Some(1))?,
                error: get(&flags, "error", Some(0.05))?,
                budget: get(&flags, "budget", Some(500))?,
                matches: get(&flags, "matches", Some(10))?,
                seed: get(&flags, "seed", Some(42))?,
                index: get_opt(&flags, "index")?,
                path: get_opt(&flags, "path")?,
                label_budget: get_opt(&flags, "label-budget")?,
                dataset: get_opt(&flags, "dataset")?,
                n: get_opt(&flags, "n")?,
                offset: get(&flags, "offset", Some(0))?,
                count: get(&flags, "count", Some(0))?,
            }))
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    }
}

/// Maps a `probe` op name to the wire protocol operation.
fn probe_op(name: &str) -> Option<ServeOp> {
    Some(match name {
        "agg" => ServeOp::EbsAggregate,
        "supg" => ServeOp::SupgRecallTarget,
        "supg-precision" => ServeOp::SupgPrecisionTarget,
        "limit" => ServeOp::LimitQuery,
        "predicate" => ServeOp::PredicateAggregate,
        "stats" => ServeOp::IndexStats,
        "metrics" => ServeOp::Metrics,
        "health" => ServeOp::Health,
        "index-list" | "index_list" => ServeOp::IndexList,
        "index-load" | "index_load" => ServeOp::IndexLoad,
        "index-unload" | "index_unload" => ServeOp::IndexUnload,
        "snapshot" => ServeOp::Snapshot,
        "shutdown" => ServeOp::Shutdown,
        "ingest" => ServeOp::Ingest,
        _ => return None,
    })
}

/// Regenerates a named dataset and its oracle labeler.
fn load_dataset(name: &str, n: usize, seed: u64) -> Result<tasti::data::Dataset, String> {
    Ok(match name {
        "night-street" => tasti::data::video::night_street(n, seed).dataset,
        "taipei" => tasti::data::video::taipei(n, seed).dataset,
        "amsterdam" => tasti::data::video::amsterdam(n, seed).dataset,
        "wikisql" => tasti::data::text::wikisql(n, seed).dataset,
        "common-voice" => tasti::data::speech::common_voice(n, seed),
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

fn object_class(name: &str) -> Result<ObjectClass, String> {
    match name {
        "car" => Ok(ObjectClass::Car),
        "bus" => Ok(ObjectClass::Bus),
        other => Err(format!("unknown class '{other}' (car|bus)")),
    }
}

/// The scoring function a CLI query uses, by dataset and query kind.
///
/// Aggregation and limit queries score raw counts (limit compares against
/// `--min-count`); SUPG needs a 0/1 predicate, so `--min-count` folds into
/// the scoring function there.
fn scoring_for(
    dataset: &str,
    class: &str,
    kind: &str,
    min_count: usize,
) -> Result<Box<dyn ScoringFunction>, String> {
    Ok(match dataset {
        "night-street" | "taipei" | "amsterdam" => {
            let c = object_class(class)?;
            if kind == "supg" {
                Box::new(HasAtLeast(c, min_count.max(1)))
            } else {
                Box::new(CountClass(c))
            }
        }
        "wikisql" => {
            if kind == "supg" {
                Box::new(SqlOpIs(tasti_labeler::SqlOp::Select))
            } else {
                Box::new(SqlNumPredicates)
            }
        }
        "common-voice" => Box::new(SpeechIsMale),
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

/// The match threshold a limit query compares scores against.
fn limit_threshold_for(dataset: &str, min_count: usize) -> f64 {
    match dataset {
        "common-voice" => 1.0,
        _ => min_count.max(1) as f64,
    }
}

fn run_build(a: &BuildArgs) -> Result<(), String> {
    let dataset = load_dataset(&a.dataset, a.n, a.seed)?;
    let labeler = MeteredLabeler::new(OracleLabeler::new(
        dataset.truth_handle(),
        CostModel::mask_rcnn().target,
        Schema::object_detection(),
        "oracle",
    ));
    let assign_strategy = match a.assign.as_str() {
        "exact" => AssignStrategy::Exact,
        "ivf" => AssignStrategy::Ivf(IvfParams {
            nprobe: a.nprobe,
            ..IvfParams::default()
        }),
        _ => AssignStrategy::Auto,
    };
    let mut config = TastiConfig {
        n_train: a.n_train,
        n_reps: a.n_reps,
        embedding_dim: a.dim,
        seed: a.seed,
        assign_strategy,
        ..TastiConfig::default()
    };
    if a.pretrained_only {
        config = config.pretrained_only();
    }
    let closeness: Box<dyn ClosenessFn> = match a.dataset.as_str() {
        "wikisql" => Box::new(SqlCloseness),
        "common-voice" => Box::new(SpeechCloseness),
        _ => Box::new(VideoCloseness::default()),
    };
    let mut pt =
        PretrainedEmbedder::new(dataset.feature_dim(), config.embedding_dim, a.seed ^ 0x50);
    let pretrained = pt.embed_all(&dataset.features);
    let (index, report) = build_index(
        &dataset.features,
        &pretrained,
        &labeler,
        closeness.as_ref(),
        &config,
    )
    .map_err(|e| e.to_string())?;
    persist::save(&index, &a.out).map_err(|e| e.to_string())?;
    println!(
        "built {}: {} records, {} reps, {} labeler calls, {:.2}s; saved to {}",
        a.dataset,
        index.n_records(),
        index.reps().len(),
        report.total_invocations,
        report.total_seconds(),
        a.out
    );
    Ok(())
}

fn run_info(path: &str) -> Result<(), String> {
    let index = persist::load(path).map_err(|e| e.to_string())?;
    println!("index: {path}");
    println!("  records:        {}", index.n_records());
    println!("  representatives: {}", index.reps().len());
    println!("  embedding dim:  {}", index.embedding_dim());
    println!("  propagation k:  {}", index.k());
    println!("  metric:         {:?}", index.metric());
    println!("  cover radius:   {:.4}", index.cover_radius());
    println!(
        "  trained model:  {}",
        if index.model().is_some() {
            "yes"
        } else {
            "no (TASTI-PT)"
        }
    );
    Ok(())
}

fn run_query(a: &QueryArgs) -> Result<(), String> {
    let dataset = load_dataset(&a.dataset, a.n, a.seed)?;
    let index = persist::load(&a.index).map_err(|e| e.to_string())?;
    if index.n_records() != dataset.len() {
        return Err(format!(
            "index covers {} records but dataset has {} — pass the same --dataset/--n/--seed used at build time",
            index.n_records(),
            dataset.len()
        ));
    }
    let labeler = MeteredLabeler::new(OracleLabeler::new(
        dataset.truth_handle(),
        CostModel::mask_rcnn().target,
        Schema::object_detection(),
        "oracle",
    ));
    let score = scoring_for(&a.dataset, &a.class, &a.kind, a.min_count)?;
    match a.kind.as_str() {
        "agg" => {
            let proxy = index.propagate(score.as_ref());
            let cfg = AggregationConfig {
                error_target: a.error,
                stopping: StoppingRule::Clt,
                seed: a.seed,
                ..Default::default()
            };
            // Each sampling round is one batched labeler call.
            let res = ebs_aggregate_batch(
                &proxy,
                &mut |recs| {
                    labeler
                        .label_batch(recs)
                        .iter()
                        .map(|o| score.score(o))
                        .collect()
                },
                &cfg,
            );
            println!(
                "estimate: {:.4} ± {:.4} ({} labeler calls, ρ² on sample {:.3})",
                res.estimate, res.ci_half_width, res.samples, res.rho_squared
            );
        }
        "supg" => {
            let proxy = index.propagate(score.as_ref());
            let cfg = SupgConfig {
                budget: a.budget,
                seed: a.seed,
                ..Default::default()
            };
            // Stage-2 labeling is one batched labeler call.
            let res = supg_recall_target_batch(
                &proxy,
                &mut |recs| {
                    labeler
                        .label_batch(recs)
                        .iter()
                        .map(|o| score.score(o) >= 0.5)
                        .collect()
                },
                &cfg,
            );
            println!(
                "returned {} records at threshold {:.4} ({} labeler calls, est. recall {:.3})",
                res.returned.len(),
                res.threshold,
                res.oracle_calls,
                res.estimated_recall
            );
        }
        "limit" => {
            let ranking = index.limit_ranking(score.as_ref());
            let threshold = limit_threshold_for(&a.dataset, a.min_count);
            // probe_batch = 1: invocation counts stay bit-identical to the
            // sequential scan (the CLI reports them as the query's cost).
            let res = limit_query_batch(
                &ranking,
                &mut |recs| {
                    labeler
                        .label_batch(recs)
                        .iter()
                        .map(|o| score.score(o) >= threshold)
                        .collect()
                },
                a.matches,
                dataset.len(),
                1,
            );
            println!(
                "found {:?} after {} labeler calls (satisfied: {})",
                res.found, res.invocations, res.satisfied
            );
        }
        _ => unreachable!("validated in parse"),
    }
    Ok(())
}

fn run_serve(a: &ServeArgs) -> Result<(), String> {
    let dataset = load_dataset(&a.dataset, a.n, a.seed)?;
    let storage_vfs = storage_vfs_for(a)?;
    // Startup load goes through the same fallback path the runtime
    // `index_load` op uses: a damaged snapshot recovers to the `.prev`
    // last-good copy (the ingest log replays the gap) instead of refusing
    // to start.
    let report =
        persist::load_with_fallback_vfs(&a.index, &*storage_vfs).map_err(|e| e.to_string())?;
    if let Some(fb) = &report.fallback {
        println!(
            "snapshot {} was unusable ({}); recovered from last-good copy {}",
            a.index,
            fb.detail,
            fb.fallback_path.display()
        );
    }
    let snapshot_fell_back = report.fallback.is_some();
    let index = report.index;
    // With ingest enabled the dataset may be *larger* than the index —
    // the extra records are the oracle ground truth for rows ingested
    // later (and for replayed log frames). Without ingest the sizes must
    // match exactly, as before.
    if a.ingest_dir.is_none() && index.n_records() != dataset.len() {
        return Err(format!(
            "index covers {} records but dataset has {} — pass the same --dataset/--n/--seed used at build time",
            index.n_records(),
            dataset.len()
        ));
    }
    if index.n_records() > dataset.len() {
        return Err(format!(
            "index covers {} records but dataset has only {} — the dataset must cover every \
             (current and ingested) record",
            index.n_records(),
            dataset.len()
        ));
    }
    let truth = dataset.truth_handle();
    let config = ServeConfig {
        addr: a.addr.clone(),
        core: a.core,
        workers: a.workers.max(1),
        queue_depth: a.queue_depth,
        snapshot_path: a.snapshot.as_ref().map(std::path::PathBuf::from),
        snapshot_on_shutdown: a.snapshot_on_shutdown,
        label_budget: a.label_budget,
        crack_after_queries: !a.no_crack,
        degraded_replies: !a.no_degraded,
        ingest_dir: a.ingest_dir.as_ref().map(std::path::PathBuf::from),
        drift_threshold: a.drift_threshold,
        preload: a
            .preload
            .iter()
            .map(|(name, path)| (name.clone(), std::path::PathBuf::from(path)))
            .collect(),
        storage_vfs,
        ..ServeConfig::default()
    };
    let any_fault = [
        a.fault_transient,
        a.fault_timeout,
        a.fault_corrupt,
        a.fault_fatal,
    ]
    .iter()
    .any(|&r| r > 0.0);
    // Every index entry (default, preloaded, or loaded at runtime via
    // `index_load`) gets its own copy of the oracle stack from the factory,
    // so per-index metering and budgets stay isolated.
    if any_fault {
        let plan = FaultPlan {
            transient_rate: a.fault_transient,
            timeout_rate: a.fault_timeout,
            corrupt_rate: a.fault_corrupt,
            fatal_rate: a.fault_fatal,
            seed: a.fault_seed,
            ..FaultPlan::default()
        };
        let factory: LabelerFactory<_> = Box::new(move |_name: &str| {
            let oracle = OracleLabeler::new(
                truth.clone(),
                CostModel::mask_rcnn().target,
                Schema::object_detection(),
                "oracle",
            );
            MeteredLabeler::new(ResilientLabeler::new(FaultInjectingLabeler::new(
                oracle,
                plan.clone(),
            )))
        });
        serve_until_drained(index, factory, config, a, snapshot_fell_back)
    } else {
        let factory: LabelerFactory<_> = Box::new(move |_name: &str| {
            MeteredLabeler::new(OracleLabeler::new(
                truth.clone(),
                CostModel::mask_rcnn().target,
                Schema::object_detection(),
                "oracle",
            ))
        });
        serve_until_drained(index, factory, config, a, snapshot_fell_back)
    }
}

/// Builds the filesystem seam for the storage layer from the
/// `--storage-fault-*` flags: scripted faults, seeded random faults, or
/// (by default) the real filesystem.
fn storage_vfs_for(a: &ServeArgs) -> Result<Arc<dyn Vfs>, String> {
    if let Some(text) = &a.storage_fault_script {
        if a.storage_fault_rate > 0.0 {
            return Err(
                "--storage-fault-script and --storage-fault-rate are mutually exclusive"
                    .to_string(),
            );
        }
        let script =
            FaultScript::parse(text).map_err(|e| format!("invalid --storage-fault-script: {e}"))?;
        return Ok(Arc::new(FaultVfs::scripted(script)));
    }
    if a.storage_fault_rate > 0.0 {
        if !(a.storage_fault_rate <= 1.0) {
            return Err(format!(
                "invalid --storage-fault-rate {} (expected 0..=1)",
                a.storage_fault_rate
            ));
        }
        return Ok(Arc::new(FaultVfs::seeded(
            a.storage_fault_seed,
            a.storage_fault_rate,
        )));
    }
    Ok(ServeConfig::default().storage_vfs)
}

/// Starts the server over any (fallible) oracle stack and blocks until the
/// admin shutdown drain completes.
fn serve_until_drained<L: FallibleTargetLabeler + 'static>(
    index: TastiIndex,
    factory: LabelerFactory<L>,
    config: ServeConfig,
    a: &ServeArgs,
    snapshot_fell_back: bool,
) -> Result<(), String> {
    let n_reps = index.reps().len();
    let n_named = config.preload.len();
    let labeler = factory(DEFAULT_INDEX_NAME);
    let service = Arc::new(TastiService::with_factory(index, labeler, config, factory)?);
    if snapshot_fell_back {
        // The startup load happened before the service existed; record it
        // so `snapshot_fallback_loads` reflects the recovery.
        service.metrics().snapshot_fallback_loads.incr();
    }
    if let Some(r) = service.ingest_replay() {
        println!(
            "ingest log: replayed {} frame(s) — {} applied ({} record(s)), {} already in \
             snapshot, {} for unknown indexes, {} torn byte(s) truncated",
            r.frames, r.applied, r.records, r.already_applied, r.unknown_index, r.truncated_bytes
        );
    }
    let server = Server::start(service).map_err(|e| e.to_string())?;
    let named = if n_named > 0 {
        format!(", {n_named} named index(es) preloaded")
    } else {
        String::new()
    };
    println!(
        "serving {} records ({} reps{named}) on {} — {} core, {} workers, queue depth {}; \
         drain with: tasti_cli probe shutdown --addr {}",
        a.n,
        n_reps,
        server.local_addr(),
        a.core.name(),
        a.workers.max(1),
        a.queue_depth,
        server.local_addr(),
    );
    // The address line is what scripts (and the CI smoke stage) wait for —
    // force it out even when stdout is a pipe.
    std::io::stdout().flush().ok();
    let report = server.join_report();
    println!(
        "drained; final crack fold-in added {} representatives",
        report.reps_added
    );
    if let Some(message) = report.snapshot_error {
        return Err(format!("shutdown snapshot failed: {message}"));
    }
    Ok(())
}

fn run_probe(a: &ProbeArgs) -> Result<(), String> {
    let op = probe_op(&a.op).expect("validated in parse");
    let mut req = ServeRequest::new(op);
    req.seed = Some(a.seed);
    req.index = a.index.clone();
    let class = object_class(&a.class)?;
    match op {
        ServeOp::EbsAggregate => {
            req.score = Some(ScoreSpec::CountClass(class));
            req.error_target = Some(a.error);
        }
        ServeOp::SupgRecallTarget | ServeOp::SupgPrecisionTarget => {
            req.score = Some(ScoreSpec::HasAtLeast(class, a.min_count.max(1)));
            req.budget = Some(a.budget);
        }
        ServeOp::LimitQuery => {
            req.score = Some(ScoreSpec::HasAtLeast(class, a.min_count.max(1)));
            req.k_matches = Some(a.matches);
        }
        ServeOp::PredicateAggregate => {
            req.predicate = Some(ScoreSpec::HasAtLeast(class, a.min_count.max(1)));
            req.score = Some(ScoreSpec::CountClass(class));
            req.budget = Some(a.budget);
        }
        ServeOp::IndexLoad => {
            if a.index.is_none() || a.path.is_none() {
                return Err("probe index-load needs --index NAME and --path FILE".to_string());
            }
            req.path = a.path.clone();
            req.budget = a.label_budget;
        }
        ServeOp::IndexUnload => {
            if a.index.is_none() {
                return Err("probe index-unload needs --index NAME".to_string());
            }
        }
        ServeOp::Ingest => {
            let dataset_name = a.dataset.clone().ok_or(
                "probe ingest needs --dataset NAME --n RECORDS (the row source) \
                 plus --offset/--count",
            )?;
            let n = a.n.ok_or("probe ingest needs --n RECORDS")?;
            if a.count == 0 {
                return Err("probe ingest needs --count > 0".to_string());
            }
            let dataset = load_dataset(&dataset_name, n, a.seed)?;
            let end = a.offset + a.count;
            if end > dataset.len() {
                return Err(format!(
                    "--offset {} + --count {} exceeds the dataset's {} records",
                    a.offset,
                    a.count,
                    dataset.len()
                ));
            }
            req.rows = Some(
                (a.offset..end)
                    .map(|r| dataset.features.row(r).to_vec())
                    .collect(),
            );
            req.embedded = Some(false);
        }
        ServeOp::IndexStats
        | ServeOp::Metrics
        | ServeOp::Health
        | ServeOp::IndexList
        | ServeOp::Snapshot
        | ServeOp::Shutdown => {}
    }
    let mut client = Client::connect(&a.addr).map_err(|e| e.to_string())?;
    let (line, _id) = client.call_raw(req).map_err(|e| e.to_string())?;
    println!("{line}");
    let reply = Reply::parse(&line).map_err(|e| e.to_string())?;
    if !reply.ok {
        return Err(format!(
            "server returned {}: {}",
            reply.error_kind.as_deref().unwrap_or("error"),
            reply.error_message.as_deref().unwrap_or("")
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Build(a) => run_build(a),
        Command::Info { index } => run_info(index),
        Command::Query(a) => run_query(a),
        Command::Serve(a) => run_serve(a),
        Command::Probe(a) => run_probe(a),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_build_with_defaults() {
        let cmd = parse(&s(&[
            "build",
            "--dataset",
            "night-street",
            "--n",
            "1000",
            "--out",
            "x.json",
        ]))
        .unwrap();
        match cmd {
            Command::Build(a) => {
                assert_eq!(a.dataset, "night-street");
                assert_eq!(a.n, 1000);
                assert_eq!(a.seed, 42);
                assert_eq!(a.n_train, 400);
                assert_eq!(a.n_reps, 1200);
                assert!(!a.pretrained_only);
                assert_eq!(a.assign, "auto");
                assert_eq!(a.nprobe, 0);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_assign_strategy_knobs() {
        let cmd = parse(&s(&[
            "build",
            "--dataset",
            "night-street",
            "--n",
            "1000",
            "--out",
            "x.json",
            "--assign",
            "ivf",
            "--nprobe",
            "3",
        ]))
        .unwrap();
        match cmd {
            Command::Build(a) => {
                assert_eq!(a.assign, "ivf");
                assert_eq!(a.nprobe, 3);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse(&s(&[
            "build",
            "--dataset",
            "night-street",
            "--n",
            "1000",
            "--out",
            "x.json",
            "--assign",
            "fancy",
        ]))
        .unwrap_err();
        assert!(err.contains("--assign"), "{err}");
    }

    #[test]
    fn parses_pretrained_only_flag() {
        let cmd = parse(&s(&[
            "build",
            "--dataset",
            "taipei",
            "--n",
            "500",
            "--out",
            "x.json",
            "--pretrained-only",
        ]))
        .unwrap();
        match cmd {
            Command::Build(a) => assert!(a.pretrained_only),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_query_kinds() {
        for kind in ["agg", "supg", "limit"] {
            let cmd = parse(&s(&[
                "query",
                kind,
                "--index",
                "x.json",
                "--dataset",
                "amsterdam",
                "--n",
                "100",
            ]))
            .unwrap();
            match cmd {
                Command::Query(a) => assert_eq!(a.kind, kind),
                other => panic!("wrong parse: {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_unknown_command_and_kind() {
        assert!(parse(&s(&["frobnicate"])).is_err());
        assert!(parse(&s(&["query", "nope", "--index", "x"])).is_err());
    }

    #[test]
    fn missing_required_flags_error() {
        let err = parse(&s(&["build", "--n", "100", "--out", "x.json"])).unwrap_err();
        assert!(err.contains("--dataset"), "{err}");
        let err = parse(&s(&["info"])).unwrap_err();
        assert!(err.contains("--index"), "{err}");
    }

    #[test]
    fn invalid_values_error() {
        let err = parse(&s(&["build", "--dataset", "x", "--n", "abc", "--out", "y"])).unwrap_err();
        assert!(err.contains("invalid value for --n"), "{err}");
    }

    #[test]
    fn flag_without_value_errors() {
        let err = parse(&s(&["info", "--index"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&s(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&s(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&s(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn scoring_dispatch() {
        assert!(scoring_for("night-street", "car", "agg", 1).is_ok());
        assert!(scoring_for("night-street", "tank", "agg", 1).is_err());
        assert!(scoring_for("wikisql", "car", "supg", 1).is_ok());
        assert!(scoring_for("unknown", "car", "agg", 1).is_err());
    }

    #[test]
    fn supg_scoring_is_a_predicate_but_agg_is_a_count() {
        use tasti_labeler::{Detection, LabelerOutput};
        let frame = LabelerOutput::Detections(vec![
            Detection {
                class: ObjectClass::Car,
                x: 0.2,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            },
            Detection {
                class: ObjectClass::Car,
                x: 0.7,
                y: 0.5,
                w: 0.1,
                h: 0.1,
            },
        ]);
        let agg = scoring_for("night-street", "car", "agg", 2).unwrap();
        assert_eq!(agg.score(&frame), 2.0);
        let supg = scoring_for("night-street", "car", "supg", 2).unwrap();
        assert_eq!(supg.score(&frame), 1.0);
        let supg3 = scoring_for("night-street", "car", "supg", 3).unwrap();
        assert_eq!(supg3.score(&frame), 0.0);
    }

    #[test]
    fn limit_thresholds() {
        assert_eq!(limit_threshold_for("night-street", 4), 4.0);
        assert_eq!(limit_threshold_for("night-street", 0), 1.0);
        assert_eq!(limit_threshold_for("common-voice", 7), 1.0);
    }

    #[test]
    fn parses_serve_with_defaults_and_flags() {
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "500",
            "--snapshot",
            "/tmp/snap.json",
            "--snapshot-on-shutdown",
            "--label-budget",
            "250",
            "--no-crack",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.addr, "127.0.0.1:0");
                assert_eq!(a.core, ServeCore::Evented, "reactor is the default core");
                assert_eq!(a.workers, 4);
                assert_eq!(a.queue_depth, 16);
                assert_eq!(a.snapshot.as_deref(), Some("/tmp/snap.json"));
                assert!(a.snapshot_on_shutdown);
                assert_eq!(a.label_budget, Some(250));
                assert!(a.no_crack);
                assert!(!a.no_degraded, "degraded replies default on");
                assert_eq!(a.fault_transient, 0.0, "fault injection defaults off");
                assert_eq!(a.fault_fatal, 0.0);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_serve_core_flag() {
        let base = [
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "5",
        ];
        let mut args = s(&base);
        args.extend(s(&["--serve-core", "threaded"]));
        match parse(&args).unwrap() {
            Command::Serve(a) => assert_eq!(a.core, ServeCore::Threaded),
            other => panic!("wrong parse: {other:?}"),
        }
        let mut bad = s(&base);
        bad.extend(s(&["--serve-core", "green-threads"]));
        let err = parse(&bad).unwrap_err();
        assert!(err.contains("serve-core"), "got: {err}");
    }

    #[test]
    fn parses_serve_fault_flags() {
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "500",
            "--no-degraded",
            "--fault-transient",
            "0.2",
            "--fault-fatal",
            "0.05",
            "--fault-seed",
            "7",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert!(a.no_degraded);
                assert_eq!(a.fault_transient, 0.2);
                assert_eq!(a.fault_timeout, 0.0);
                assert_eq!(a.fault_fatal, 0.05);
                assert_eq!(a.fault_seed, 7);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_probe_ops() {
        for op in [
            "agg",
            "supg",
            "supg-precision",
            "limit",
            "predicate",
            "stats",
            "metrics",
            "health",
            "index-list",
            "index_list",
            "index-load",
            "index_load",
            "index-unload",
            "index_unload",
            "snapshot",
            "shutdown",
            "ingest",
        ] {
            let cmd = parse(&s(&["probe", op, "--addr", "127.0.0.1:9"])).unwrap();
            match cmd {
                Command::Probe(a) => assert_eq!(a.op, op),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        assert!(parse(&s(&["probe", "nope", "--addr", "x"])).is_err());
        assert!(parse(&s(&["probe", "stats"])).is_err(), "addr is required");
    }

    #[test]
    fn parses_serve_ingest_flags() {
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "2100",
            "--ingest-dir",
            "/tmp/ingest-log",
            "--drift-threshold",
            "0.75",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.ingest_dir.as_deref(), Some("/tmp/ingest-log"));
                assert!((a.drift_threshold - 0.75).abs() < 1e-12);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "2000",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert!(a.ingest_dir.is_none(), "ingest is opt-in");
                assert!((a.drift_threshold - 0.5).abs() < 1e-12);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_serve_storage_fault_flags() {
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "500",
            "--storage-fault-script",
            "sync:2=eio,write:1=short",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(
                    a.storage_fault_script.as_deref(),
                    Some("sync:2=eio,write:1=short")
                );
                assert_eq!(a.storage_fault_rate, 0.0, "seeded faults default off");
                // The script must survive parsing into an actual FaultVfs.
                let vfs = storage_vfs_for(&a).unwrap();
                assert!(format!("{vfs:?}").contains("FaultVfs"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "500",
            "--storage-fault-rate",
            "0.25",
            "--storage-fault-seed",
            "7",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert!((a.storage_fault_rate - 0.25).abs() < 1e-12);
                assert_eq!(a.storage_fault_seed, 7);
                let vfs = storage_vfs_for(&a).unwrap();
                assert!(format!("{vfs:?}").contains("FaultVfs"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Default: the real filesystem, and a bad script is a parse error.
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "x.json",
            "--dataset",
            "night-street",
            "--n",
            "500",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(mut a) => {
                assert!(a.storage_fault_script.is_none());
                let vfs = storage_vfs_for(&a).unwrap();
                assert!(format!("{vfs:?}").contains("RealVfs"));
                a.storage_fault_script = Some("nonsense".to_string());
                let err = storage_vfs_for(&a).unwrap_err();
                assert!(err.contains("storage-fault-script"), "got: {err}");
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_probe_ingest_row_source() {
        let cmd = parse(&s(&[
            "probe",
            "ingest",
            "--addr",
            "127.0.0.1:9",
            "--dataset",
            "night-street",
            "--n",
            "2100",
            "--offset",
            "2000",
            "--count",
            "40",
        ]))
        .unwrap();
        match cmd {
            Command::Probe(a) => {
                assert_eq!(a.op, "ingest");
                assert_eq!(a.dataset.as_deref(), Some("night-street"));
                assert_eq!(a.n, Some(2100));
                assert_eq!(a.offset, 2000);
                assert_eq!(a.count, 40);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_serve_with_multiple_indexes() {
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "main.json",
            "--dataset",
            "night-street",
            "--n",
            "500",
            "--index",
            "alt=extra.json",
            "--index",
            "third=t.json",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.index, "main.json");
                assert_eq!(
                    a.preload,
                    vec![
                        ("alt".to_string(), "extra.json".to_string()),
                        ("third".to_string(), "t.json".to_string()),
                    ]
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // The explicit default=path spelling works in any position.
        let cmd = parse(&s(&[
            "serve",
            "--index",
            "alt=x.json",
            "--index",
            "default=main.json",
            "--dataset",
            "night-street",
            "--n",
            "5",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.index, "main.json");
                assert_eq!(a.preload, vec![("alt".to_string(), "x.json".to_string())]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_index_lists() {
        let base = ["serve", "--dataset", "night-street", "--n", "5"];
        let with = |extra: &[&str]| {
            let mut v = base.to_vec();
            v.extend_from_slice(extra);
            parse(&s(&v)).unwrap_err()
        };
        let err = with(&["--index", "a.json", "--index", "b.json"]);
        assert!(err.contains("default"), "{err}");
        let err = with(&["--index", "a.json", "--index", "alt=x", "--index", "alt=y"]);
        assert!(err.contains("duplicate"), "{err}");
        let err = with(&["--index", "alt=x.json"]);
        assert!(err.contains("default"), "{err}");
        let err = with(&["--index", "=x.json"]);
        assert!(err.contains("invalid --index"), "{err}");
        let err = with(&[]);
        assert!(err.contains("--index"), "{err}");
    }

    #[test]
    fn parses_probe_index_routing() {
        let cmd = parse(&s(&["probe", "stats", "--addr", "x:1", "--index", "alt"])).unwrap();
        match cmd {
            Command::Probe(a) => assert_eq!(a.index.as_deref(), Some("alt")),
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&s(&[
            "probe",
            "index-load",
            "--addr",
            "x:1",
            "--index",
            "alt",
            "--path",
            "/tmp/i.json",
            "--label-budget",
            "40",
        ]))
        .unwrap();
        match cmd {
            Command::Probe(a) => {
                assert_eq!(a.index.as_deref(), Some("alt"));
                assert_eq!(a.path.as_deref(), Some("/tmp/i.json"));
                assert_eq!(a.label_budget, Some(40));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn repeated_scalar_flags_take_the_last_value() {
        let cmd = parse(&s(&[
            "build",
            "--dataset",
            "taipei",
            "--dataset",
            "night-street",
            "--n",
            "10",
            "--out",
            "x",
        ]))
        .unwrap();
        match cmd {
            Command::Build(a) => assert_eq!(a.dataset, "night-street"),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn dataset_dispatch() {
        assert!(load_dataset("amsterdam", 50, 1).is_ok());
        assert!(load_dataset("wikisql", 50, 1).is_ok());
        assert!(load_dataset("bogus", 50, 1).is_err());
    }
}
